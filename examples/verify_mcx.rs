//! Verify the paper's borrowed-bit MCX benchmark (`programs/mcx.qbr`,
//! §10.4) — the workload behind Fig. 6.4 / Fig. 10.3.
//!
//! Usage: `cargo run --release --example verify_mcx -- [m] [sat|anf|bdd]`
//! (defaults: m = 250, anf; the fixture file uses the paper's m = 1750).

use qborrow::core::{verify_program, BackendKind, BackendOptions, VerifyOptions};
use qborrow::formula::Simplify;
use qborrow::lang::{elaborate, mcx_source, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(250);
    let backend = match args.get(2).map(String::as_str) {
        Some("sat") => BackendKind::Sat,
        Some("bdd") => BackendKind::Bdd,
        _ => BackendKind::Anf,
    };
    let program = elaborate(&parse(&mcx_source(m))?)?;
    println!(
        "mcx benchmark: ({}-controlled NOT) {} qubits, {} Toffolis, one dirty ancilla, backend {backend}",
        2 * m - 1,
        program.num_qubits(),
        program.circuit.size()
    );
    let opts = VerifyOptions {
        backend,
        simplify: Simplify::Raw,
        backend_options: BackendOptions::default(),
    };
    let report = verify_program(&program, &opts)?;
    println!(
        "result: all safe = {} | construction {:?} | solver {:?}",
        report.all_safe(),
        report.construction_time,
        report.solver_time
    );
    Ok(())
}
