//! The Fig. 3.1 compiler pass: eliminate dirty-ancilla wires by borrowing
//! idle working qubits, gated on verified safe uncomputation.

use qborrow::core::VerifyOptions;
use qborrow::sched::{activity_periods, reduce_width};
use qborrow::synth::{carry_gadget, fig_3_1a};

fn main() {
    // The paper's Fig. 3.1 example.
    let circuit = fig_3_1a();
    let periods = activity_periods(&circuit);
    println!("Fig. 3.1a: 7 wires; ancilla activity periods:");
    for (q, name) in [(5usize, "a1"), (6, "a2")] {
        println!("  {name}: gates {:?}", periods[q].interval());
    }
    let (reduced, plan) = reduce_width(&circuit, &[5, 6], &VerifyOptions::default()).unwrap();
    println!(
        "verified reduction: {} wire(s) eliminated -> width {} (a2 kept: it is read)",
        plan.saved(),
        reduced.num_qubits()
    );

    // A bigger workload: the adder gadget's n-1 dirty ancillas hosted on a
    // machine that happens to have idle qubits.
    let (gadget, layout) = carry_gadget(8);
    let mut machine = qborrow::circuit::Circuit::new(gadget.num_qubits() + 3);
    machine.append(&gadget);
    let ancillas: Vec<usize> = (0..7).map(|i| layout.a + i).collect();
    let (reduced, plan) = reduce_width(&machine, &ancillas, &VerifyOptions::default()).unwrap();
    println!(
        "\ncarry gadget on a machine with 3 idle qubits: {} of {} dirty ancillas hosted, \
         width {} -> {}",
        plan.saved(),
        ancillas.len(),
        machine.num_qubits(),
        reduced.num_qubits()
    );
    println!("(hosting is limited by overlap: the gadget's ancillas are all live at once)");
}
