//! §7 multi-programming: borrow a co-resident program's qubits as dirty
//! ancillas for an incoming program — legal exactly when the incoming
//! program provably uncomputes them safely.

use qborrow::circuit::Circuit;
use qborrow::core::VerifyOptions;
use qborrow::sched::{pack_programs, PackError};
use qborrow::synth::{fig_1_3_cccnot_with_dirty, fig_1_4_counterexample};

fn main() {
    // Program A (resident): holds live data on 3 qubits.
    let mut resident = Circuit::new(3);
    resident.x(0).cnot(0, 1).toffoli(0, 1, 2);

    // Program B (incoming): the CCCNOT gadget wants one dirty ancilla.
    let guest = fig_1_3_cccnot_with_dirty();
    match pack_programs(&resident, &guest, &[2], &VerifyOptions::default()) {
        Ok(report) => println!("safe guest admitted: {report}"),
        Err(e) => println!("unexpected rejection: {e}"),
    }

    // A buggy guest: copies its "ancilla" — would corrupt program A.
    let bad_guest = fig_1_4_counterexample();
    match pack_programs(&resident, &bad_guest, &[0], &VerifyOptions::default()) {
        Ok(_) => println!("BUG: unsafe guest admitted"),
        Err(PackError::UnsafeAncilla { ancilla }) => {
            println!("unsafe guest rejected: its wire {ancilla} would leak the resident's state")
        }
        Err(e) => println!("rejected: {e}"),
    }
}
