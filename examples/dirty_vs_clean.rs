//! The introduction's story (Figs. 1.3/1.4): why safe uncomputation of a
//! *dirty* qubit is strictly stronger than clean-ancilla restoration —
//! demonstrated symbolically (the two Boolean conditions) and physically
//! (the simulator shows |+> decohering).

use qborrow::circuit::render_with_labels;
use qborrow::core::{check_clean_uncomputation, verify_circuit, InitialValue, VerifyOptions};
use qborrow::sim::{Channel, DensityMatrix, StateVector};
use qborrow::synth::{fig_1_3_cccnot_with_dirty, fig_1_4_counterexample};

fn main() {
    let opts = VerifyOptions::default();

    // Fig. 1.3: safely uncomputed dirty qubit.
    let cccnot = fig_1_3_cccnot_with_dirty();
    let labels: Vec<String> = ["q1", "q2", "a", "q3", "q4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("Fig. 1.3 — CCCNOT from four Toffolis and a dirty qubit:\n");
    println!("{}", render_with_labels(&cccnot, &labels));
    let free = vec![InitialValue::Free; 5];
    let report = verify_circuit(&cccnot, &free, &[2], &opts).unwrap();
    println!("dirty qubit a: safe = {}\n", report.all_safe());

    // Fig. 1.4: clean-safe but dirty-unsafe.
    let copy = fig_1_4_counterexample();
    let labels: Vec<String> = ["a", "q"].iter().map(|s| s.to_string()).collect();
    println!("Fig. 1.4 — a circuit that restores |0>/|1> but not |+>:\n");
    println!("{}", render_with_labels(&copy, &labels));
    let free = vec![InitialValue::Free; 2];
    let clean = check_clean_uncomputation(&copy, &free, 0, &opts).unwrap();
    let dirty = verify_circuit(&copy, &free, &[0], &opts)
        .unwrap()
        .all_safe();
    println!("clean-uncomputation check (basis states restored): {clean}");
    println!("dirty safe-uncomputation check:                    {dirty}");

    // Physical witness: put a in |+>, q in |0>, apply, look at a's state.
    let mut plus_prep = qborrow::circuit::Circuit::new(2);
    plus_prep.h(0);
    let input = DensityMatrix::from_pure(&StateVector::zero(2).run(&plus_prep));
    let output = Channel::from_circuit(&copy).apply(&input);
    let reduced = output.partial_trace(&[0]);
    println!(
        "\nwith a = |+>: purity of a's reduced state after the circuit = {:.3} \
         (1.0 would mean restored; 0.5 is maximally mixed)",
        reduced.purity()
    );
}
