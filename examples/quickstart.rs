//! Quickstart: parse a QBorrow program, verify its dirty qubits, and
//! inspect a counterexample when verification fails.
//!
//! Run with `cargo run --release --example quickstart`.

use qborrow::core::{verify_program, VerifyOptions, Violation};
use qborrow::lang::{elaborate, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A safe program: the paper's Fig. 1.3 — CCCNOT via one dirty qubit.
    let safe_source = "
        borrow@ q[4];           // working qubits, not verified
        borrow a;               // dirty qubit that must be proven safe
        CCNOT[q[1], q[2], a];
        CCNOT[a, q[3], q[4]];
        CCNOT[q[1], q[2], a];
        CCNOT[a, q[3], q[4]];
        release a;
    ";
    let program = elaborate(&parse(safe_source)?)?;
    let report = verify_program(&program, &VerifyOptions::default())?;
    println!(
        "CCCNOT gadget: all dirty qubits safe? {}",
        report.all_safe()
    );
    for v in &report.verdicts {
        println!(
            "  qubit {:<6} safe={} (|0> check {:?}, |+> check {:?})",
            program.qubit_name(v.qubit),
            v.safe,
            v.zero_time,
            v.plus_time
        );
    }

    // An unsafe program: the Fig. 1.4 counterexample. Copying the dirty
    // qubit restores every *basis* state but breaks superpositions.
    let unsafe_source = "
        borrow@ q[1];
        borrow a;
        CNOT[a, q[1]];
        release a;
    ";
    let program = elaborate(&parse(unsafe_source)?)?;
    let report = verify_program(&program, &VerifyOptions::default())?;
    println!(
        "\ncopy gadget: all dirty qubits safe? {}",
        report.all_safe()
    );
    for v in &report.verdicts {
        if let Some(ce) = &v.counterexample {
            println!(
                "  qubit {} is UNSAFE: {}",
                program.qubit_name(v.qubit),
                ce.violation
            );
            if ce.violation == Violation::PlusNotRestored {
                println!(
                    "  -> starting it in |+> on background {:?} entangles/dephases it",
                    ce.basis_assignment
                );
            }
        }
    }
    Ok(())
}
