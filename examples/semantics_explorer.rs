//! The denotational semantics of §4 in action: nondeterministic borrows,
//! the Fig. 4.4 nested-borrow program, Example 5.2, stuck programs, and
//! the Theorem 5.5 determinism criterion.

use qborrow::lang::{denote, CoreGate, CoreStmt, QubitRef, SemanticsOptions};

fn cq(q: usize) -> QubitRef {
    QubitRef::Concrete(q)
}
fn ph(name: &str) -> QubitRef {
    QubitRef::Placeholder(name.into())
}

fn main() {
    let opts = SemanticsOptions::default();

    // Unsafe borrow: X on the borrowed qubit. The borrow's body touches
    // only the placeholder, so all 3 machine qubits are idle candidates
    // and |[S]| = 3 — nondeterminism survives (Thm 5.5: unsafe).
    let unsafe_borrow = CoreStmt::Seq(vec![
        CoreStmt::Gate(CoreGate::X(cq(0))),
        CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::X(ph("a")))),
        },
    ]);
    let d = denote(&unsafe_borrow, 3, &opts).unwrap();
    println!(
        "X[q0]; borrow a; X[a]  on 3 qubits: |[S]| = {} (deterministic: {})",
        d.operations.len(),
        d.is_deterministic()
    );

    // Safe borrow: X;X on the borrowed qubit — all instantiations agree.
    let safe_borrow = CoreStmt::Borrow {
        placeholder: "a".into(),
        body: Box::new(CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::X(ph("a"))),
            CoreStmt::Gate(CoreGate::X(ph("a"))),
        ])),
    };
    let d = denote(&safe_borrow, 3, &opts).unwrap();
    println!(
        "borrow a; X[a]; X[a]   on 3 qubits: |[S]| = {} (Thm 5.5: safe)",
        d.operations.len()
    );

    // Stuck: no idle qubit to borrow.
    let stuck = CoreStmt::Borrow {
        placeholder: "a".into(),
        body: Box::new(CoreStmt::Gate(CoreGate::Cnot(cq(0), ph("a")))),
    };
    let d = denote(&stuck, 1, &opts).unwrap();
    println!("borrow with no idle qubit: stuck = {}", d.is_stuck());

    // Fig. 4.4: nested borrows on a five-qubit machine — q3 is the only
    // idle candidate for both, so the semantics is a singleton.
    let s2 = CoreStmt::Borrow {
        placeholder: "a2".into(),
        body: Box::new(CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::Toffoli(cq(3), cq(4), cq(1))),
            CoreStmt::Gate(CoreGate::Toffoli(ph("a2"), cq(1), cq(0))),
            CoreStmt::Gate(CoreGate::Toffoli(cq(3), cq(4), cq(1))),
            CoreStmt::Gate(CoreGate::Toffoli(ph("a2"), cq(1), cq(0))),
        ])),
    };
    let fig44 = CoreStmt::Seq(vec![
        CoreStmt::Gate(CoreGate::Cnot(cq(1), cq(2))),
        CoreStmt::Borrow {
            placeholder: "a1".into(),
            body: Box::new(CoreStmt::Seq(vec![
                CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a1"))),
                CoreStmt::Gate(CoreGate::Toffoli(ph("a1"), cq(3), cq(4))),
                CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a1"))),
                CoreStmt::Gate(CoreGate::Toffoli(ph("a1"), cq(3), cq(4))),
                s2,
            ])),
        },
    ]);
    let d = denote(&fig44, 5, &opts).unwrap();
    println!(
        "Fig. 4.4 nested borrows on 5 qubits: |[S]| = {}, stuck = {}",
        d.operations.len(),
        d.is_stuck()
    );

    // Measurement-guided control flow (extension): a while loop that
    // resets a qubit almost surely.
    let reset_loop = CoreStmt::Seq(vec![
        CoreStmt::Gate(CoreGate::H(cq(0))),
        CoreStmt::While {
            qubit: cq(0),
            body: Box::new(CoreStmt::Gate(CoreGate::H(cq(0)))),
        },
    ]);
    let d = denote(&reset_loop, 1, &opts).unwrap();
    println!(
        "H; while M[q0] do H — converged to {} operation(s) (probabilistic reset)",
        d.operations.len()
    );
}
