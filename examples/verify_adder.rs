//! Verify the paper's adder benchmark (`programs/adder.qbr`, Fig. 6.2) —
//! the workload behind Fig. 6.3 / Fig. 10.2.
//!
//! Usage: `cargo run --release --example verify_adder -- [n] [sat|anf|bdd] [raw|full]`
//! (defaults: the fixture file's n = 50, sat, raw).

use qborrow::core::{verify_program, BackendKind, BackendOptions, VerifyOptions};
use qborrow::formula::Simplify;
use qborrow::lang::{adder_source, elaborate, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1).and_then(|s| s.parse::<usize>().ok()) {
        Some(n) => adder_source(n),
        None => std::fs::read_to_string("programs/adder.qbr")?,
    };
    let backend = match args.get(2).map(String::as_str) {
        Some("anf") => BackendKind::Anf,
        Some("bdd") => BackendKind::Bdd,
        _ => BackendKind::Sat,
    };
    let simplify = match args.get(3).map(String::as_str) {
        Some("full") => Simplify::Full,
        _ => Simplify::Raw,
    };
    let program = elaborate(&parse(&source)?)?;
    println!(
        "adder benchmark: {} qubits, {} gates, verifying {} dirty qubits with {backend} ({simplify:?})",
        program.num_qubits(),
        program.circuit.size(),
        program.qubits_to_verify().len()
    );
    let opts = VerifyOptions {
        backend,
        simplify,
        backend_options: BackendOptions::default(),
    };
    let report = verify_program(&program, &opts)?;
    println!(
        "result: all safe = {} | construction {:?} | solver {:?} | formula nodes {}",
        report.all_safe(),
        report.construction_time,
        report.solver_time,
        report.formula_nodes
    );
    Ok(())
}
