//! # qborrow
//!
//! A complete Rust implementation of *Borrowing Dirty Qubits in Quantum
//! Programs* (Su, Zhou, Feng, Ying — ASPLOS 2026): the QBorrow
//! programming language with `borrow`/`release` of dirty qubits, its
//! set-of-operations denotational semantics, and an efficient verifier
//! for **safe uncomputation** — the property that every execution acts as
//! the identity on a borrowed qubit, so the qubit (and any entanglement
//! it carries) is returned intact.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`lang`] | `qb-lang` | parser, elaboration, idle analysis, semantics |
//! | [`core`] | `qb-core` | the safe-uncomputation verifier (paper §6) |
//! | [`circuit`] | `qb-circuit` | gate-level IR, metrics, rendering |
//! | [`sim`] | `qb-sim` | state vectors, density operators, channels |
//! | [`synth`] | `qb-synth` | benchmark circuits (adders, MCX, figures) |
//! | [`sched`] | `qb-sched` | width reduction and multi-program packing |
//! | [`serve`] | `qb-serve` | the verify-on-change daemon, protocol and client |
//! | [`obs`] | `qb-obs` | spans, latency histograms, trace/metrics exporters |
//! | [`formula`] | `qb-formula` | XOR-AND graphs, ANF, CNF |
//! | [`sat`] | `qb-sat` | the CDCL solver |
//! | [`bdd`] | `qb-bdd` | the BDD backend |
//! | [`linalg`] | `qb-linalg` | complex dense linear algebra |
//!
//! # Quickstart
//!
//! ```
//! use qborrow::core::{verify_program, VerifyOptions};
//! use qborrow::lang::{elaborate, parse};
//!
//! let source = "
//!     borrow@ q[4];                 // working qubits (not verified)
//!     borrow a;                     // a dirty qubit: must be proven safe
//!     CCNOT[q[1], q[2], a];
//!     CCNOT[a, q[3], q[4]];
//!     CCNOT[q[1], q[2], a];
//!     CCNOT[a, q[3], q[4]];         // Fig. 1.3: CCCNOT via a dirty qubit
//!     release a;
//! ";
//! let program = elaborate(&parse(source)?)?;
//! let report = verify_program(&program, &VerifyOptions::default())?;
//! assert!(report.all_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use qb_bdd as bdd;
pub use qb_circuit as circuit;
pub use qb_core as core;
pub use qb_formula as formula;
pub use qb_lang as lang;
pub use qb_linalg as linalg;
pub use qb_obs as obs;
pub use qb_sat as sat;
pub use qb_sched as sched;
pub use qb_serve as serve;
pub use qb_sim as sim;
pub use qb_synth as synth;
