//! The `qborrow` command-line verifier — the counterpart of the paper
//! artifact's `./qborrow ../examples/adder.qbr` binary, plus the
//! verify-on-change serving layer.
//!
//! ```text
//! qborrow verify <file.qbr|-> [--backend sat|anf|bdd|auto] [--simplify raw|full]
//!                             [--jobs N] [--trace-out <path>] [--stats-json]
//! qborrow info   <file.qbr|->
//! qborrow render <file.qbr|->
//!
//! qborrow serve  --socket <path> [--tcp <addr>] [--backend ...] [--simplify ...] [--quiet]
//!                [--default-deadline-ms N] [--state-dir <dir>] [--log-file <path>]
//!                [--trace-dir <dir>] [--trace-retain N] [--slow-ms N] [--sample-interval-ms N]
//! qborrow client verify <file.qbr|-> [--socket <path>|--addr <tcp>] [--name <name>]
//!                       [--backend <name>] [--deadline-ms N] [--trace-out <path>]
//! qborrow client edit   <file.qbr|-> [--socket <path>|--addr <tcp>] [--name <name>] [--backend <name>]
//! qborrow client status [--socket <path>|--addr <tcp>] [--json]
//! qborrow client top    [--socket <path>|--addr <tcp>] [--interval-ms N] [--once] [--json]
//! qborrow client trace  <request_id> [--socket <path>|--addr <tcp>] [--trace-out <path>]
//! qborrow client metrics|shutdown [--socket <path>|--addr <tcp>]
//! qborrow client unload <name> [--socket <path>|--addr <tcp>]
//! qborrow watch  <file.qbr> [--socket <path>|--addr <tcp>] [--interval-ms N] [--backend <name>]
//! ```
//!
//! `<file.qbr>` may be `-` to read the program from stdin (for editor
//! integrations). Exit codes: `0` success/all-safe, `1` verification
//! found unsafe qubits or a runtime error occurred, `2` malformed input
//! (unreadable file, parse or elaboration error) or bad usage.
//!
//! The daemon keeps one warm verification session per loaded program;
//! `client verify` loads (or re-uses) and verifies over the daemon, and
//! `watch` re-verifies on every file change — tracked as a
//! (device, inode, mtime, length) stamp so save-via-rename within the
//! mtime granularity is caught — paying only for the edited gate suffix.

use qborrow::circuit::render_with_labels;
use qborrow::core::{
    verify_program, verify_program_parallel, BackendKind, BackendOptions, VerifyOptions, Violation,
};
use qborrow::formula::Simplify;
use qborrow::lang::{elaborate, parse, ElaboratedProgram};
use qborrow::serve::{Client, Json, ServeOptions, ServerLimits};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

/// Exit code for malformed input / bad usage.
const EXIT_BAD_INPUT: u8 = 2;
/// Exit code when the daemon sheds the request (`overloaded` /
/// `unavailable`): the program was not judged unsafe, the daemon just
/// declined the work. Scripts can distinguish "retry later" from a
/// real verification failure.
const EXIT_SHED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         qborrow verify <file.qbr|-> [--backend sat|anf|bdd|auto] [--simplify raw|full] [--jobs N]\n  \
                 [--trace-out <path>] [--stats-json]\n  \
         qborrow info   <file.qbr|->\n  \
         qborrow render <file.qbr|->\n  \
         qborrow serve  --socket <path> [--tcp <addr>] [--backend sat|anf|bdd|auto]\n  \
                 [--simplify raw|full] [--max-sessions N] [--idle-timeout-ms N]\n  \
                 [--arena-gc-floor N] [--decision-cache N] [--default-deadline-ms N]\n  \
                 [--queue-budget N] [--breaker-threshold N] [--breaker-cooldown-ms N]\n  \
                 [--state-dir <dir>] [--log-file <path>] [--quiet]\n  \
                 [--trace-dir <dir>] [--trace-retain N] [--slow-ms N] [--sample-interval-ms N]\n  \
         qborrow client verify|edit <file.qbr|-> [--socket <path>|--addr <tcp>] [--name <name>]\n  \
                 [--backend <name>] [--deadline-ms N] [--trace-out <path>]\n  \
         qborrow client status [--socket <path>|--addr <tcp>] [--json]\n  \
         qborrow client top [--socket <path>|--addr <tcp>] [--interval-ms N] [--once] [--json]\n  \
         qborrow client trace <request_id> [--socket <path>|--addr <tcp>] [--trace-out <path>]\n  \
         qborrow client metrics|shutdown [--socket <path>|--addr <tcp>]\n  \
         qborrow client unload <name> [--socket <path>|--addr <tcp>]\n  \
         qborrow watch  <file.qbr> [--socket <path>|--addr <tcp>] [--interval-ms N] [--backend <name>]"
    );
    ExitCode::from(EXIT_BAD_INPUT)
}

/// Reads a program source; `-` means stdin.
fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut source = String::new();
        std::io::stdin()
            .read_to_string(&mut source)
            .map_err(|e| format!("<stdin>: {e}"))?;
        Ok(source)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn load(path: &str) -> Result<ElaboratedProgram, String> {
    let source = read_source(path)?;
    let ast = parse(&source).map_err(|e| format!("{path}: {e}"))?;
    elaborate(&ast).map_err(|e| format!("{path}: {e}"))
}

fn default_socket() -> PathBuf {
    std::env::var_os("QBORROW_SOCKET")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("qborrow.sock"))
}

/// Parses `--backend`/`--simplify` at position `i`; returns whether the
/// flag was consumed.
fn parse_backend_flag(
    args: &[String],
    i: &mut usize,
    backend: &mut BackendKind,
    simplify: &mut Simplify,
) -> Result<bool, String> {
    match args[*i].as_str() {
        "--backend" => {
            *backend = match args.get(*i + 1).map(String::as_str) {
                Some(name) => match BackendKind::parse(name) {
                    Some(kind) => kind,
                    None => {
                        return Err(format!(
                            "unknown backend {name:?} (valid backends: {})",
                            BackendKind::valid_names()
                        ))
                    }
                },
                None => {
                    return Err(format!(
                        "--backend expects a name (valid backends: {})",
                        BackendKind::valid_names()
                    ))
                }
            };
            *i += 2;
            Ok(true)
        }
        "--simplify" => {
            *simplify = match args.get(*i + 1).map(String::as_str) {
                Some("raw") => Simplify::Raw,
                Some("full") => Simplify::Full,
                other => return Err(format!("unknown simplify mode {other:?}")),
            };
            *i += 2;
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "serve" => return cmd_serve(&args[1..]),
        "client" => return cmd_client(&args[1..]),
        "watch" => return cmd_watch(&args[1..]),
        _ => {}
    }
    let Some(path) = args.get(1) else {
        return usage();
    };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_BAD_INPUT);
        }
    };
    match command {
        "info" => {
            println!(
                "{path}: {} qubits, {} gates, depth {}, classical: {}",
                program.num_qubits(),
                program.circuit.size(),
                program.circuit.depth(),
                program.circuit.is_classical()
            );
            for reg in &program.registers {
                println!(
                    "  register {:<8} kind={:<14} qubits {:?} live from gate {}{}",
                    reg.name,
                    format!("{:?}", reg.kind),
                    reg.qubits(),
                    reg.live_from,
                    reg.released_at
                        .map(|g| format!(", released at {g}"))
                        .unwrap_or_default()
                );
            }
            ExitCode::SUCCESS
        }
        "render" => {
            let labels: Vec<String> = (0..program.num_qubits())
                .map(|q| program.qubit_name(q).to_string())
                .collect();
            print!("{}", render_with_labels(&program.circuit, &labels));
            ExitCode::SUCCESS
        }
        "verify" => cmd_verify(path, &program, &args[2..]),
        _ => usage(),
    }
}

fn cmd_verify(path: &str, program: &ElaboratedProgram, flags: &[String]) -> ExitCode {
    let mut backend = BackendKind::Sat;
    let mut simplify = Simplify::Raw;
    let mut jobs = 1usize;
    let mut trace_out: Option<PathBuf> = None;
    let mut stats_json = false;
    let mut i = 0;
    while i < flags.len() {
        match parse_backend_flag(flags, &mut i, &mut backend, &mut simplify) {
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
            Ok(true) => continue,
            Ok(false) => {}
        }
        match flags[i].as_str() {
            "--jobs" => {
                jobs = match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs expects a number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--trace-out" => {
                let Some(out) = flags.get(i + 1) else {
                    eprintln!("--trace-out expects a path");
                    return usage();
                };
                trace_out = Some(PathBuf::from(out));
                i += 2;
            }
            "--stats-json" => {
                stats_json = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    let opts = VerifyOptions {
        backend,
        simplify,
        backend_options: BackendOptions::default(),
    };
    let targets = program.qubits_to_verify();
    if targets.is_empty() {
        println!("{path}: no `borrow` qubits to verify (only borrow@/alloc)");
        return ExitCode::SUCCESS;
    }
    // The metrics registry is process-global; starting clean makes the
    // --stats-json counters attributable to exactly this run.
    if stats_json {
        qborrow::obs::reset_metrics();
    }
    if trace_out.is_some() {
        let _ = qborrow::obs::take_all_spans();
        qborrow::obs::set_enabled(true);
    }
    let outcome = if jobs == 1 {
        verify_program(program, &opts)
    } else {
        verify_program_parallel(program, &opts, jobs)
    };
    if let Some(out) = &trace_out {
        qborrow::obs::set_enabled(false);
        let trace = qborrow::obs::chrome_trace(&qborrow::obs::take_all_spans());
        if let Err(e) = std::fs::write(out, trace) {
            eprintln!("error: cannot write trace to {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace written to {} (open in Perfetto or chrome://tracing)",
            out.display()
        );
    }
    match outcome {
        Err(e) => {
            eprintln!("verification error: {e}");
            ExitCode::FAILURE
        }
        Ok(report) if stats_json => {
            println!("{}", verify_stats_json(path, program, backend, &report));
            if report.all_safe() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(report) => {
            for v in &report.verdicts {
                if v.safe {
                    println!(
                        "  {:<8} SAFE   (|0>: {:?}, |+>: {:?})",
                        program.qubit_name(v.qubit),
                        v.zero_time,
                        v.plus_time
                    );
                } else {
                    let ce = v.counterexample.as_ref().expect("unsafe has witness");
                    println!(
                        "  {:<8} UNSAFE ({})",
                        program.qubit_name(v.qubit),
                        ce.violation
                    );
                    if let Some(bits) = &ce.basis_assignment {
                        let rendered: Vec<String> = bits
                            .iter()
                            .enumerate()
                            .filter(|&(_, &b)| b)
                            .map(|(q, _)| program.qubit_name(q).to_string())
                            .collect();
                        let detail = match ce.violation {
                            Violation::ZeroNotRestored => "initial basis state",
                            Violation::PlusNotRestored => "background on which |+> decoheres",
                        };
                        println!(
                            "           witness ({detail}): {{{}}} set, rest 0",
                            rendered.join(", ")
                        );
                    }
                }
            }
            println!(
                "{path}: {}/{} dirty qubits safe | backend {} ({:?}) | construct {:?} | solve {:?}",
                report.verdicts.iter().filter(|v| v.safe).count(),
                report.verdicts.len(),
                backend,
                simplify,
                report.construction_time,
                report.solver_time
            );
            if report.all_safe() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// Renders a one-shot verify as a single machine-readable JSON object:
/// verdicts, wall-clock phases, and the per-phase counters the run left
/// in the process metrics registry (solver propagations/conflicts,
/// backend cache rates, …).
fn verify_stats_json(
    path: &str,
    program: &ElaboratedProgram,
    backend: BackendKind,
    report: &qborrow::core::VerificationReport,
) -> Json {
    let verdicts: Vec<Json> = report
        .verdicts
        .iter()
        .map(|v| {
            Json::obj(vec![
                ("qubit", Json::Int(v.qubit as i64)),
                ("name", Json::Str(program.qubit_name(v.qubit).to_string())),
                ("safe", Json::Bool(v.safe)),
                ("verdict", Json::Str(v.verdict.name().to_string())),
                ("zero_ns", Json::Int(v.zero_time.as_nanos() as i64)),
                ("plus_ns", Json::Int(v.plus_time.as_nanos() as i64)),
            ])
        })
        .collect();
    let snapshot = qborrow::obs::metrics_snapshot();
    let counters: Vec<Json> = snapshot
        .counters
        .iter()
        .map(|(name, label, value)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("label", Json::Str(label.clone())),
                ("value", Json::Int(*value as i64)),
            ])
        })
        .collect();
    let phases: Vec<Json> = snapshot
        .histograms
        .iter()
        .map(|(name, label, hist)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("label", Json::Str(label.clone())),
                ("count", Json::Int(hist.count() as i64)),
                ("sum_ns", Json::Int(hist.sum() as i64)),
                ("p50_ns", Json::Int(hist.p50() as i64)),
                ("p95_ns", Json::Int(hist.p95() as i64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("file", Json::Str(path.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("all_safe", Json::Bool(report.all_safe())),
        ("qubits", Json::Int(program.num_qubits() as i64)),
        ("gates", Json::Int(program.circuit.size() as i64)),
        ("formula_nodes", Json::Int(report.formula_nodes as i64)),
        (
            "construct_ns",
            Json::Int(report.construction_time.as_nanos() as i64),
        ),
        ("solve_ns", Json::Int(report.solver_time.as_nanos() as i64)),
        ("verdicts", Json::Arr(verdicts)),
        ("counters", Json::Arr(counters)),
        ("latencies", Json::Arr(phases)),
    ])
}

fn cmd_serve(flags: &[String]) -> ExitCode {
    let mut socket = default_socket();
    let mut tcp: Option<String> = None;
    let mut backend = BackendKind::Sat;
    let mut simplify = Simplify::Raw;
    let mut log = true;
    let mut limits = ServerLimits::default();
    let mut state_dir: Option<PathBuf> = None;
    let mut log_file: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut trace_retain = 32usize;
    let mut slow_threshold: Option<std::time::Duration> = None;
    let mut sample_interval = std::time::Duration::from_secs(1);
    let mut i = 0;
    while i < flags.len() {
        match parse_backend_flag(flags, &mut i, &mut backend, &mut simplify) {
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
            Ok(true) => continue,
            Ok(false) => {}
        }
        match flags[i].as_str() {
            "--socket" => {
                let Some(path) = flags.get(i + 1) else {
                    eprintln!("--socket expects a path");
                    return usage();
                };
                socket = PathBuf::from(path);
                i += 2;
            }
            "--tcp" => {
                let Some(addr) = flags.get(i + 1) else {
                    eprintln!("--tcp expects an address (e.g. 127.0.0.1:7691)");
                    return usage();
                };
                tcp = Some(addr.to_string());
                i += 2;
            }
            "--max-sessions" => {
                limits.max_sessions = match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("--max-sessions expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--idle-timeout-ms" => {
                limits.idle_timeout = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => Some(std::time::Duration::from_millis(ms)),
                    _ => {
                        eprintln!("--idle-timeout-ms expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--arena-gc-floor" => {
                limits.arena_gc_floor = match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok())
                {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--arena-gc-floor expects a number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--decision-cache" => {
                limits.decision_cache_cap =
                    match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        Some(n) if n > 0 => Some(n),
                        _ => {
                            eprintln!("--decision-cache expects a positive number");
                            return usage();
                        }
                    };
                i += 2;
            }
            "--default-deadline-ms" => {
                limits.default_deadline = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok())
                {
                    Some(ms) if ms > 0 => Some(std::time::Duration::from_millis(ms)),
                    _ => {
                        eprintln!("--default-deadline-ms expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--queue-budget" => {
                limits.queue_budget = match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--queue-budget expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--breaker-threshold" => {
                limits.breaker_threshold =
                    match flags.get(i + 1).and_then(|s| s.parse::<u32>().ok()) {
                        Some(n) if n > 0 => n,
                        _ => {
                            eprintln!("--breaker-threshold expects a positive number");
                            return usage();
                        }
                    };
                i += 2;
            }
            "--breaker-cooldown-ms" => {
                limits.breaker_cooldown = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok())
                {
                    Some(ms) if ms > 0 => std::time::Duration::from_millis(ms),
                    _ => {
                        eprintln!("--breaker-cooldown-ms expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--state-dir" => {
                let Some(dir) = flags.get(i + 1) else {
                    eprintln!("--state-dir expects a directory path");
                    return usage();
                };
                state_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            "--log-file" => {
                let Some(file) = flags.get(i + 1) else {
                    eprintln!("--log-file expects a path");
                    return usage();
                };
                log_file = Some(PathBuf::from(file));
                i += 2;
            }
            "--trace-dir" => {
                let Some(dir) = flags.get(i + 1) else {
                    eprintln!("--trace-dir expects a directory path");
                    return usage();
                };
                trace_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            "--trace-retain" => {
                trace_retain = match flags.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--trace-retain expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--slow-ms" => {
                slow_threshold = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => Some(std::time::Duration::from_millis(ms)),
                    _ => {
                        eprintln!("--slow-ms expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--sample-interval-ms" => {
                sample_interval = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => std::time::Duration::from_millis(ms),
                    _ => {
                        eprintln!("--sample-interval-ms expects a positive number");
                        return usage();
                    }
                };
                i += 2;
            }
            "--quiet" => {
                log = false;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    let opts = ServeOptions {
        socket,
        tcp,
        verify: VerifyOptions {
            backend,
            simplify,
            backend_options: BackendOptions::default(),
        },
        log,
        limits,
        state_dir,
        log_file,
        trace_dir,
        trace_retain,
        slow_threshold,
        sample_interval,
    };
    match qborrow::serve::run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qborrow serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Trailing flags shared by the `qborrow client` subcommands.
struct ClientFlags {
    socket: PathBuf,
    addr: Option<String>,
    name: Option<String>,
    backend: Option<String>,
    deadline_ms: Option<u64>,
    trace_out: Option<PathBuf>,
    json: bool,
    once: bool,
    interval_ms: Option<u64>,
}

/// Parses trailing `--socket`/`--addr`/`--name`/`--backend`/
/// `--deadline-ms`/`--trace-out`/`--json`/`--once`/`--interval-ms`
/// flags shared by client commands. The backend name is validated
/// locally so a typo fails fast with exit code 2 instead of a daemon
/// round-trip.
fn parse_client_flags(flags: &[String]) -> Result<ClientFlags, String> {
    let mut socket = default_socket();
    let mut addr = None;
    let mut name = None;
    let mut backend = None;
    let mut deadline_ms = None;
    let mut trace_out = None;
    let mut json = false;
    let mut once = false;
    let mut interval_ms = None;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--socket" => {
                socket = PathBuf::from(
                    flags
                        .get(i + 1)
                        .ok_or("--socket expects a path")?
                        .to_string(),
                );
                i += 2;
            }
            "--addr" => {
                addr = Some(
                    flags
                        .get(i + 1)
                        .ok_or("--addr expects a TCP address (e.g. 127.0.0.1:7691)")?
                        .to_string(),
                );
                i += 2;
            }
            "--name" => {
                name = Some(
                    flags
                        .get(i + 1)
                        .ok_or("--name expects a value")?
                        .to_string(),
                );
                i += 2;
            }
            "--backend" => {
                let value = flags.get(i + 1).ok_or_else(|| {
                    format!(
                        "--backend expects a name (valid backends: {})",
                        BackendKind::valid_names()
                    )
                })?;
                if BackendKind::parse(value).is_none() {
                    return Err(format!(
                        "unknown backend {value:?} (valid backends: {})",
                        BackendKind::valid_names()
                    ));
                }
                backend = Some(value.to_string());
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => Some(ms),
                    _ => return Err("--deadline-ms expects a positive number".into()),
                };
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    flags
                        .get(i + 1)
                        .ok_or("--trace-out expects a path")?
                        .to_string(),
                ));
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            "--interval-ms" => {
                interval_ms = match flags.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => Some(ms),
                    _ => return Err("--interval-ms expects a positive number".into()),
                };
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(ClientFlags {
        socket,
        addr,
        name,
        backend,
        deadline_ms,
        trace_out,
        json,
        once,
        interval_ms,
    })
}

/// Connects with a short retry window so one-shot client commands ride
/// out a daemon restart instead of failing into its downtime. `--addr`
/// selects the TCP transport; the Unix socket is the default.
fn connect(socket: &PathBuf, addr: &Option<String>) -> Result<Client, ExitCode> {
    let retries = 5;
    let delay = std::time::Duration::from_millis(25);
    if let Some(addr) = addr {
        return Client::connect_tcp_with_retry(addr, retries, delay).map_err(|e| {
            eprintln!(
                "qborrow client: cannot reach daemon at {addr} ({e}); start one with \
                 `qborrow serve --tcp {addr}`"
            );
            ExitCode::FAILURE
        });
    }
    Client::connect_with_retry(socket, retries, delay).map_err(|e| {
        eprintln!(
            "qborrow client: cannot reach daemon at {} ({e}); start one with \
             `qborrow serve --socket {}`",
            socket.display(),
            socket.display()
        );
        ExitCode::FAILURE
    })
}

/// Prints an `ok:false` response; returns `true` when one was printed.
/// If the daemon shed the request (`overloaded` admission reject or
/// `unavailable` circuit breaker), prints the retry hint and returns
/// the dedicated shed exit code so scripts can tell "retry later"
/// apart from a genuine failure.
fn print_shed(response: &Json) -> Option<ExitCode> {
    let retry_after = qborrow::serve::shed_retry_after(response)?;
    let code = response
        .get("code")
        .and_then(Json::as_str)
        .unwrap_or("overloaded");
    let msg = response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("daemon shed the request");
    eprintln!("shed ({code}): {msg} (retry after {retry_after}ms)");
    Some(ExitCode::from(EXIT_SHED))
}

fn print_error(response: &Json) -> bool {
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => false,
        _ => {
            let msg = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown daemon error");
            eprintln!("error: {msg}");
            true
        }
    }
}

/// Renders a daemon verify response; returns `all_safe`.
fn print_verify_response(label: &str, response: &Json) -> bool {
    let verdicts = response
        .get("verdicts")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for v in verdicts {
        let name = v.get("name").and_then(Json::as_str).unwrap_or("?");
        if v.get("safe").and_then(Json::as_bool) == Some(true) {
            println!("  {name:<8} SAFE");
        } else if v.get("verdict").and_then(Json::as_str) == Some("unknown") {
            let reason = v
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("interrupted");
            println!("  {name:<8} UNKNOWN ({reason}; re-run without --deadline-ms to decide)");
        } else {
            let violation = v
                .get("violation")
                .and_then(Json::as_str)
                .unwrap_or("violation");
            println!("  {name:<8} UNSAFE ({violation})");
        }
    }
    let all_safe = response.get("all_safe").and_then(Json::as_bool) == Some(true);
    let safe = verdicts
        .iter()
        .filter(|v| v.get("safe").and_then(Json::as_bool) == Some(true))
        .count();
    let unknown = response.get("unknowns").and_then(Json::as_i64).unwrap_or(0);
    let solve_ms = response
        .get("solve_ns")
        .and_then(Json::as_i64)
        .map(|ns| ns as f64 / 1e6)
        .unwrap_or(0.0);
    let unknown_note = if unknown > 0 {
        format!(" ({unknown} unknown: deadline expired)")
    } else {
        String::new()
    };
    println!(
        "{label}: {safe}/{} dirty qubits safe{unknown_note} | daemon solve {solve_ms:.2}ms",
        verdicts.len()
    );
    all_safe
}

fn print_edit_response(label: &str, response: &Json) {
    let strategy = response
        .get("strategy")
        .and_then(Json::as_str)
        .unwrap_or("?");
    match strategy {
        "incremental" => {
            let common = response
                .get("common_prefix")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            let gates = response.get("gates").and_then(Json::as_i64).unwrap_or(0);
            let added = response
                .get("added_gates")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            let removed = response
                .get("removed_gates")
                .and_then(Json::as_i64)
                .unwrap_or(0);
            println!(
                "{label}: incremental edit (prefix {common}/{gates} warm, -{removed}/+{added} gates)"
            );
        }
        "identical" => println!("{label}: no structural change"),
        other => println!("{label}: {other}"),
    }
}

fn cmd_client(args: &[String]) -> ExitCode {
    let Some(sub) = args.first().map(String::as_str) else {
        return usage();
    };
    let (positional, flags): (Vec<&String>, Vec<&String>) = {
        // Positionals come before the first `--flag`.
        let split = args[1..]
            .iter()
            .position(|a| a.starts_with("--"))
            .map(|p| p + 1)
            .unwrap_or(args.len());
        (
            args[1..split].iter().collect(),
            args[split..].iter().collect(),
        )
    };
    let flags: Vec<String> = flags.into_iter().cloned().collect();
    let ClientFlags {
        socket,
        addr,
        name,
        backend,
        deadline_ms,
        trace_out,
        json,
        once,
        interval_ms,
    } = match parse_client_flags(&flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    match sub {
        "verify" | "edit" => {
            let Some(path) = positional.first() else {
                return usage();
            };
            let source = match read_source(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_BAD_INPUT);
                }
            };
            let name = name.unwrap_or_else(|| path.to_string());
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            let result = (|| -> std::io::Result<ExitCode> {
                if sub == "edit" {
                    let response = client.edit_with(&name, &source, backend.as_deref())?;
                    if let Some(code) = print_shed(&response) {
                        return Ok(code);
                    }
                    if print_error(&response) {
                        return Ok(ExitCode::from(EXIT_BAD_INPUT));
                    }
                    print_edit_response(&name, &response);
                } else {
                    let response = client.load_with(&name, &source, backend.as_deref())?;
                    if let Some(code) = print_shed(&response) {
                        return Ok(code);
                    }
                    if print_error(&response) {
                        return Ok(ExitCode::from(EXIT_BAD_INPUT));
                    }
                    let reused = response.get("reused").and_then(Json::as_bool) == Some(true);
                    let response =
                        client.verify_traced(&name, None, deadline_ms, trace_out.is_some())?;
                    if let Some(code) = print_shed(&response) {
                        return Ok(code);
                    }
                    if print_error(&response) {
                        return Ok(ExitCode::FAILURE);
                    }
                    if let Some(out) = &trace_out {
                        let trace = response.get("trace").and_then(Json::as_str).unwrap_or("");
                        std::fs::write(out, trace)?;
                        eprintln!(
                            "trace written to {} (open in Perfetto or chrome://tracing)",
                            out.display()
                        );
                    }
                    let all_safe = print_verify_response(&name, &response);
                    if reused {
                        println!("(warm session re-used)");
                    }
                    return Ok(if all_safe {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    });
                }
                Ok(ExitCode::SUCCESS)
            })();
            result.unwrap_or_else(|e| {
                eprintln!("qborrow client: {e}");
                ExitCode::FAILURE
            })
        }
        "status" => {
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.status() {
                Err(e) => {
                    eprintln!("qborrow client: {e}");
                    ExitCode::FAILURE
                }
                Ok(response) => {
                    if print_error(&response) {
                        return ExitCode::FAILURE;
                    }
                    if json {
                        println!("{response}");
                        return ExitCode::SUCCESS;
                    }
                    let programs = response
                        .get("programs")
                        .and_then(Json::as_arr)
                        .unwrap_or(&[]);
                    println!("{} loaded program(s)", programs.len());
                    for p in programs {
                        println!(
                            "  {:<24} hash {} backend {:<4} qubits {:>4} gates {:>6} verifies {:>4} \
                             edits {:>4} arena nodes {:>7} solver vars {:>7} clauses {:>7} \
                             bdd nodes {:>7} compactions {}",
                            p.get("name").and_then(Json::as_str).unwrap_or("?"),
                            p.get("hash").and_then(Json::as_str).unwrap_or("?"),
                            p.get("backend").and_then(Json::as_str).unwrap_or("?"),
                            p.get("qubits").and_then(Json::as_i64).unwrap_or(0),
                            p.get("gates").and_then(Json::as_i64).unwrap_or(0),
                            p.get("verifies").and_then(Json::as_i64).unwrap_or(0),
                            p.get("edits").and_then(Json::as_i64).unwrap_or(0),
                            p.get("arena_nodes").and_then(Json::as_i64).unwrap_or(0),
                            p.get("solver_vars").and_then(Json::as_i64).unwrap_or(0),
                            p.get("live_clauses").and_then(Json::as_i64).unwrap_or(0),
                            p.get("bdd_resident_nodes").and_then(Json::as_i64).unwrap_or(0),
                            p.get("compactions").and_then(Json::as_i64).unwrap_or(0),
                        );
                    }
                    ExitCode::SUCCESS
                }
            }
        }
        "unload" => {
            let Some(target) = positional.first() else {
                return usage();
            };
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.unload(target) {
                Err(e) => {
                    eprintln!("qborrow client: {e}");
                    ExitCode::FAILURE
                }
                Ok(response) => {
                    if print_error(&response) {
                        ExitCode::FAILURE
                    } else {
                        println!("unloaded {target}");
                        ExitCode::SUCCESS
                    }
                }
            }
        }
        "metrics" => {
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.metrics() {
                Err(e) => {
                    eprintln!("qborrow client: {e}");
                    ExitCode::FAILURE
                }
                Ok(response) => {
                    if print_error(&response) {
                        return ExitCode::FAILURE;
                    }
                    // Raw Prometheus text exposition, scrape-ready.
                    print!(
                        "{}",
                        response.get("metrics").and_then(Json::as_str).unwrap_or("")
                    );
                    ExitCode::SUCCESS
                }
            }
        }
        "top" => {
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            let interval = std::time::Duration::from_millis(interval_ms.unwrap_or(1000));
            loop {
                let response = match client.top() {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("qborrow client: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if print_error(&response) {
                    return ExitCode::FAILURE;
                }
                if json {
                    println!("{response}");
                } else {
                    if !once {
                        // Clear the terminal and home the cursor so the
                        // dashboard repaints in place.
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", render_top(&response));
                }
                if once {
                    return ExitCode::SUCCESS;
                }
                std::thread::sleep(interval);
            }
        }
        "trace" => {
            let Some(rid) = positional.first().and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("client trace expects a numeric <request_id>");
                return usage();
            };
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.trace(rid) {
                Err(e) => {
                    eprintln!("qborrow client: {e}");
                    ExitCode::FAILURE
                }
                Ok(response) => {
                    if print_error(&response) {
                        return ExitCode::FAILURE;
                    }
                    let trace = response.get("trace").and_then(Json::as_str).unwrap_or("");
                    match &trace_out {
                        Some(out) => {
                            if let Err(e) = std::fs::write(out, trace) {
                                eprintln!("error: cannot write trace to {}: {e}", out.display());
                                return ExitCode::FAILURE;
                            }
                            eprintln!(
                                "trace for request {rid} written to {} (open in Perfetto or \
                                 chrome://tracing)",
                                out.display()
                            );
                        }
                        None => print!("{trace}"),
                    }
                    ExitCode::SUCCESS
                }
            }
        }
        "shutdown" => {
            let mut client = match connect(&socket, &addr) {
                Ok(c) => c,
                Err(code) => return code,
            };
            match client.shutdown() {
                Err(e) => {
                    eprintln!("qborrow client: {e}");
                    ExitCode::FAILURE
                }
                Ok(_) => {
                    println!("daemon shut down");
                    ExitCode::SUCCESS
                }
            }
        }
        _ => usage(),
    }
}

/// Renders one `top` response as the text dashboard: windowed request
/// rates, per-request-type latency percentiles, and per-session gauges.
/// Rates and percentiles the sampler ring cannot answer yet (fewer than
/// two snapshots, no samples in the window) render as `-`.
fn render_top(response: &Json) -> String {
    use std::fmt::Write as _;
    let int = |key: &str| response.get(key).and_then(Json::as_i64).unwrap_or(0);
    let rate = |key: &str| -> String {
        match response
            .get("rates")
            .and_then(|r| r.get(key))
            .and_then(Json::as_f64)
        {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        }
    };
    let cell = |v: Option<&Json>| -> String {
        match v.and_then(Json::as_i64) {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        }
    };
    let mut out = String::new();
    let health = response
        .get("health")
        .and_then(Json::as_str)
        .unwrap_or("ok");
    let _ = writeln!(
        out,
        "qborrow top | health {} | window {:.0}s ({} samples) | {} requests | {} session(s) | \
         dropped spans {}",
        health,
        int("window_ms") as f64 / 1e3,
        int("samples"),
        int("requests"),
        int("sessions_count"),
        int("dropped_spans"),
    );
    let _ = writeln!(
        out,
        "rates: {} req/s | {} verify/s | {} conflicts/s | {} propagations/s",
        rate("req_per_s"),
        rate("verify_per_s"),
        rate("conflicts_per_s"),
        rate("propagations_per_s"),
    );
    // Windowed shed rate by reason, plus the lifetime total and the
    // live queue occupancy the health state is derived from.
    let shed_rate = |key: &str| -> String {
        match response
            .get("shed")
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
        {
            Some(x) => format!("{x:.1}"),
            None => "-".to_string(),
        }
    };
    let _ = writeln!(
        out,
        "shed/s: {} (mailbox_full {} | deadline {} | brownout {} | breaker {}) | {} shed total | \
         {} queued",
        shed_rate("per_s"),
        shed_rate("mailbox_full"),
        shed_rate("deadline"),
        shed_rate("brownout"),
        shed_rate("breaker"),
        int("sheds_total"),
        int("queued_requests"),
    );
    if let Some(rec) = response.get("recorder") {
        let ri = |key: &str| rec.get(key).and_then(Json::as_i64).unwrap_or(0);
        let _ = writeln!(
            out,
            "recorder: {} recorded ({} retained, {} overflowed) | {} exemplars | resident arena \
             {} bdd {}",
            ri("recorded"),
            ri("retained"),
            ri("overflow"),
            ri("exemplars"),
            int("resident_arena_nodes"),
            int("resident_bdd_nodes"),
        );
    }
    let types = response
        .get("request_types")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if !types.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<12} {:>10} {:>10} {:>10}",
            "request", "rate/s", "p50_us", "p95_us"
        );
        for t in types {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>10}",
                t.get("cmd").and_then(Json::as_str).unwrap_or("?"),
                t.get("rate_per_s")
                    .and_then(Json::as_f64)
                    .map_or_else(|| "-".to_string(), |x| format!("{x:.1}")),
                cell(t.get("p50_us")),
                cell(t.get("p95_us")),
            );
        }
    }
    let sessions = response
        .get("sessions")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if !sessions.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<24} {:>6} {:>6} {:>12} {:>12} {:>10} {:>10}",
            "session", "queue", "q.max", "wait_p50_us", "wait_p95_us", "arena", "bdd"
        );
        for s in sessions {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>6} {:>12} {:>12} {:>10} {:>10}",
                s.get("session").and_then(Json::as_str).unwrap_or("?"),
                cell(s.get("queue_depth")),
                cell(s.get("queue_depth_max")),
                cell(s.get("mailbox_wait_p50_us")),
                cell(s.get("mailbox_wait_p95_us")),
                cell(s.get("arena_nodes")),
                cell(s.get("bdd_resident_nodes")),
            );
        }
    }
    out
}

fn cmd_watch(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    if path == "-" {
        eprintln!("qborrow watch: needs a real file to poll (not stdin)");
        return usage();
    }
    let mut socket = default_socket();
    let mut addr: Option<String> = None;
    let mut interval_ms = 200u64;
    let mut backend: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--socket expects a path");
                    return usage();
                };
                socket = PathBuf::from(p);
                i += 2;
            }
            "--addr" => {
                let Some(a) = args.get(i + 1) else {
                    eprintln!("--addr expects a TCP address (e.g. 127.0.0.1:7691)");
                    return usage();
                };
                addr = Some(a.to_string());
                i += 2;
            }
            "--backend" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!(
                        "--backend expects a name (valid backends: {})",
                        BackendKind::valid_names()
                    );
                    return usage();
                };
                if BackendKind::parse(value).is_none() {
                    eprintln!(
                        "unknown backend {value:?} (valid backends: {})",
                        BackendKind::valid_names()
                    );
                    return usage();
                }
                backend = Some(value.to_string());
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--interval-ms expects a number");
                        return usage();
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }

    /// Identity + content stamp of the watched file. mtime alone misses
    /// an editor's save-via-rename landing within the filesystem's mtime
    /// granularity; tracking (device, inode, mtime, mtime_nsec, length)
    /// catches both in-place writes and atomic replacements.
    #[derive(PartialEq, Eq, Clone, Copy)]
    struct FileStamp {
        dev: u64,
        ino: u64,
        mtime: i64,
        mtime_nsec: i64,
        len: u64,
    }

    let stamp = |path: &str| -> Option<FileStamp> {
        use std::os::unix::fs::MetadataExt;
        let m = std::fs::metadata(path).ok()?;
        Some(FileStamp {
            dev: m.dev(),
            ino: m.ino(),
            mtime: m.mtime(),
            mtime_nsec: m.mtime_nsec(),
            len: m.len(),
        })
    };

    /// What one watch round learned about the daemon: `busy` widens the
    /// poll interval (daemon health was non-`ok`), `retry` re-runs the
    /// round on the next tick even without a file change (the daemon
    /// shed the request or was unreachable).
    struct RoundStatus {
        busy: bool,
        retry: bool,
    }
    let health_busy = |response: &Json| -> bool {
        // Every daemon response carries its health state; anything but
        // `ok` means we should poll more gently.
        matches!(response.get("health").and_then(Json::as_str), Some(h) if h != "ok")
    };

    // Initial load + verify. A fresh connection per round keeps the
    // single-connection daemon available to other clients in between,
    // and the retrying connect rides out a daemon restart (the socket
    // vanishes for the restart window, then a retry lands on the fresh
    // listener and the `not_loaded` fallback below re-loads).
    let run_round = |first: bool| -> std::io::Result<RoundStatus> {
        let done = |busy: bool| RoundStatus { busy, retry: false };
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("watch: {e}");
                return Ok(done(false));
            }
        };
        let mut client = match &addr {
            Some(a) => Client::connect_tcp_with_retry(a, 8, std::time::Duration::from_millis(50))?,
            None => Client::connect_with_retry(&socket, 8, std::time::Duration::from_millis(50))?,
        };
        let backend = backend.as_deref();
        let response = if first {
            client.load_with(path, &source, backend)?
        } else {
            let mut response = client.edit_with(path, &source, backend)?;
            if response.get("code").and_then(Json::as_str) == Some("not_loaded") {
                // The daemon restarted (or the program was unloaded by
                // another client): recover by loading from scratch.
                eprintln!("watch: {path} not loaded on the daemon; reloading");
                response = client.load_with(path, &source, backend)?;
            }
            response
        };
        if let Some(retry_after) = qborrow::serve::shed_retry_after(&response) {
            eprintln!("watch: daemon shed the update (retry in {retry_after}ms); backing off");
            return Ok(RoundStatus {
                busy: true,
                retry: true,
            });
        }
        if print_error(&response) {
            // Parse error while editing: keep watching.
            return Ok(done(health_busy(&response)));
        }
        if response.get("strategy").is_some() {
            print_edit_response(path, &response);
        }
        let response = client.verify(path, None)?;
        if let Some(retry_after) = qborrow::serve::shed_retry_after(&response) {
            eprintln!("watch: daemon shed the verify (retry in {retry_after}ms); backing off");
            return Ok(RoundStatus {
                busy: true,
                retry: true,
            });
        }
        if !print_error(&response) {
            print_verify_response(path, &response);
            // One latency line per round: this round's daemon-side time
            // split into mailbox queue-wait vs handle time, then the
            // warm-session percentiles from the daemon's per-target/
            // per-root histograms (log-bucketed, so these are bucket
            // upper bounds).
            let us = |key: &str| response.get(key).and_then(Json::as_i64).unwrap_or(0);
            let ms = |key: &str| us(key) as f64 / 1e6;
            println!(
                "  latency: queue {:.2}ms + handle {:.2}ms (mailbox wait p95 {}us) | \
                 target p50 {}us p95 {}us | root p50 {}us p95 {}us",
                ms("queue_ns"),
                ms("handle_ns"),
                us("mailbox_wait_p95_us"),
                us("target_p50_us"),
                us("target_p95_us"),
                us("root_p50_us"),
                us("root_p95_us"),
            );
        }
        Ok(done(health_busy(&response)))
    };

    let mut backoff = match run_round(true) {
        Ok(status) => status.busy,
        Err(e) => {
            eprintln!("qborrow watch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut last = stamp(path);
    // A failed round (daemon crashed mid-request, restart outlasting the
    // connect retries) is retried on the next poll tick even without a
    // file change, so watch survives daemon downtime of any length.
    let mut pending = false;
    eprintln!("watching {path} (every {interval_ms}ms; Ctrl-C to stop)");
    loop {
        // While the daemon reports non-`ok` health, poll 5x more gently
        // (capped at 5s) so a fleet of watchers doesn't pile onto an
        // already-overloaded daemon; the next `ok` response restores
        // the configured cadence.
        let sleep_ms = if backoff {
            interval_ms.max(interval_ms.saturating_mul(5).min(5_000))
        } else {
            interval_ms
        };
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        let now = stamp(path);
        if now != last || pending {
            last = now;
            (backoff, pending) = match run_round(false) {
                Ok(status) => (status.busy, status.retry),
                Err(e) => {
                    eprintln!("qborrow watch: daemon unreachable ({e}); retrying");
                    (backoff, true)
                }
            };
        }
    }
}
