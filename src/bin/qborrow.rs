//! The `qborrow` command-line verifier — the counterpart of the paper
//! artifact's `./qborrow ../examples/adder.qbr` binary.
//!
//! ```text
//! qborrow verify <file.qbr> [--backend sat|anf|bdd] [--simplify raw|full]
//!                           [--jobs N]
//! qborrow info   <file.qbr>
//! qborrow render <file.qbr>
//! ```
//!
//! `--jobs N` fans the per-qubit verification out over `N` worker
//! threads (`--jobs 0` = all available cores), one incremental
//! verification session per worker.

use qborrow::circuit::render_with_labels;
use qborrow::core::{
    verify_program, verify_program_parallel, BackendKind, BackendOptions, VerifyOptions, Violation,
};
use qborrow::formula::Simplify;
use qborrow::lang::{elaborate, parse, ElaboratedProgram};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  qborrow verify <file.qbr> [--backend sat|anf|bdd] [--simplify raw|full] [--jobs N]\n  qborrow info   <file.qbr>\n  qborrow render <file.qbr>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ElaboratedProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let ast = parse(&source).map_err(|e| format!("{path}: {e}"))?;
    elaborate(&ast).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    let Some(path) = args.get(1) else {
        return usage();
    };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        "info" => {
            println!(
                "{path}: {} qubits, {} gates, depth {}, classical: {}",
                program.num_qubits(),
                program.circuit.size(),
                program.circuit.depth(),
                program.circuit.is_classical()
            );
            for reg in &program.registers {
                println!(
                    "  register {:<8} kind={:<14} qubits {:?} live from gate {}{}",
                    reg.name,
                    format!("{:?}", reg.kind),
                    reg.qubits(),
                    reg.live_from,
                    reg.released_at
                        .map(|g| format!(", released at {g}"))
                        .unwrap_or_default()
                );
            }
            ExitCode::SUCCESS
        }
        "render" => {
            let labels: Vec<String> = (0..program.num_qubits())
                .map(|q| program.qubit_name(q).to_string())
                .collect();
            print!("{}", render_with_labels(&program.circuit, &labels));
            ExitCode::SUCCESS
        }
        "verify" => {
            let mut backend = BackendKind::Sat;
            let mut simplify = Simplify::Raw;
            let mut jobs = 1usize;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        jobs = match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                            Some(n) => n,
                            None => match args.get(i + 1) {
                                Some(bad) => {
                                    eprintln!("--jobs expects a number, got {bad:?}");
                                    return usage();
                                }
                                None => {
                                    eprintln!("--jobs expects a number");
                                    return usage();
                                }
                            },
                        };
                        i += 2;
                    }
                    "--backend" => {
                        backend = match args.get(i + 1).map(String::as_str) {
                            Some("sat") => BackendKind::Sat,
                            Some("anf") => BackendKind::Anf,
                            Some("bdd") => BackendKind::Bdd,
                            other => {
                                eprintln!("unknown backend {other:?}");
                                return usage();
                            }
                        };
                        i += 2;
                    }
                    "--simplify" => {
                        simplify = match args.get(i + 1).map(String::as_str) {
                            Some("raw") => Simplify::Raw,
                            Some("full") => Simplify::Full,
                            other => {
                                eprintln!("unknown simplify mode {other:?}");
                                return usage();
                            }
                        };
                        i += 2;
                    }
                    other => {
                        eprintln!("unknown flag {other:?}");
                        return usage();
                    }
                }
            }
            let opts = VerifyOptions {
                backend,
                simplify,
                backend_options: BackendOptions::default(),
            };
            let targets = program.qubits_to_verify();
            if targets.is_empty() {
                println!("{path}: no `borrow` qubits to verify (only borrow@/alloc)");
                return ExitCode::SUCCESS;
            }
            let outcome = if jobs == 1 {
                verify_program(&program, &opts)
            } else {
                verify_program_parallel(&program, &opts, jobs)
            };
            match outcome {
                Err(e) => {
                    eprintln!("verification error: {e}");
                    ExitCode::FAILURE
                }
                Ok(report) => {
                    for v in &report.verdicts {
                        if v.safe {
                            println!(
                                "  {:<8} SAFE   (|0>: {:?}, |+>: {:?})",
                                program.qubit_name(v.qubit),
                                v.zero_time,
                                v.plus_time
                            );
                        } else {
                            let ce = v.counterexample.as_ref().expect("unsafe has witness");
                            println!(
                                "  {:<8} UNSAFE ({})",
                                program.qubit_name(v.qubit),
                                ce.violation
                            );
                            if let Some(bits) = &ce.basis_assignment {
                                let rendered: Vec<String> = bits
                                    .iter()
                                    .enumerate()
                                    .filter(|&(_, &b)| b)
                                    .map(|(q, _)| program.qubit_name(q).to_string())
                                    .collect();
                                let detail = match ce.violation {
                                    Violation::ZeroNotRestored => "initial basis state",
                                    Violation::PlusNotRestored => {
                                        "background on which |+> decoheres"
                                    }
                                };
                                println!(
                                    "           witness ({detail}): {{{}}} set, rest 0",
                                    rendered.join(", ")
                                );
                            }
                        }
                    }
                    println!(
                        "{path}: {}/{} dirty qubits safe | backend {} ({:?}) | construct {:?} | solve {:?}",
                        report.verdicts.iter().filter(|v| v.safe).count(),
                        report.verdicts.len(),
                        backend,
                        simplify,
                        report.construction_time,
                        report.solver_time
                    );
                    if report.all_safe() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => usage(),
    }
}
