//! Bounded-memory soak tests: hundreds of edit cycles through one
//! long-lived [`VerifySession`] and through the daemon socket, asserting
//! that the formula arena and the decision cache stay under fixed bounds
//! (the PR-3 reclamation machinery: arena mark-sweep collection past a
//! watermark, LRU decision-cache eviction, solver compaction) while
//! every verdict still cross-checks against the independent fresh
//! pipeline [`verify_circuit_fresh`].

use qb_testutil::Rng;
use qborrow::circuit::Circuit;
use qborrow::core::{
    verify_circuit_fresh, BackendKind, CancelToken, InitialValue, VerifyLimits, VerifyOptions,
    VerifySession,
};
use qborrow::lang::{adder_source, elaborate, parse, QubitKind};
use qborrow::serve::{run, Client, Json, ServeOptions, ServerLimits};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

/// One session, 220 random edit cycles under tight memory limits: the
/// arena must stay bounded (collections fire and reclaim), the decision
/// cache must respect its cap, and verdicts must stay exact throughout.
#[test]
fn session_soak_memory_stays_bounded_over_200_edit_cycles() {
    const N: usize = 4;
    const CYCLES: usize = 220;
    const ARENA_BOUND: usize = 600;
    const CACHE_CAP: usize = 8;

    let mut rng = Rng::new(0x50A1_0001);
    let opts = VerifyOptions::default();
    let initial = vec![InitialValue::Free; N];
    let targets: Vec<usize> = (0..N).collect();
    let base = {
        let mut c = Circuit::new(N);
        c.toffoli(0, 1, 2).cnot(2, 3);
        c
    };
    let mut session = VerifySession::new(&base, &initial, &opts).expect("session builds");
    session.set_memory_limits(Some(64), Some(CACHE_CAP));

    let mut peak_arena = 0usize;
    for cycle in 0..CYCLES {
        let mut edited = Circuit::new(N);
        edited.toffoli(0, 1, 2).cnot(2, 3);
        for _ in 0..rng.gen_below(5) {
            match rng.gen_below(3) {
                0 => {
                    edited.x(rng.gen_below(N));
                }
                1 => {
                    let (c, t) = rng.gen_distinct2(N);
                    edited.cnot(c, t);
                }
                _ => {
                    let (c1, c2, t) = rng.gen_distinct3(N);
                    edited.toffoli(c1, c2, t);
                }
            }
        }
        session.apply_edit(&edited).expect("edit applies");
        let warm = session.verify_targets(&targets).expect("warm sweep");
        let fresh = verify_circuit_fresh(&edited, &initial, &targets, &opts).expect("fresh sweep");
        for (w, f) in warm.iter().zip(&fresh.verdicts) {
            assert_eq!(w.qubit, f.qubit);
            assert_eq!(w.safe, f.safe, "cycle {cycle}, qubit {}", w.qubit);
            assert_eq!(
                w.counterexample.as_ref().map(|ce| ce.violation),
                f.counterexample.as_ref().map(|ce| ce.violation),
                "cycle {cycle}, qubit {}",
                w.qubit
            );
        }
        let stats = session.stats();
        peak_arena = peak_arena.max(stats.arena_nodes);
        assert!(
            stats.arena_nodes < ARENA_BOUND,
            "cycle {cycle}: arena bounded, got {stats:?}"
        );
        assert!(
            stats.cached_decisions <= CACHE_CAP,
            "cycle {cycle}: decision cache bounded, got {stats:?}"
        );
    }

    let stats = session.stats();
    assert!(
        stats.arena_collections >= 2,
        "collections fire repeatedly over a long session: {stats:?}"
    );
    assert!(stats.arena_nodes_collected > 0);
    assert!(
        stats.decision_evictions > 0,
        "LRU evictions happen under a tight cap: {stats:?}"
    );
    assert!(
        stats.compactions >= 1,
        "solver compaction also fires: {stats:?}"
    );
    assert!(peak_arena < ARENA_BOUND);
}

/// Cross-backend soak: 110 random edit cycles through warm `bdd`, `anf`
/// and `auto` sessions under tight memory limits. Every verdict is
/// cross-checked against the independent fresh pipeline, the formula
/// arena stays bounded (collections fire, the backend memo tables follow
/// the node remap), and the BDD manager's resident node count stays
/// bounded across `Arena::collect` cycles instead of growing
/// monotonically with edit history.
#[test]
fn cross_backend_soak_bdd_anf_auto_stay_exact_and_bounded() {
    const N: usize = 4;
    const CYCLES: usize = 110;
    const ARENA_BOUND: usize = 600;
    const BDD_BOUND: usize = 600;
    const CACHE_CAP: usize = 8;

    for backend in [BackendKind::Bdd, BackendKind::Anf, BackendKind::Auto] {
        let mut rng = Rng::new(0x50A1_0002 ^ backend as u64);
        let opts = VerifyOptions {
            backend,
            ..VerifyOptions::default()
        };
        let initial = vec![InitialValue::Free; N];
        let targets: Vec<usize> = (0..N).collect();
        let base = {
            let mut c = Circuit::new(N);
            c.toffoli(0, 1, 2).cnot(2, 3);
            c
        };
        let mut session = VerifySession::new(&base, &initial, &opts).expect("session builds");
        session.set_memory_limits(Some(64), Some(CACHE_CAP));
        session.set_backend_limits(Some(64), Some(128), Some(64));

        let mut peak_arena = 0usize;
        let mut peak_bdd = 0usize;
        let mut bdd_shrank = false;
        let mut last_bdd = 0usize;
        for cycle in 0..CYCLES {
            let mut edited = Circuit::new(N);
            edited.toffoli(0, 1, 2).cnot(2, 3);
            for _ in 0..rng.gen_below(5) {
                match rng.gen_below(3) {
                    0 => {
                        edited.x(rng.gen_below(N));
                    }
                    1 => {
                        let (c, t) = rng.gen_distinct2(N);
                        edited.cnot(c, t);
                    }
                    _ => {
                        let (c1, c2, t) = rng.gen_distinct3(N);
                        edited.toffoli(c1, c2, t);
                    }
                }
            }
            session.apply_edit(&edited).expect("edit applies");
            let warm = session.verify_targets(&targets).expect("warm sweep");
            let fresh =
                verify_circuit_fresh(&edited, &initial, &targets, &opts).expect("fresh sweep");
            for (w, f) in warm.iter().zip(&fresh.verdicts) {
                assert_eq!(w.qubit, f.qubit);
                assert_eq!(
                    w.safe, f.safe,
                    "{backend}: cycle {cycle}, qubit {}",
                    w.qubit
                );
                assert_eq!(
                    w.counterexample.as_ref().map(|ce| ce.violation),
                    f.counterexample.as_ref().map(|ce| ce.violation),
                    "{backend}: cycle {cycle}, qubit {}",
                    w.qubit
                );
            }
            let stats = session.stats();
            peak_arena = peak_arena.max(stats.arena_nodes);
            peak_bdd = peak_bdd.max(stats.bdd_resident_nodes);
            if stats.bdd_resident_nodes < last_bdd {
                bdd_shrank = true;
            }
            last_bdd = stats.bdd_resident_nodes;
            assert!(
                stats.arena_nodes < ARENA_BOUND,
                "{backend}: cycle {cycle}: arena bounded, got {stats:?}"
            );
            assert!(
                stats.bdd_resident_nodes < BDD_BOUND,
                "{backend}: cycle {cycle}: BDD manager bounded, got {stats:?}"
            );
            assert!(
                stats.cached_decisions <= CACHE_CAP,
                "{backend}: cycle {cycle}: decision cache bounded, got {stats:?}"
            );
        }

        let stats = session.stats();
        assert!(
            stats.arena_collections >= 2,
            "{backend}: arena collections fire repeatedly: {stats:?}"
        );
        assert!(stats.arena_nodes_collected > 0, "{backend}: {stats:?}");
        assert!(
            stats.decision_hits > 0,
            "{backend}: revisited roots answer from the shared decision cache: {stats:?}"
        );
        match backend {
            BackendKind::Bdd | BackendKind::Auto => {
                assert!(
                    stats.bdd_collections >= 1,
                    "{backend}: manager GC fires: {stats:?}"
                );
                assert!(stats.bdd_nodes_collected > 0, "{backend}: {stats:?}");
                assert!(
                    bdd_shrank,
                    "{backend}: resident BDD nodes must not grow monotonically \
                     (peak {peak_bdd}, final {last_bdd}): {stats:?}"
                );
                assert!(
                    stats.bdd_translation_hits > 0,
                    "{backend}: warm diagrams reused: {stats:?}"
                );
            }
            BackendKind::Anf => {
                assert!(
                    stats.anf_hits > 0,
                    "anf: memoised polynomials reused: {stats:?}"
                );
                assert!(
                    stats.anf_cached_polys <= 64,
                    "anf: polynomial cache bounded: {stats:?}"
                );
            }
            BackendKind::Sat => unreachable!(),
        }
    }
}

/// Cancellation-soundness soak: 100 random edit cycles where every
/// bounded sweep gets an interruption injected a different way — a
/// pre-cancelled token, an already-expired deadline, a tiny per-solve
/// conflict budget, or the `spurious_cancel` failpoint firing mid-sweep.
/// The contract under test: a bounded sweep never returns a *wrong*
/// verdict (completed verdicts equal the fresh-pipeline oracle, the rest
/// come back [`Verdict::Unknown`]), and the same session then re-runs
/// unlimited to the exact oracle verdicts — an interrupt never poisons
/// warm state.
#[test]
fn cancellation_soak_interrupted_sweeps_never_lie() {
    use qb_testutil::failpoints::{self, Action};
    use qborrow::core::Verdict;

    const N: usize = 4;
    const CYCLES: usize = 100;

    let mut rng = Rng::new(0x50A1_0003);
    let opts = VerifyOptions::default();
    let initial = vec![InitialValue::Free; N];
    let targets: Vec<usize> = (0..N).collect();
    let base = {
        let mut c = Circuit::new(N);
        c.toffoli(0, 1, 2).cnot(2, 3);
        c
    };
    let mut session = VerifySession::new(&base, &initial, &opts).expect("session builds");

    let mut total_unknowns = 0usize;
    for cycle in 0..CYCLES {
        let mut edited = Circuit::new(N);
        edited.toffoli(0, 1, 2).cnot(2, 3);
        for _ in 0..rng.gen_below(5) {
            match rng.gen_below(3) {
                0 => {
                    edited.x(rng.gen_below(N));
                }
                1 => {
                    let (c, t) = rng.gen_distinct2(N);
                    edited.cnot(c, t);
                }
                _ => {
                    let (c1, c2, t) = rng.gen_distinct3(N);
                    edited.toffoli(c1, c2, t);
                }
            }
        }
        session.apply_edit(&edited).expect("edit applies");
        let oracle = verify_circuit_fresh(&edited, &initial, &targets, &opts)
            .expect("fresh sweep")
            .verdicts;

        let limits = match rng.gen_below(4) {
            0 => {
                // Cancelled before the sweep even starts (a client gone
                // away): every target must come back Unknown.
                let token = CancelToken::default();
                token.cancel();
                VerifyLimits {
                    token: Some(token),
                    ..VerifyLimits::default()
                }
            }
            1 => VerifyLimits {
                deadline: Some(Duration::ZERO),
                ..VerifyLimits::default()
            },
            2 => VerifyLimits {
                conflict_budget: Some(rng.gen_below(3) as u64),
                ..VerifyLimits::default()
            },
            _ => {
                // Mid-sweep cancellation: the failpoint cancels the
                // installed token when the second target is checked.
                failpoints::arm("spurious_cancel", Action::Cancel, Some(1));
                VerifyLimits {
                    deadline: Some(Duration::from_secs(600)),
                    ..VerifyLimits::default()
                }
            }
        };
        let bounded = session
            .verify_targets_limited(&targets, &limits)
            .expect("bounded sweep returns, never errors on exhaustion");
        failpoints::clear("spurious_cancel");
        assert_eq!(bounded.len(), targets.len(), "cycle {cycle}");
        for (b, o) in bounded.iter().zip(&oracle) {
            assert_eq!(b.qubit, o.qubit, "cycle {cycle}");
            if b.verdict.is_unknown() {
                total_unknowns += 1;
                assert!(!b.safe, "cycle {cycle}: Unknown is never reported safe");
                assert!(
                    matches!(&b.verdict, Verdict::Unknown { reason }
                        if ["deadline", "budget", "cancelled"].contains(&reason.as_str())),
                    "cycle {cycle}: structured reason, got {:?}",
                    b.verdict
                );
            } else {
                assert_eq!(
                    b.safe, o.safe,
                    "cycle {cycle}, qubit {}: a completed verdict under limits \
                     must equal the oracle",
                    b.qubit
                );
            }
        }

        // The interrupted session re-runs unlimited to the oracle.
        let rerun = session.verify_targets(&targets).expect("unlimited re-run");
        for (r, o) in rerun.iter().zip(&oracle) {
            assert!(!r.verdict.is_unknown(), "cycle {cycle}: unlimited decides");
            assert_eq!(
                r.safe, o.safe,
                "cycle {cycle}, qubit {}: re-run matches oracle",
                r.qubit
            );
            assert_eq!(
                r.counterexample.as_ref().map(|ce| ce.violation),
                o.counterexample.as_ref().map(|ce| ce.violation),
                "cycle {cycle}, qubit {}",
                r.qubit
            );
        }
    }

    assert!(
        total_unknowns > 0,
        "the injection modes must actually interrupt some sweeps"
    );
    let stats = session.stats();
    assert!(
        stats.interrupts > 0,
        "interrupt accounting survives the soak: {stats:?}"
    );
}

// ---- daemon-socket soak --------------------------------------------------

static SOCKET_COUNTER: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

fn start_daemon(limits: ServerLimits) -> (PathBuf, Client, std::thread::JoinHandle<()>) {
    let socket = std::env::temp_dir().join(format!(
        "qborrow-soak-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
    ));
    let opts = ServeOptions {
        log: false,
        limits,
        ..ServeOptions::new(socket.clone())
    };
    let handle = std::thread::spawn(move || run(&opts).expect("daemon runs"));
    for _ in 0..200 {
        if let Ok(client) = Client::connect(&socket) {
            return (socket, client, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

/// Fresh-pipeline oracle for a source: `(qubit, safe)` per borrow qubit.
fn fresh_verdicts(source: &str) -> Vec<(usize, bool)> {
    let program = elaborate(&parse(source).expect("parses")).expect("elaborates");
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    let report = verify_circuit_fresh(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    )
    .expect("fresh verification completes");
    report.verdicts.iter().map(|v| (v.qubit, v.safe)).collect()
}

/// 200 edit cycles against the daemon over a real Unix socket, rotating
/// through distinct variants of the 8-bit Håner adder. The per-program
/// arena must stay bounded by the GC watermark (the daemon reports
/// resident sizes per session) and every daemon verdict must equal the
/// memoised fresh-pipeline oracle.
#[test]
fn daemon_soak_arena_bounded_and_verdicts_exact_over_200_cycles() {
    const CYCLES: usize = 200;
    // The daemon runs its sessions with a 512-node GC floor: the arena
    // may reach twice the live graph before a sweep reclaims it, but it
    // must never grow monotonically past that pacing bound.
    const GC_FLOOR: usize = 512;
    const ARENA_BOUND: i64 = 2_500;
    const CACHE_CAP: usize = 512;

    let base = adder_source(8);
    // Appended-gate pool over the adder's registers (q[1..n], a[1..n-1]).
    let pool = [
        "X[q[1]];",
        "X[q[2]];",
        "X[a[1]];",
        "CNOT[q[1], q[2]];",
        "CNOT[a[1], q[3]];",
        "CNOT[q[2], a[2]];",
    ];
    // 12 distinct suffix variants (pairs from the pool) + the base.
    let mut variants: Vec<String> = vec![base.clone()];
    for i in 0..12 {
        let g1 = pool[i % pool.len()];
        let g2 = pool[(i * 5 + 2) % pool.len()];
        variants.push(format!("{base}{g1}\n{g2}\n"));
    }

    let (_socket, mut client, handle) = start_daemon(ServerLimits {
        arena_gc_floor: Some(GC_FLOOR),
        decision_cache_cap: Some(CACHE_CAP),
        ..ServerLimits::default()
    });
    let load = client.load("soak", &base).expect("load round-trips");
    assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true), "{load}");

    let mut oracle: HashMap<usize, Vec<(usize, bool)>> = HashMap::new();
    let mut peak_arena: i64 = 0;
    for cycle in 0..CYCLES {
        let v = cycle % variants.len();
        let edit = client.edit("soak", &variants[v]).expect("edit round-trips");
        assert_eq!(
            edit.get("ok").and_then(Json::as_bool),
            Some(true),
            "cycle {cycle}: {edit}"
        );
        let verify = client.verify("soak", None).expect("verify round-trips");
        assert_eq!(
            verify.get("ok").and_then(Json::as_bool),
            Some(true),
            "cycle {cycle}: {verify}"
        );
        let expected = oracle
            .entry(v)
            .or_insert_with(|| fresh_verdicts(&variants[v]));
        let verdicts = verify.get("verdicts").and_then(Json::as_arr).unwrap();
        assert_eq!(verdicts.len(), expected.len(), "cycle {cycle}");
        for (got, (qubit, safe)) in verdicts.iter().zip(expected.iter()) {
            assert_eq!(got.get("qubit").and_then(Json::as_usize), Some(*qubit));
            assert_eq!(
                got.get("safe").and_then(Json::as_bool),
                Some(*safe),
                "cycle {cycle}, qubit {qubit}"
            );
        }

        let arena = edit
            .get("arena_nodes")
            .and_then(Json::as_i64)
            .expect("edit responses report resident arena size");
        peak_arena = peak_arena.max(arena);
        assert!(
            arena < ARENA_BOUND,
            "cycle {cycle}: arena bounded under the daemon, got {arena}"
        );
    }

    // The daemon's status must show the reclamation machinery at work
    // and a decision cache within its bound.
    let status = client.status().expect("status round-trips");
    let programs = status.get("programs").and_then(Json::as_arr).unwrap();
    assert_eq!(programs.len(), 1);
    let p = &programs[0];
    assert!(
        p.get("arena_collections").and_then(Json::as_i64) >= Some(1),
        "GC fired at least once under the daemon: {p}"
    );
    assert!(p.get("arena_nodes_collected").and_then(Json::as_i64) > Some(0));
    assert!(
        p.get("cached_decisions").and_then(Json::as_i64) <= Some(CACHE_CAP as i64),
        "decision cache within its configured bound: {p}"
    );
    assert!(
        p.get("decision_hits").and_then(Json::as_i64) > Some(0),
        "revisited variants answer from the warm cache: {p}"
    );
    assert!(status.get("resident_arena_nodes").and_then(Json::as_i64) < Some(ARENA_BOUND));

    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("daemon thread exits cleanly");
}
