//! Concurrent-serving tests: N client threads driving mixed workloads
//! over both transports (newline-JSON Unix socket, length-prefixed TCP)
//! against the fresh-pipeline oracle; a latency assertion that a slow,
//! deadline-unbounded sweep on one session does not block warm edits on
//! another; graceful shutdown answering every in-flight request with a
//! complete (untorn) response; and the per-session routing fields
//! (`queue_depth`, `mailbox_wait_p95_us`, `worker_alive`) in `status`.

use qborrow::core::{verify_circuit_fresh, InitialValue, VerifyOptions};
use qborrow::lang::{adder_source, elaborate, parse, QubitKind};
use qborrow::serve::{run, Client, Json, Request, ServeOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// Starts an in-process daemon on a fresh Unix socket, optionally also
/// listening on a fresh local TCP port. Returns the socket path, the
/// TCP address (when requested) and the daemon thread's handle.
fn start_daemon(
    tag: &str,
    with_tcp: bool,
) -> (PathBuf, Option<String>, std::thread::JoinHandle<()>) {
    let socket = std::env::temp_dir().join(format!(
        "qborrow-conc-{tag}-{}-{}.sock",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let tcp = with_tcp.then(|| {
        // Reserve a free port, then hand the address to the daemon. The
        // tiny window between drop and rebind is harmless in tests.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        probe.local_addr().expect("probe addr").to_string()
    });
    let opts = ServeOptions {
        log: false,
        tcp: tcp.clone(),
        ..ServeOptions::new(socket.clone())
    };
    let handle = std::thread::spawn(move || run(&opts).expect("daemon runs"));
    for _ in 0..600 {
        if let Ok(client) = Client::connect(&socket) {
            drop(client);
            return (socket, tcp, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn shutdown(mut client: Client, handle: std::thread::JoinHandle<()>) {
    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("daemon thread exits cleanly");
}

/// Fresh-pipeline oracle: `(qubit, safe)` per borrow qubit of `source`.
fn fresh_verdicts(source: &str) -> Vec<(usize, bool)> {
    let program = elaborate(&parse(source).expect("parses")).expect("elaborates");
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    let report = verify_circuit_fresh(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    )
    .expect("fresh verification completes");
    report.verdicts.iter().map(|v| (v.qubit, v.safe)).collect()
}

/// Asserts a daemon verify response equals the fresh oracle's verdicts.
fn assert_matches_oracle(response: &Json, expected: &[(usize, bool)], tag: &str) {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{tag}: {response}"
    );
    let verdicts = response
        .get("verdicts")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{tag}: no verdicts in {response}"));
    assert_eq!(verdicts.len(), expected.len(), "{tag}: verdict count");
    for (v, (qubit, safe)) in verdicts.iter().zip(expected) {
        assert_eq!(
            v.get("qubit").and_then(Json::as_i64),
            Some(*qubit as i64),
            "{tag}"
        );
        assert_eq!(
            v.get("safe").and_then(Json::as_bool),
            Some(*safe),
            "{tag}: qubit {qubit}"
        );
    }
}

/// The soak: six worker threads, half on the Unix socket and half on
/// TCP, each running load → verify → edit → verify → status rounds on
/// its own program, with every verify checked against the fresh oracle.
/// Distinct programs never share a session, so the workers exercise
/// cross-session parallelism; re-running rounds exercises the warm
/// re-alias and identical-edit paths under contention.
#[test]
fn concurrent_mixed_soak_matches_fresh_oracle_on_both_transports() {
    let (socket, tcp, handle) = start_daemon("soak", true);
    let tcp = tcp.expect("tcp listener requested");

    struct Worker {
        name: String,
        source: String,
        expected: Vec<(usize, bool)>,
    }
    let workers: Vec<Worker> = (0..6)
        .map(|i| {
            let source = adder_source(4 + i);
            let expected = fresh_verdicts(&source);
            Worker {
                name: format!("adder{}", 4 + i),
                source,
                expected,
            }
        })
        .collect();

    let threads: Vec<_> = workers
        .into_iter()
        .enumerate()
        .map(
            |(
                i,
                Worker {
                    name,
                    source,
                    expected,
                },
            )| {
                let socket = socket.clone();
                let tcp = tcp.clone();
                std::thread::spawn(move || {
                    let mut client = if i % 2 == 0 {
                        Client::connect_with_retry(&socket, 8, Duration::from_millis(25))
                            .expect("unix connect")
                    } else {
                        Client::connect_tcp_with_retry(&tcp, 8, Duration::from_millis(25))
                            .expect("tcp connect")
                    };
                    for round in 0..5 {
                        let tag = format!("{name} round {round}");
                        let resp = client.load(&name, &source).expect("load");
                        assert_eq!(
                            resp.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "{tag}: {resp}"
                        );
                        let resp = client.verify(&name, None).expect("verify");
                        assert_matches_oracle(&resp, &expected, &tag);
                        let resp = client.edit(&name, &source).expect("edit");
                        assert_eq!(
                            resp.get("strategy").and_then(Json::as_str),
                            Some("identical"),
                            "{tag}: {resp}"
                        );
                        let resp = client.verify(&name, None).expect("re-verify");
                        assert_matches_oracle(&resp, &expected, &tag);
                        let status = client.status().expect("status");
                        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
                    }
                })
            },
        )
        .collect();
    for t in threads {
        t.join().expect("soak worker");
    }

    // Every worker's program is resident (six distinct hashes).
    let mut client = Client::connect(&socket).expect("post-soak connect");
    let status = client.status().expect("status");
    assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(6));
    shutdown(client, handle);
}

/// A deliberately slow, deadline-unbounded sweep pinned to one session
/// must not serialize another session's warm edits: the fast client's
/// edit+verify latency stays in the same order of magnitude as its
/// single-client baseline, and its mailbox-wait p95 stays far below the
/// seconds-long sweep it would queue behind on a single-threaded daemon.
#[test]
fn slow_sweep_does_not_block_fast_edits_on_another_session() {
    let (socket, _tcp, handle) = start_daemon("latency", false);

    // The slow session: keep its actor continuously busy with unbounded
    // verifies until told to stop, guaranteeing overlap with the fast
    // client regardless of single-sweep duration.
    let slow_source = adder_source(20);
    let mut slow_client = Client::connect(&socket).expect("slow connect");
    slow_client.load("slow", &slow_source).expect("slow load");
    let stop = Arc::new(AtomicBool::new(false));
    let slow_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sweeps = 0u32;
            while !stop.load(Ordering::SeqCst) {
                let resp = slow_client.verify("slow", None).expect("slow verify");
                assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
                sweeps += 1;
            }
            sweeps
        })
    };

    let fast_source = adder_source(4);
    let mut fast = Client::connect(&socket).expect("fast connect");
    fast.load("fast", &fast_source).expect("fast load");
    let cycle = |client: &mut Client| -> Duration {
        let t0 = Instant::now();
        let resp = client.edit("fast", &fast_source).expect("fast edit");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let resp = client.verify("fast", None).expect("fast verify");
        assert_eq!(resp.get("all_safe").and_then(Json::as_bool), Some(true));
        t0.elapsed()
    };
    // Warm-up + single-client baseline (the slow loop just started, but
    // a couple of cycles absorb cold-cache noise either way).
    let baseline = (0..5).map(|_| cycle(&mut fast)).min().unwrap();

    let during: Vec<Duration> = (0..20).map(|_| cycle(&mut fast)).collect();
    let worst = during.iter().max().copied().unwrap();

    // "Same order of magnitude": generous ×100 over the warm baseline
    // (plus a floor for timer noise), and an absolute ceiling far below
    // the multi-second serialization a single-threaded daemon shows.
    let bound = (baseline * 100).max(Duration::from_millis(250));
    assert!(
        worst < bound && worst < Duration::from_secs(2),
        "fast path stalled behind slow sweep: worst {worst:?}, baseline {baseline:?}"
    );

    // The queue-wait surface agrees: the fast session's mailbox p95 is
    // far below the sweep length.
    let status = fast.status().expect("status");
    let programs = status.get("programs").and_then(Json::as_arr).unwrap();
    let fast_entry = programs
        .iter()
        .find(|p| p.get("name").and_then(Json::as_str) == Some("fast"))
        .expect("fast session listed");
    let p95_us = fast_entry
        .get("mailbox_wait_p95_us")
        .and_then(Json::as_i64)
        .expect("mailbox_wait_p95_us");
    assert!(
        p95_us < 500_000,
        "fast session queued {p95_us}us behind the slow sweep"
    );

    stop.store(true, Ordering::SeqCst);
    let sweeps = slow_thread.join().expect("slow worker");
    assert!(sweeps > 0, "slow sweep never ran");
    shutdown(fast, handle);
}

/// Graceful shutdown: requests pipelined before (or racing) a shutdown
/// all get complete, parseable responses — a full verdict set or a
/// coded `shutting_down`/`not_loaded` refusal — never a torn line.
#[test]
fn graceful_shutdown_answers_every_in_flight_request_untorn() {
    use std::io::{BufRead, BufReader, Write};
    let (socket, _tcp, handle) = start_daemon("drain", false);

    let mut setup = Client::connect(&socket).expect("setup connect");
    let source = adder_source(8);
    setup.load("adder", &source).expect("load");
    let expected = fresh_verdicts(&source);

    // Pipeline a burst of verifies raw, without reading any responses.
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    const BURST: usize = 8;
    let mut batch = String::new();
    for _ in 0..BURST {
        batch.push_str(
            &Request::Verify {
                name: "adder".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        batch.push('\n');
    }
    writer.write_all(batch.as_bytes()).expect("burst write");
    writer.flush().expect("burst flush");

    // Race a shutdown from another connection against the burst.
    let resp = setup.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    // Every burst request gets exactly one complete response line.
    for i in 0..BURST {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response read");
        assert!(n > 0, "connection closed after {i} of {BURST} responses");
        assert!(
            line.ends_with('\n'),
            "torn response line for request {i}: {line:?}"
        );
        let resp = Json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("unparseable response {i}: {e}: {line:?}"));
        assert!(
            resp.get("request_id").and_then(Json::as_i64).is_some(),
            "response {i} lost its request id: {resp}"
        );
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            assert_matches_oracle(&resp, &expected, &format!("drained verify {i}"));
        } else {
            let code = resp.get("code").and_then(Json::as_str);
            assert!(
                code == Some("shutting_down") || code == Some("not_loaded"),
                "unexpected refusal for request {i}: {resp}"
            );
        }
    }
    handle.join().expect("daemon thread exits cleanly");
}

/// `status` exposes the per-session routing surface operators need to
/// spot imbalance: queue depth, mailbox-wait percentiles and worker
/// liveness per program, plus the daemon-wide accept-error counter.
#[test]
fn status_surfaces_per_session_routing_fields() {
    let (_socket, tcp, handle) = start_daemon("statusfields", true);
    let mut client =
        Client::connect_tcp_with_retry(&tcp.expect("tcp addr"), 8, Duration::from_millis(25))
            .expect("tcp connect");
    client.load("adder", &adder_source(6)).expect("load");
    client.verify("adder", None).expect("verify");

    let status = client.status().expect("status");
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(status.get("accept_errors").and_then(Json::as_i64), Some(0));
    let programs = status.get("programs").and_then(Json::as_arr).unwrap();
    assert_eq!(programs.len(), 1);
    let p = &programs[0];
    assert_eq!(p.get("worker_alive").and_then(Json::as_bool), Some(true));
    // The status round-trip itself proves the mailbox is drained.
    assert_eq!(p.get("queue_depth").and_then(Json::as_i64), Some(0));
    for field in ["mailbox_wait_p50_us", "mailbox_wait_p95_us"] {
        assert!(
            p.get(field).and_then(Json::as_i64).is_some(),
            "missing {field} in {p}"
        );
    }
    shutdown(client, handle);
}
