//! Frontend robustness: grammar coverage, error reporting, and a fuzz of
//! the full parse → elaborate → verify pipeline over generated programs.

use qb_testutil::Rng;
use qborrow::core::{verify_program, VerifyOptions};
use qborrow::lang::{elaborate, parse, Phase, QubitKind};

#[test]
fn grammar_coverage_golden() {
    // Every statement form of the paper's grammar plus the documented
    // extensions, in one program.
    let source = "
        let n = 2 + 3 * (4 - 2);      // = 8
        borrow@ q[n];
        borrow a[n - 1];
        alloc c;
        borrow t;
        X[q[1]];
        CNOT[q[1], q[2]];
        CCNOT[q[1], q[2], a[1]];
        MCX[q[1], q[2], q[3], t];
        H[c];
        Z[c];
        SWAP[q[7], q[8]];
        for i = 1 to 3 {
            X[a[i]];
            for j = i to 1 {
                CNOT[a[j], a[j + 1]];
            }
        }
        release t;
        release a;
    ";
    let program = elaborate(&parse(source).unwrap()).unwrap();
    assert_eq!(program.num_qubits(), 8 + 7 + 1 + 1);
    assert_eq!(program.registers.len(), 4);
    assert_eq!(program.registers[2].kind, QubitKind::Clean);
    assert!(!program.circuit.is_classical()); // H[c] is in there
}

#[test]
fn error_messages_carry_positions_and_phases() {
    let cases: Vec<(&str, Phase, &str)> = vec![
        ("let x = $;", Phase::Lex, "unexpected character"),
        ("let x = ;", Phase::Parse, "expected a number"),
        ("X[q[1];", Phase::Parse, "expected"),
        (
            "borrow a; X[b];",
            Phase::Elaborate,
            "undeclared register 'b'",
        ),
        ("borrow a[3]; X[a[9]];", Phase::Elaborate, "out of bounds"),
        (
            "borrow a; release a; X[a];",
            Phase::Elaborate,
            "after release",
        ),
        (
            "let n = 9223372036854775807; let m = n * 2;",
            Phase::Elaborate,
            "overflow",
        ),
    ];
    for (source, phase, needle) in cases {
        let err = parse(source)
            .and_then(|ast| elaborate(&ast))
            .expect_err(source);
        assert_eq!(err.phase, phase, "{source}");
        assert!(
            err.message.contains(needle),
            "{source}: got {:?}",
            err.message
        );
    }
}

#[test]
fn comments_and_whitespace_are_insignificant() {
    let spaced = "borrow a ; /* block */ X [ a ] ; // trailing\n";
    let tight = "borrow a;X[a];";
    assert_eq!(
        elaborate(&parse(spaced).unwrap()).unwrap().circuit,
        elaborate(&parse(tight).unwrap()).unwrap().circuit
    );
}

/// Generates a random well-formed QBorrow program: a couple of register
/// declarations followed by gates/loops referencing them in range.
fn rand_program(rng: &mut Rng) -> String {
    let qs = rng.gen_range(2, 5);
    let amps = rng.gen_range(2, 5);
    let dirty = rng.gen_bool();
    let decl = if dirty { "borrow" } else { "alloc" };
    let mut src = format!("borrow@ q[{qs}];\n{decl} a[{amps}];\n");
    let ops = rng.gen_range(1, 12);
    for i in 0..ops {
        let qi = i % qs + 1;
        let ai = i % amps + 1;
        match rng.gen_below(6) {
            0 => src.push_str(&format!("X[q[{qi}]];\n")),
            1 => src.push_str(&format!("X[a[{ai}]];\n")),
            2 => src.push_str(&format!("CNOT[q[{qi}], a[{ai}]];\n")),
            3 => src.push_str(&format!("CNOT[a[{ai}], q[{qi}]];\n")),
            4 => src.push_str(&format!("for i = 1 to {amps} {{ X[a[i]]; X[a[i]]; }}\n")),
            _ => src.push_str(&format!("CCNOT[q[{}], q[{}], a[{ai}]];\n", qi, qi % qs + 1)),
        }
    }
    src
}

/// Every generated program survives the whole pipeline, and the
/// verifier's verdict matches the exact bit-level checker.
#[test]
fn pipeline_fuzz() {
    let mut rng = Rng::new(0xF8_01);
    for _ in 0..48 {
        let source = rand_program(&mut rng);
        let program = elaborate(&parse(&source).unwrap()).unwrap();
        if program.num_qubits() > 10 {
            continue;
        }
        let report = verify_program(&program, &VerifyOptions::default()).unwrap();
        for v in &report.verdicts {
            let exact = qborrow::core::exact::classical_circuit_safely_uncomputes(
                &program.circuit,
                v.qubit,
            )
            .unwrap();
            // With alloc (clean) qubits the symbolic check may accept
            // MORE circuits than the all-free exact check (known-zero
            // inputs); only compare verdicts when the targets are dirty.
            if program.qubit_kinds[v.qubit] == QubitKind::BorrowedDirty
                && program.clean_qubits().is_empty()
            {
                assert_eq!(v.safe, exact, "{source}");
            }
            // Safety in the exact all-free sense always implies the
            // verifier accepts.
            if exact {
                assert!(v.safe, "{source}");
            }
        }
    }
}

/// Re-parsing the rendered circuit info never panics (smoke).
#[test]
fn elaboration_is_deterministic() {
    let mut rng = Rng::new(0xF8_02);
    for _ in 0..48 {
        let source = rand_program(&mut rng);
        let a = elaborate(&parse(&source).unwrap()).unwrap();
        let b = elaborate(&parse(&source).unwrap()).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.qubit_names, b.qubit_names);
    }
}
