//! End-to-end integration tests: parse the shipped `.qbr` fixtures,
//! elaborate, verify with every backend, and cross-check against the
//! direct circuit generators.

use qborrow::core::{verify_program, BackendKind, BackendOptions, VerifyOptions, Violation};
use qborrow::formula::Simplify;
use qborrow::lang::{adder_source, elaborate, mcx_source, parse};

fn fixture(name: &str) -> String {
    let path = format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn adder_fixture_matches_generator() {
    let from_file = elaborate(&parse(&fixture("adder.qbr")).unwrap()).unwrap();
    let generated = elaborate(&parse(&adder_source(50)).unwrap()).unwrap();
    assert_eq!(from_file.circuit, generated.circuit);
    assert_eq!(from_file.num_qubits(), 99);
    assert_eq!(from_file.qubits_to_verify().len(), 49);
}

#[test]
fn mcx_fixture_matches_generator() {
    let from_file = elaborate(&parse(&fixture("mcx.qbr")).unwrap()).unwrap();
    let generated = elaborate(&parse(&mcx_source(1750)).unwrap()).unwrap();
    assert_eq!(from_file.circuit, generated.circuit);
    // n = 2m − 1 controls + t + anc.
    assert_eq!(from_file.num_qubits(), 2 * 1750 - 1 + 2);
    assert_eq!(from_file.circuit.size(), 16 * (1750 - 2));
    assert_eq!(from_file.qubits_to_verify().len(), 1);
}

#[test]
fn cccnot_fixture_verifies_safe_on_all_backends() {
    let program = elaborate(&parse(&fixture("cccnot.qbr")).unwrap()).unwrap();
    for backend in [
        BackendKind::Sat,
        BackendKind::Anf,
        BackendKind::Bdd,
        BackendKind::Auto,
    ] {
        for simplify in [Simplify::Raw, Simplify::Full] {
            let opts = VerifyOptions {
                backend,
                simplify,
                backend_options: BackendOptions::default(),
            };
            let report = verify_program(&program, &opts).unwrap();
            assert!(report.all_safe(), "{backend} {simplify:?}");
        }
    }
}

#[test]
fn unsafe_fixture_is_rejected_with_witness() {
    let program = elaborate(&parse(&fixture("unsafe_copy.qbr")).unwrap()).unwrap();
    let report = verify_program(&program, &VerifyOptions::default()).unwrap();
    assert!(!report.all_safe());
    let verdict = &report.verdicts[0];
    let ce = verdict.counterexample.as_ref().unwrap();
    assert_eq!(ce.violation, Violation::PlusNotRestored);
}

#[test]
fn small_adder_verifies_on_every_backend_mode() {
    let program = elaborate(&parse(&adder_source(10)).unwrap()).unwrap();
    for backend in [BackendKind::Sat, BackendKind::Bdd, BackendKind::Auto] {
        for simplify in [Simplify::Raw, Simplify::Full] {
            let opts = VerifyOptions {
                backend,
                simplify,
                backend_options: BackendOptions::default(),
            };
            let report = verify_program(&program, &opts).unwrap();
            assert!(report.all_safe(), "{backend} {simplify:?}");
            assert_eq!(report.verdicts.len(), 9);
        }
    }
}

#[test]
fn small_mcx_verifies_on_every_backend_mode() {
    let program = elaborate(&parse(&mcx_source(8)).unwrap()).unwrap();
    for backend in [
        BackendKind::Sat,
        BackendKind::Anf,
        BackendKind::Bdd,
        BackendKind::Auto,
    ] {
        for simplify in [Simplify::Raw, Simplify::Full] {
            let opts = VerifyOptions {
                backend,
                simplify,
                backend_options: BackendOptions::default(),
            };
            let report = verify_program(&program, &opts).unwrap();
            assert!(report.all_safe(), "{backend} {simplify:?}");
        }
    }
}

#[test]
fn sabotaged_benchmarks_are_caught_by_every_backend() {
    // Injecting a fault into the adder's uncompute section must flip the
    // verdict, whatever the backend.
    let program = elaborate(&parse(&adder_source(8)).unwrap()).unwrap();
    let gates = program.circuit.gates();
    let mut broken = qborrow::circuit::Circuit::new(program.num_qubits());
    for (i, g) in gates.iter().enumerate() {
        // Drop one Toffoli from the middle of the uncompute phase.
        if i == gates.len() - 5 {
            continue;
        }
        broken.push(g.clone());
    }
    let initial: Vec<qborrow::core::InitialValue> =
        vec![qborrow::core::InitialValue::Free; program.num_qubits()];
    let targets = program.qubits_to_verify();
    for backend in [BackendKind::Sat, BackendKind::Bdd, BackendKind::Auto] {
        let opts = VerifyOptions {
            backend,
            simplify: Simplify::Raw,
            backend_options: BackendOptions::default(),
        };
        let report = qborrow::core::verify_circuit(&broken, &initial, &targets, &opts).unwrap();
        assert!(!report.all_safe(), "{backend} missed the fault");
    }
}

#[test]
fn verification_pipeline_is_deterministic() {
    let program = elaborate(&parse(&adder_source(12)).unwrap()).unwrap();
    let opts = VerifyOptions::default();
    let a = verify_program(&program, &opts).unwrap();
    let b = verify_program(&program, &opts).unwrap();
    let verdicts_a: Vec<bool> = a.verdicts.iter().map(|v| v.safe).collect();
    let verdicts_b: Vec<bool> = b.verdicts.iter().map(|v| v.safe).collect();
    assert_eq!(verdicts_a, verdicts_b);
    assert_eq!(a.formula_nodes, b.formula_nodes);
}

#[test]
fn scheduler_composes_with_verifier_end_to_end() {
    // Verify → reduce → re-verify: the reduced circuit of the Fig. 3.1
    // example still passes the remaining checks.
    use qborrow::sched::reduce_width;
    let circuit = qborrow::synth::fig_3_1a();
    let (reduced, plan) = reduce_width(&circuit, &[5, 6], &VerifyOptions::default()).unwrap();
    assert_eq!(plan.saved(), 1);
    assert!(reduced.is_classical());
    // The reduced circuit is still a permutation (sanity via simulation).
    let perm = qborrow::circuit::permutation_of(&reduced).unwrap();
    let mut sorted = perm.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..perm.len()).collect::<Vec<_>>());
}
