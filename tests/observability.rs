//! End-to-end checks for the observability surface: a traced adder-16
//! sweep must yield a properly nested, balanced Chrome trace; a metrics
//! scrape over a real daemon socket must parse as Prometheus text with
//! coherent histogram series; and a traced verify over the socket must
//! return a valid trace while leaving tracing off afterwards.
//!
//! The span ring and the enable flag are process-global, so every test
//! that toggles tracing serialises on [`OBS_LOCK`].

use qborrow::lang::adder_source;
use qborrow::obs;
use qborrow::serve::{run, Client, Json, ServeOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());
static SOCKET_COUNTER: AtomicU32 = AtomicU32::new(0);

fn start_daemon() -> (PathBuf, Client, std::thread::JoinHandle<()>) {
    start_daemon_with(|_| {})
}

fn start_daemon_with(
    configure: impl FnOnce(&mut ServeOptions),
) -> (PathBuf, Client, std::thread::JoinHandle<()>) {
    let socket = std::env::temp_dir().join(format!(
        "qborrow-obs-test-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let mut opts = ServeOptions {
        log: false,
        ..ServeOptions::new(socket.clone())
    };
    configure(&mut opts);
    let handle = std::thread::spawn(move || run(&opts).expect("daemon runs"));
    for _ in 0..200 {
        if let Ok(client) = Client::connect(&socket) {
            return (socket, client, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

/// A unique throwaway directory for exemplar traces.
fn temp_trace_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qborrow-obs-traces-{}-{}",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("trace dir");
    dir
}

/// The exemplar files currently present, sorted by name (which sorts by
/// request id because the names zero-pad it).
fn exemplar_files(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("trace dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("req-") && n.ends_with(".trace.json"))
        .collect();
    names.sort();
    names
}

fn shutdown(mut client: Client, handle: std::thread::JoinHandle<()>) {
    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("daemon thread exits cleanly");
}

/// Replays a Chrome trace's `B`/`E` events per thread and asserts they
/// form a balanced, name-matched bracket sequence. Returns events seen.
fn assert_trace_balanced(trace: &Json) -> usize {
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    for ev in events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_string();
        let tid = ev.get("tid").and_then(Json::as_i64).expect("tid");
        let stack = stacks.entry(tid).or_default();
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => stack.push(name),
            Some("E") => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E event for {name:?} on tid {tid} with empty stack")
                });
                assert_eq!(open, name, "mismatched E on tid {tid}");
            }
            ph => panic!("unexpected phase {ph:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    events.len()
}

/// Tentpole acceptance: tracing an adder-16 SAT sweep end-to-end yields
/// spans whose intervals nest properly per thread and whose Chrome
/// export replays as balanced brackets with the full hierarchy present.
#[test]
fn traced_adder16_sweep_produces_nested_balanced_trace() {
    use qborrow::core::{verify_circuit, InitialValue, VerifyOptions};
    use qborrow::lang::{elaborate, parse, QubitKind};

    let _guard = OBS_LOCK.lock().unwrap();
    obs::set_enabled(false);
    let _ = obs::take_all_spans();

    let program = elaborate(&parse(&adder_source(16)).unwrap()).unwrap();
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    obs::set_enabled(true);
    let report = verify_circuit(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    );
    obs::set_enabled(false);
    let spans = obs::take_spans();
    assert!(report.expect("sweep completes").all_safe());

    // The hierarchy's levels all show up.
    for expected in ["sweep", "target", "root", "encode", "backend"] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "no {expected:?} span in {:?}",
            spans
                .iter()
                .map(|s| s.name)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
    // Spans on one thread nest: any two either disjoint or contained.
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
            let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
            let disjoint = a1 <= b0 || b1 <= a0;
            let contained = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
            assert!(
                disjoint || contained,
                "spans overlap without nesting: {a:?} vs {b:?}"
            );
        }
    }
    // The Chrome export parses and replays balanced.
    let trace = Json::parse(obs::chrome_trace(&spans).trim()).expect("trace is valid JSON");
    assert_eq!(assert_trace_balanced(&trace), 2 * spans.len());
}

/// A metrics scrape over a live daemon socket parses as Prometheus text:
/// every sample line is `name{labels} value`, request counters cover the
/// traffic we just generated, and each histogram's cumulative buckets
/// are monotone and agree with its `_count` series.
#[test]
fn daemon_metrics_scrape_parses_as_prometheus_text() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::reset_metrics();
    let (_socket, mut client, handle) = start_daemon();

    client.load("adder", &adder_source(8)).unwrap();
    client.verify("adder", None).unwrap();
    client.verify("adder", None).unwrap();
    let resp = client.metrics().unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let text = resp
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics text")
        .to_string();
    shutdown(client, handle);

    let mut samples: Vec<(String, String, f64)> = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value in {line:?}"));
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}').expect("closed label set")),
            None => (series, ""),
        };
        assert!(
            name.starts_with("qb_") && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in {line:?}"
        );
        samples.push((name.to_string(), labels.to_string(), value));
    }

    let count = |name: &str, label_frag: &str| {
        samples
            .iter()
            .filter(|(n, l, _)| n == name && l.contains(label_frag))
            .count()
    };
    // The traffic we generated is visible: 1 load + 2 verifies + metrics.
    let counter = |name: &str, label_frag: &str| {
        samples
            .iter()
            .find(|(n, l, _)| n == name && l.contains(label_frag))
            .map(|(_, _, v)| *v)
    };
    assert_eq!(counter("qb_requests_total", "kind=\"load\""), Some(1.0));
    assert_eq!(counter("qb_requests_total", "kind=\"verify\""), Some(2.0));
    assert!(counter("qb_solver_propagations_total", "").unwrap_or(0.0) > 0.0);
    assert!(count("qb_request_handle_seconds_bucket", "kind=\"verify\"") > 0);
    assert!(count("qb_target_latency_seconds_bucket", "") > 0);

    // Histogram coherence: per (name, kind) the cumulative buckets are
    // monotone in `le`, end at `+Inf`, and match the `_count` series.
    let mut by_series: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    for (name, labels, value) in &samples {
        let Some(base) = name.strip_suffix("_seconds_bucket") else {
            continue;
        };
        let kind = labels
            .split(',')
            .find(|kv| kv.starts_with("kind="))
            .unwrap_or("")
            .to_string();
        let le = labels
            .split(',')
            .find_map(|kv| kv.strip_prefix("le=\""))
            .and_then(|v| v.strip_suffix('"'))
            .expect("bucket has le");
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().unwrap()
        };
        by_series
            .entry((base.to_string(), kind))
            .or_default()
            .push((le, *value));
    }
    assert!(!by_series.is_empty(), "no histogram series in scrape");
    for ((base, kind), mut buckets) in by_series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last = 0.0;
        for (le, v) in &buckets {
            assert!(*v >= last, "{base}/{kind}: bucket le={le} decreased");
            last = *v;
        }
        let (top_le, top) = *buckets.last().unwrap();
        assert!(top_le.is_infinite(), "{base}/{kind}: missing +Inf bucket");
        let total = samples
            .iter()
            .find(|(n, l, _)| n == &format!("{base}_seconds_count") && l.contains(kind.as_str()))
            .map(|(_, _, v)| *v)
            .unwrap_or_else(|| panic!("{base}/{kind}: no _count series"));
        assert_eq!(top, total, "{base}/{kind}: +Inf bucket != count");
    }
}

/// A traced verify over the socket returns a balanced Chrome trace in
/// the response and leaves process-wide tracing off afterwards.
#[test]
fn daemon_traced_verify_over_socket_returns_valid_trace() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::set_enabled(false);
    let _ = obs::take_all_spans();
    let (_socket, mut client, handle) = start_daemon();

    client.load("adder", &adder_source(16)).unwrap();
    let resp = client.verify_traced("adder", None, None, true).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("all_safe").and_then(Json::as_bool), Some(true));
    let trace = resp
        .get("trace")
        .and_then(Json::as_str)
        .expect("trace member");
    let trace = Json::parse(trace.trim()).expect("trace is valid JSON");
    let events = assert_trace_balanced(&trace);
    assert!(events >= 2, "trace has no spans");
    // Latency summaries ride along on every verify response.
    assert!(resp.get("target_p95_us").and_then(Json::as_i64).is_some());
    assert!(!obs::enabled(), "daemon left tracing enabled");

    // The next, untraced verify must not carry a trace.
    let resp = client.verify("adder", None).unwrap();
    assert!(resp.get("trace").is_none());
    shutdown(client, handle);
}

/// Tail-sampling end to end: with a high fixed slow threshold, healthy
/// requests leave no exemplar files, a deadline-expired verify (all
/// verdicts unknown) promotes exactly one — named after its request id
/// and holding a balanced Chrome trace — and the trace of any recent
/// request can still be fetched from the flight-recorder ring over the
/// socket.
#[test]
fn deadline_expired_verify_leaves_exactly_one_exemplar() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::set_enabled(false);
    let _ = obs::take_all_spans();
    let dir = temp_trace_dir();
    let (_socket, mut client, handle) = start_daemon_with(|opts| {
        opts.trace_dir = Some(dir.clone());
        opts.slow_threshold = Some(Duration::from_secs(3600));
    });

    let resp = client.load("adder", &adder_source(8)).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let resp = client.verify("adder", None).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let healthy_rid = resp.get("request_id").and_then(Json::as_i64).unwrap() as u64;
    assert!(
        exemplar_files(&dir).is_empty(),
        "healthy traffic must not shed exemplars: {:?}",
        exemplar_files(&dir)
    );

    // An already-expired deadline turns every verdict unknown; that is
    // the tail-sampling trigger.
    let resp = client.verify_with_deadline("adder", None, Some(0)).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(resp.get("unknowns").and_then(Json::as_i64).unwrap() > 0);
    let slow_rid = resp.get("request_id").and_then(Json::as_i64).unwrap() as u64;

    let files = exemplar_files(&dir);
    assert_eq!(files, vec![format!("req-{slow_rid:012}.trace.json")]);
    let trace = std::fs::read_to_string(dir.join(&files[0])).expect("exemplar file readable");
    let trace = Json::parse(trace.trim()).expect("exemplar is valid JSON");
    assert_trace_balanced(&trace);

    // Another healthy verify adds nothing.
    let resp = client.verify("adder", None).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(exemplar_files(&dir).len(), 1);

    // The healthy request never hit disk but its trace is still in the
    // ring, request-id keyed, with the sweep hierarchy captured.
    let fetched = client.trace(healthy_rid).unwrap();
    assert_eq!(fetched.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        fetched.get("trace_request_id").and_then(Json::as_i64),
        Some(healthy_rid as i64)
    );
    let text = fetched.get("trace").and_then(Json::as_str).unwrap();
    assert!(text.contains("\"sweep\""), "sweep span missing: {text}");
    assert_trace_balanced(&Json::parse(text.trim()).unwrap());

    shutdown(client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The exemplar directory never grows past `trace_retain`: a burst of
/// failing requests (verifies of a name that was never loaded) each
/// writes an exemplar, and only the newest `retain` files survive.
#[test]
fn exemplar_retention_keeps_only_the_newest_files() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = temp_trace_dir();
    let (_socket, mut client, handle) = start_daemon_with(|opts| {
        opts.trace_dir = Some(dir.clone());
        opts.trace_retain = 3;
    });

    let mut rids = Vec::new();
    for _ in 0..6 {
        let resp = client.verify("never-loaded", None).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        rids.push(resp.get("request_id").and_then(Json::as_i64).unwrap() as u64);
    }
    let files = exemplar_files(&dir);
    let expected: Vec<String> = rids[3..]
        .iter()
        .map(|rid| format!("req-{rid:012}.trace.json"))
        .collect();
    assert_eq!(files, expected, "retention must keep the newest 3");

    shutdown(client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `top` surface over a real socket: with a fast sampler cadence the
/// ring accrues snapshots, `client.top()` reports rates computed from at
/// least two of them, and the compiled CLI's `client top --once --json`
/// prints the same JSON on stdout. `status` carries the flight-recorder
/// counters as well.
#[test]
fn client_top_once_json_reports_rates_over_a_real_socket() {
    let _guard = OBS_LOCK.lock().unwrap();
    let (socket, mut client, handle) = start_daemon_with(|opts| {
        opts.sample_interval = Duration::from_millis(50);
    });

    client.load("adder", &adder_source(8)).unwrap();
    for _ in 0..3 {
        let resp = client.verify("adder", None).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    }
    // Let the sampler take at least two snapshots spanning the traffic.
    std::thread::sleep(Duration::from_millis(250));

    let top = client.top().unwrap();
    assert_eq!(top.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        top.get("samples").and_then(Json::as_i64).unwrap() >= 2,
        "sampler should have ticked at least twice: {top}"
    );
    let req_rate = top
        .get("rates")
        .and_then(|r| r.get("req_per_s"))
        .and_then(|v| match v {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        })
        .expect("req/s computable from two snapshots");
    assert!(req_rate > 0.0, "traffic happened between snapshots: {top}");
    let sessions = top.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 1);
    assert!(sessions[0]
        .get("queue_depth")
        .and_then(Json::as_i64)
        .is_some());
    assert!(sessions[0]
        .get("mailbox_wait_p95_us")
        .and_then(Json::as_i64)
        .is_some());

    // Satellite: the recorder surfaces in status too.
    let status = client.status().unwrap();
    for key in [
        "dropped_spans",
        "recorder_recorded",
        "recorder_overflow",
        "exemplars",
    ] {
        assert!(
            status.get(key).and_then(Json::as_i64).is_some(),
            "status lacks {key}: {status}"
        );
    }

    // The compiled CLI speaks the same protocol: one-shot JSON dashboard.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_qborrow"))
        .args(["client", "top", "--socket"])
        .arg(&socket)
        .args(["--once", "--json"])
        .output()
        .expect("qborrow binary runs");
    assert!(output.status.success(), "client top failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let parsed = Json::parse(stdout.trim()).expect("client top --json emits JSON");
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    assert!(parsed.get("samples").and_then(Json::as_i64).unwrap() >= 2);
    assert!(parsed.get("rates").is_some());

    shutdown(client, handle);
}
