//! Cross-checks of the incremental verification session against the
//! fresh-solver pipeline on the paper's two benchmark families (the
//! Håner carry gadget behind `adder.qbr` and the borrowed-bit Gidney
//! MCX), in clean and dirty initial-value variants, plus parallel
//! fan-out ordering guarantees.

use qborrow::circuit::{simulate_classical, BitState, Circuit};
use qborrow::core::{
    verify_circuit, verify_circuit_fresh, verify_circuit_parallel, BackendKind, InitialValue,
    VerificationReport, VerifyOptions, Violation,
};
use qborrow::formula::Simplify;
use qborrow::synth::{carry_gadget, gidney_mcx};

fn sat_options() -> Vec<VerifyOptions> {
    [Simplify::Raw, Simplify::Full]
        .into_iter()
        .map(|simplify| VerifyOptions {
            backend: BackendKind::Sat,
            simplify,
            ..VerifyOptions::default()
        })
        .collect()
}

fn assert_same_verdicts(a: &VerificationReport, b: &VerificationReport, tag: &str) {
    assert_eq!(a.verdicts.len(), b.verdicts.len(), "{tag}");
    for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
        assert_eq!(x.qubit, y.qubit, "{tag}");
        assert_eq!(x.safe, y.safe, "{tag}: qubit {}", x.qubit);
        assert_eq!(
            x.counterexample.as_ref().map(|ce| ce.violation),
            y.counterexample.as_ref().map(|ce| ce.violation),
            "{tag}: qubit {}",
            x.qubit
        );
    }
}

/// Witnesses from any pipeline must replay on the concrete circuit.
fn assert_witnesses_replay(circuit: &Circuit, report: &VerificationReport, tag: &str) {
    let n = circuit.num_qubits();
    for v in &report.verdicts {
        let Some(ce) = &v.counterexample else {
            continue;
        };
        let bits = ce
            .basis_assignment
            .as_ref()
            .expect("SAT produces witnesses");
        match ce.violation {
            Violation::ZeroNotRestored => {
                let mut input = bits.clone();
                input[v.qubit] = false;
                let out = simulate_classical(circuit, &BitState::from_bits(&input)).unwrap();
                assert!(
                    out.get(v.qubit),
                    "{tag}: |0> witness must flip qubit {}",
                    v.qubit
                );
            }
            Violation::PlusNotRestored => {
                let mut in0 = bits.clone();
                in0[v.qubit] = false;
                let mut in1 = bits.clone();
                in1[v.qubit] = true;
                let out0 = simulate_classical(circuit, &BitState::from_bits(&in0)).unwrap();
                let out1 = simulate_classical(circuit, &BitState::from_bits(&in1)).unwrap();
                let differs = (0..n)
                    .filter(|&p| p != v.qubit)
                    .any(|p| out0.get(p) != out1.get(p));
                assert!(differs, "{tag}: |+> witness must leak qubit {}", v.qubit);
            }
        }
    }
}

#[test]
fn haner_carry_session_matches_fresh_dirty_and_clean() {
    let n = 8;
    let (circuit, layout) = carry_gadget(n);
    let width = circuit.num_qubits();
    // All borrowed address qubits are dirty verification targets.
    let targets: Vec<usize> = (0..n - 1).map(|i| layout.a + i).collect();

    // Dirty variant: every qubit unconstrained (the paper's default).
    let dirty = vec![InitialValue::Free; width];
    // Clean variant: the working register is known-zero, which the
    // verifier exploits — verdicts must still agree across pipelines.
    let mut clean = vec![InitialValue::Free; width];
    for i in 0..n - 1 {
        clean[layout.q + i] = InitialValue::Zero;
    }

    for (variant, initial) in [("dirty", &dirty), ("clean", &clean)] {
        for opts in sat_options() {
            let fresh = verify_circuit_fresh(&circuit, initial, &targets, &opts).unwrap();
            let session = verify_circuit(&circuit, initial, &targets, &opts).unwrap();
            let parallel = verify_circuit_parallel(&circuit, initial, &targets, &opts, 3).unwrap();
            let tag = format!("haner/{variant}/{:?}", opts.simplify);
            assert_same_verdicts(&fresh, &session, &tag);
            assert_same_verdicts(&session, &parallel, &tag);
            assert!(
                session.all_safe(),
                "{tag}: carry gadget restores its dirty qubits"
            );
        }
    }
}

#[test]
fn broken_haner_carry_counterexamples_agree_and_replay() {
    let (good, layout) = carry_gadget(6);
    // Drop the final uncompute gate: some address qubit leaks.
    let mut broken = Circuit::new(good.num_qubits());
    for g in &good.gates()[..good.size() - 1] {
        broken.push(g.clone());
    }
    let targets: Vec<usize> = (0..5).map(|i| layout.a + i).collect();
    let initial = vec![InitialValue::Free; broken.num_qubits()];
    for opts in sat_options() {
        let fresh = verify_circuit_fresh(&broken, &initial, &targets, &opts).unwrap();
        let session = verify_circuit(&broken, &initial, &targets, &opts).unwrap();
        let tag = format!("broken-haner/{:?}", opts.simplify);
        assert_same_verdicts(&fresh, &session, &tag);
        assert!(!session.all_safe(), "{tag}: fault must be caught");
        assert_witnesses_replay(&broken, &session, &tag);
        assert_witnesses_replay(&broken, &fresh, &tag);
    }
}

#[test]
fn gidney_mcx_session_matches_fresh_dirty_and_clean() {
    let (circuit, layout) = gidney_mcx(6);
    let width = circuit.num_qubits();
    let anc = layout.dirty.expect("gidney mcx borrows a dirty qubit");
    let targets = vec![anc];

    let dirty = vec![InitialValue::Free; width];
    // Clean variant: the borrowed ancilla itself starts in |0⟩.
    let mut clean = dirty.clone();
    clean[anc] = InitialValue::Zero;

    for (variant, initial) in [("dirty", &dirty), ("clean", &clean)] {
        for opts in sat_options() {
            let fresh = verify_circuit_fresh(&circuit, initial, &targets, &opts).unwrap();
            let session = verify_circuit(&circuit, initial, &targets, &opts).unwrap();
            let tag = format!("mcx/{variant}/{:?}", opts.simplify);
            assert_same_verdicts(&fresh, &session, &tag);
            assert!(session.all_safe(), "{tag}: the MCX ancilla is restored");
        }
    }
}

#[test]
fn broken_mcx_session_matches_fresh_with_witness() {
    let (good, layout) = gidney_mcx(5);
    let anc = layout.dirty.unwrap();
    // Sabotage: an extra CNOT copies the ancilla into the target wire.
    let mut broken = good.clone();
    broken.cnot(anc, layout.target);
    let initial = vec![InitialValue::Free; broken.num_qubits()];
    for opts in sat_options() {
        let fresh = verify_circuit_fresh(&broken, &initial, &[anc], &opts).unwrap();
        let session = verify_circuit(&broken, &initial, &[anc], &opts).unwrap();
        let tag = format!("broken-mcx/{:?}", opts.simplify);
        assert_same_verdicts(&fresh, &session, &tag);
        assert!(!session.all_safe(), "{tag}");
        assert_witnesses_replay(&broken, &session, &tag);
    }
}

#[test]
fn parallel_fanout_preserves_request_order_on_haner_sweep() {
    let n = 8;
    let (circuit, layout) = carry_gadget(n);
    let initial = vec![InitialValue::Free; circuit.num_qubits()];
    // Deliberately interleaved, non-monotone request order.
    let mut targets: Vec<usize> = (0..n - 1).map(|i| layout.a + i).collect();
    targets.reverse();
    targets.swap(0, 3);
    let opts = VerifyOptions::default();
    for jobs in [0, 2, 5] {
        let report = verify_circuit_parallel(&circuit, &initial, &targets, &opts, jobs).unwrap();
        let order: Vec<usize> = report.verdicts.iter().map(|v| v.qubit).collect();
        assert_eq!(order, targets, "jobs={jobs}");
    }
}

/// The session exposes its solver's work counters through the public
/// [`qborrow::core::SessionStats`] surface only — this test (and the
/// soak suite) deliberately never reaches into solver internals, so
/// clause-layout rewrites (e.g. the PR-5 flat arena) cannot churn it.
#[test]
fn solver_counters_are_observable_through_session_stats() {
    use qborrow::core::{BackendKind, VerifySession};

    let n = 8;
    let (circuit, layout) = carry_gadget(n);
    let initial = vec![InitialValue::Free; circuit.num_qubits()];
    let targets: Vec<usize> = (0..n - 1).map(|i| layout.a + i).collect();
    let opts = VerifyOptions {
        backend: BackendKind::Sat,
        simplify: qborrow::formula::Simplify::Raw,
        ..VerifyOptions::default()
    };
    let mut session = VerifySession::new(&circuit, &initial, &opts).unwrap();
    session.verify_targets(&targets).unwrap();
    let stats = session.stats();
    assert!(
        stats.solver_propagations > 0,
        "a SAT sweep propagates: {stats:?}"
    );
    assert!(stats.solver_decisions > 0, "{stats:?}");
    assert!(
        stats.live_clauses <= stats.clause_slots,
        "slot accounting stays sane: {stats:?}"
    );
    assert!(
        stats.sat_time.as_nanos() > 0,
        "backend time is attributed: {stats:?}"
    );
    // Counters are cumulative: a second sweep (decision-cache warm)
    // never decreases them.
    let before = stats.solver_propagations;
    session.verify_targets(&targets).unwrap();
    assert!(session.stats().solver_propagations >= before);

    // A pure-BDD session reports zero solver work through the same API.
    let opts = VerifyOptions {
        backend: BackendKind::Bdd,
        ..VerifyOptions::default()
    };
    let mut session = VerifySession::new(&circuit, &initial, &opts).unwrap();
    session.verify_targets(&targets).unwrap();
    let stats = session.stats();
    assert_eq!(stats.solver_propagations, 0, "{stats:?}");
    assert_eq!(stats.solver_vars, 0, "{stats:?}");
}
