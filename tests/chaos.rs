//! Overload and chaos soak tests against a real daemon (`run()`), not
//! the synchronous test facade: a saturating pipelined burst must be
//! shed with structured `overloaded` errors while health walks
//! `ok → overloaded → ok`; a full mailbox must never stall the
//! connection's reader thread (requests for other sessions keep
//! flowing); and a mixed multi-client soak under failpoint-injected
//! panics, snapshot-write failures, spurious cancels and artificial
//! slow-solves must deliver exactly one well-formed response per
//! request, never a wrong verdict, and recover to `ok` health.

use qborrow::core::{verify_circuit_fresh, InitialValue, VerifyOptions};
use qborrow::lang::{adder_source, elaborate, parse, QubitKind};
use qborrow::serve::{run, Client, Json, Request, RetryBudget, ServeOptions, ServerLimits};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// Failpoints are process-global, and so are the `qb_obs` metric
/// registries the health gauge lands in: every test in this binary
/// serializes on this lock.
static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Starts an in-process daemon with the given limits on a fresh Unix
/// socket, optionally also on TCP and with a state directory.
fn start_daemon(
    tag: &str,
    with_tcp: bool,
    limits: ServerLimits,
    state_dir: Option<PathBuf>,
) -> (PathBuf, Option<String>, std::thread::JoinHandle<()>) {
    let socket = std::env::temp_dir().join(format!(
        "qborrow-chaos-{tag}-{}-{}.sock",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let tcp = with_tcp.then(|| {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        probe.local_addr().expect("probe addr").to_string()
    });
    let opts = ServeOptions {
        log: false,
        tcp: tcp.clone(),
        limits,
        state_dir,
        ..ServeOptions::new(socket.clone())
    };
    let handle = std::thread::spawn(move || run(&opts).expect("daemon runs"));
    for _ in 0..600 {
        if let Ok(client) = Client::connect(&socket) {
            drop(client);
            return (socket, tcp, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn shutdown(mut client: Client, handle: std::thread::JoinHandle<()>) {
    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("daemon thread exits cleanly");
}

/// Fresh-pipeline oracle: `(qubit, safe)` per borrow qubit of `source`.
fn fresh_verdicts(source: &str) -> Vec<(usize, bool)> {
    let program = elaborate(&parse(source).expect("parses")).expect("elaborates");
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    let report = verify_circuit_fresh(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    )
    .expect("fresh verification completes");
    report.verdicts.iter().map(|v| (v.qubit, v.safe)).collect()
}

/// Asserts a fully-decided daemon verify response equals the oracle.
fn assert_matches_oracle(response: &Json, expected: &[(usize, bool)], tag: &str) {
    let verdicts = response
        .get("verdicts")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{tag}: no verdicts in {response}"));
    assert_eq!(verdicts.len(), expected.len(), "{tag}: verdict count");
    for (v, (qubit, safe)) in verdicts.iter().zip(expected) {
        assert_eq!(
            v.get("qubit").and_then(Json::as_i64),
            Some(*qubit as i64),
            "{tag}"
        );
        assert_eq!(
            v.get("safe").and_then(Json::as_bool),
            Some(*safe),
            "{tag}: qubit {qubit}"
        );
    }
}

fn health_of(client: &mut Client) -> String {
    client
        .status()
        .expect("status")
        .get("health")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string()
}

/// Polls `status` until the daemon reports `want` health (and, when
/// asked, an empty queue), panicking after `timeout`.
fn await_health(client: &mut Client, want: &str, drained: bool, timeout: Duration) -> Json {
    let t0 = Instant::now();
    loop {
        let status = client.status().expect("status");
        let health = status.get("health").and_then(Json::as_str).unwrap_or("?");
        let queued = status
            .get("queued_requests")
            .and_then(Json::as_i64)
            .unwrap_or(-1);
        if health == want && (!drained || queued == 0) {
            return status;
        }
        assert!(
            t0.elapsed() < timeout,
            "health stuck at {health:?} (queued {queued}), wanted {want:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn sane_retry_after(response: &Json) -> i64 {
    let retry = response
        .get("retry_after_ms")
        .and_then(Json::as_i64)
        .unwrap_or(-1);
    assert!(
        (1..=60_000).contains(&retry),
        "retry_after_ms out of range: {response}"
    );
    retry
}

/// A saturating pipelined burst at one session: the queue blows
/// through the daemon budget, health walks `ok → overloaded → ok`, a
/// concurrent unbounded verify is brownout-rejected immediately with a
/// structured `overloaded` error (sane `retry_after_ms`, queue
/// estimate), and the shed counters surface in `status`, `top` and the
/// Prometheus text.
#[test]
fn saturating_burst_sheds_structured_and_health_recovers() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    qb_testutil::failpoints::clear_all();
    let limits = ServerLimits {
        queue_budget: 64,
        ..ServerLimits::default()
    };
    let (socket, _tcp, handle) = start_daemon("burst", false, limits, None);

    let source = adder_source(5);
    let expected = fresh_verdicts(&source);
    let mut setup = Client::connect(&socket).expect("setup connect");
    setup.load("burst", &source).expect("load");
    let mut control = Client::connect(&socket).expect("control connect");
    assert_eq!(health_of(&mut control), "ok");

    // Slow every solve down so the mailbox actually fills: the reader
    // admits requests far faster than the actor drains them.
    qb_testutil::failpoints::arm(
        "slow_solve",
        qb_testutil::failpoints::Action::Delay(100),
        None,
    );

    // Pipeline a burst well past the queue budget but below the
    // mailbox capacity, all with an explicit (far) deadline so every
    // request is admitted: health deterministically reaches
    // `overloaded` while the capacity check stays out of the way, so
    // the probe below exercises the brownout path. (Mailbox overflow
    // itself is covered by the reader-stall test.)
    const BURST: usize = 200;
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut batch = String::new();
    for _ in 0..BURST {
        batch.push_str(
            &Request::Verify {
                name: "burst".into(),
                targets: None,
                deadline_ms: Some(600_000),
                trace: false,
            }
            .to_line(),
        );
        batch.push('\n');
    }
    writer.write_all(batch.as_bytes()).expect("burst write");
    writer.flush().expect("burst flush");

    // The queue blows through the budget: health reaches `overloaded`.
    await_health(&mut control, "overloaded", false, Duration::from_secs(5));

    // While overloaded, an unbounded verify from a fresh client is
    // rejected immediately (brownout shed), well under the drain time.
    let mut probe = Client::connect(&socket).expect("probe connect");
    let t0 = Instant::now();
    let shed = probe.verify("burst", None).expect("probe verify");
    let elapsed = t0.elapsed();
    assert_eq!(
        shed.get("code").and_then(Json::as_str),
        Some("overloaded"),
        "{shed}"
    );
    sane_retry_after(&shed);
    assert!(
        shed.get("queue_est_ms").and_then(Json::as_i64).is_some(),
        "overloaded response lost its queue estimate: {shed}"
    );
    let bound = if cfg!(debug_assertions) { 500 } else { 100 };
    assert!(
        elapsed < Duration::from_millis(bound),
        "overloaded rejection took {elapsed:?}"
    );

    // Un-slow the solves so the accepted backlog drains quickly.
    qb_testutil::failpoints::clear("slow_solve");

    // Every burst request gets exactly one well-formed response. The
    // burst stayed below the mailbox capacity and carried a far
    // deadline, so each one is an accepted verify matching the fresh
    // oracle — any rejection here must still be `overloaded`-coded
    // (a dequeue race against the capacity check), never anything else.
    let mut accepted = 0usize;
    let mut shed_count = 0usize;
    for i in 0..BURST {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response read");
        assert!(n > 0, "connection closed after {i} of {BURST} responses");
        let resp = Json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("unparseable response {i}: {e}: {line:?}"));
        assert!(
            resp.get("request_id").and_then(Json::as_i64).is_some(),
            "response {i} lost its request id: {resp}"
        );
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            assert_eq!(
                resp.get("unknowns").and_then(Json::as_i64),
                Some(0),
                "accepted verify {i} timed out: {resp}"
            );
            assert_matches_oracle(&resp, &expected, &format!("burst verify {i}"));
            accepted += 1;
        } else {
            assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("overloaded"),
                "unexpected rejection for request {i}: {resp}"
            );
            sane_retry_after(&resp);
            shed_count += 1;
        }
    }
    assert!(accepted > 0, "burst was shed entirely");

    // Health decays back to `ok` once the queue drains, and the probe's
    // brownout shed is accounted in `status`.
    let status = await_health(&mut control, "ok", true, Duration::from_secs(30));
    let sheds = status.get("sheds").expect("sheds object");
    assert!(
        sheds.get("brownout").and_then(Json::as_i64).unwrap_or(0) > 0,
        "{status}"
    );
    assert!(
        status
            .get("sheds_total")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= (shed_count + 1) as i64,
        "{status}"
    );

    // The same surface rides in `top` and the Prometheus exposition.
    let top = control.top().expect("top");
    assert_eq!(top.get("health").and_then(Json::as_str), Some("ok"));
    assert!(top.get("shed").is_some(), "{top}");
    assert!(
        top.get("sheds_total").and_then(Json::as_i64).unwrap_or(0) >= 1,
        "{top}"
    );
    let metrics = control.metrics().expect("metrics");
    let text = metrics.get("metrics").and_then(Json::as_str).unwrap_or("");
    assert!(
        text.contains("qb_shed_total{kind=\"brownout\"}"),
        "missing shed counter in:\n{text}"
    );
    assert!(
        text.contains("qb_health{kind=\"daemon\"} 0"),
        "health gauge not back to ok in:\n{text}"
    );

    shutdown(control, handle);
}

/// Regression for the blocking-send hazard: a burst that fills one
/// session's mailbox must not stall the connection's reader thread — a
/// request for a *different* session pipelined behind the burst on the
/// same connection is answered while the saturated session is still
/// draining.
#[test]
fn full_mailbox_does_not_stall_other_sessions_on_same_connection() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    qb_testutil::failpoints::clear_all();
    let (socket, _tcp, handle) = start_daemon("reader", false, ServerLimits::default(), None);

    let slow_source = adder_source(5);
    let fast_source = adder_source(4);
    let expected_slow = fresh_verdicts(&slow_source);
    let expected_fast = fresh_verdicts(&fast_source);
    let mut setup = Client::connect(&socket).expect("setup connect");
    setup.load("slowprog", &slow_source).expect("load slow");
    setup.load("fastprog", &fast_source).expect("load fast");
    // Learn the daemon's request-id watermark so the fast session's
    // response can be identified among the interleaved completions.
    let baseline = setup
        .verify_with_deadline("fastprog", None, Some(60_000))
        .expect("baseline verify");
    let base_id = baseline
        .get("request_id")
        .and_then(Json::as_i64)
        .expect("request id");

    qb_testutil::failpoints::arm(
        "slow_solve",
        qb_testutil::failpoints::Action::Delay(50),
        None,
    );

    // One connection: a mailbox-overflowing burst at the slow session,
    // then a single verify for the fast session behind it.
    const BURST: usize = 320;
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut batch = String::new();
    for _ in 0..BURST {
        batch.push_str(
            &Request::Verify {
                name: "slowprog".into(),
                targets: None,
                deadline_ms: Some(600_000),
                trace: false,
            }
            .to_line(),
        );
        batch.push('\n');
    }
    batch.push_str(
        &Request::Verify {
            name: "fastprog".into(),
            targets: None,
            deadline_ms: Some(60_000),
            trace: false,
        }
        .to_line(),
    );
    batch.push('\n');
    let t0 = Instant::now();
    writer.write_all(batch.as_bytes()).expect("burst write");
    writer.flush().expect("burst flush");

    // Requests get consecutive ids in arrival order on this (only
    // active) connection, so the fast verify is `base_id + BURST + 1`.
    let fast_id = base_id + BURST as i64 + 1;
    let mut lines_read = 0usize;
    let fast_elapsed = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response read");
        assert!(n > 0, "connection closed before the fast response");
        lines_read += 1;
        let resp = Json::parse(line.trim_end()).expect("parseable response");
        if resp.get("request_id").and_then(Json::as_i64) == Some(fast_id) {
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "fast verify rejected: {resp}"
            );
            assert_matches_oracle(&resp, &expected_fast, "fast verify");
            break t0.elapsed();
        }
    };
    // With the old blocking send the reader would sit on the full slow
    // mailbox and the fast verify would only be admitted after most of
    // the 50ms-per-solve backlog drained (multiple seconds).
    assert!(
        fast_elapsed < Duration::from_secs(2),
        "fast session stalled behind a saturated one: {fast_elapsed:?}"
    );

    // Un-slow the backlog, then account for every remaining response.
    qb_testutil::failpoints::clear("slow_solve");
    for _ in lines_read..BURST + 1 {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response read");
        assert!(n > 0, "connection closed mid-drain");
        let resp = Json::parse(line.trim_end()).expect("parseable response");
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            assert_matches_oracle(&resp, &expected_slow, "drained slow verify");
        } else {
            assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("overloaded"),
                "unexpected rejection: {resp}"
            );
        }
    }

    let mut control = Client::connect(&socket).expect("control connect");
    let status = await_health(&mut control, "ok", true, Duration::from_secs(30));
    assert!(
        status
            .get("sheds")
            .and_then(|s| s.get("mailbox_full"))
            .and_then(Json::as_i64)
            .unwrap_or(0)
            > 0,
        "mailbox never filled: {status}"
    );
    shutdown(control, handle);
}

/// The chaos soak: mixed multi-client traffic on both transports while
/// failpoints inject spurious cancels, actor panics, snapshot-write
/// failures and artificial slow-solves. Invariants: every request gets
/// exactly one well-formed response; a fully-decided verify never
/// disagrees with the fresh-pipeline oracle; rejections carry only
/// `overloaded`/`unavailable`/`internal_error`/`not_loaded` codes; and
/// after the chaos stops the daemon recovers to `ok` health with every
/// breaker closed and every session alive.
#[test]
fn chaos_soak_never_lies_and_recovers() {
    let _guard = FAILPOINT_LOCK.lock().unwrap();
    qb_testutil::failpoints::clear_all();
    let state_dir = std::env::temp_dir().join(format!(
        "qborrow-chaos-state-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let (socket, tcp, handle) = start_daemon(
        "soak",
        true,
        ServerLimits::default(),
        Some(state_dir.clone()),
    );
    let tcp = tcp.expect("tcp listener requested");

    struct Worker {
        name: String,
        source: String,
        expected: Vec<(usize, bool)>,
    }
    let workers: Vec<Worker> = (0..4)
        .map(|i| {
            let source = adder_source(4 + i);
            let expected = fresh_verdicts(&source);
            Worker {
                name: format!("chaos{}", 4 + i),
                source,
                expected,
            }
        })
        .collect();

    let threads: Vec<_> = workers
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let socket = socket.clone();
            let tcp = tcp.clone();
            let name = w.name.clone();
            let source = w.source.clone();
            let expected = w.expected.clone();
            std::thread::spawn(move || {
                let mut client = if i % 2 == 0 {
                    Client::connect_with_retry(&socket, 8, Duration::from_millis(25))
                        .expect("unix connect")
                } else {
                    Client::connect_tcp_with_retry(&tcp, 8, Duration::from_millis(25))
                        .expect("tcp connect")
                };
                let mut budget = RetryBudget::new(3);
                let verify = Request::Verify {
                    name: name.clone(),
                    targets: None,
                    deadline_ms: Some(60_000),
                    trace: false,
                };
                let mut clean = 0u32;
                for round in 0..10 {
                    let tag = format!("{name} round {round}");
                    let load = client.load(&name, &source).expect("load round-trips");
                    if load.get("ok").and_then(Json::as_bool) != Some(true) {
                        // A load only fails under chaos via a shed or a
                        // panic-quarantine; both are tolerated.
                        continue;
                    }
                    for _ in 0..2 {
                        let resp = client
                            .request_with_retry(&verify, &mut budget, 2)
                            .expect("verify round-trips");
                        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                            if resp.get("unknowns").and_then(Json::as_i64) == Some(0) {
                                // The core invariant: a fully-decided
                                // verify never disagrees with the
                                // fresh-pipeline oracle, chaos or not.
                                assert_matches_oracle(&resp, &expected, &tag);
                                clean += 1;
                            }
                        } else {
                            let code = resp.get("code").and_then(Json::as_str).unwrap_or("?");
                            assert!(
                                matches!(
                                    code,
                                    "overloaded" | "unavailable" | "internal_error" | "not_loaded"
                                ),
                                "{tag}: unexpected code: {resp}"
                            );
                            if code == "not_loaded" {
                                let _ = client.load(&name, &source);
                            }
                        }
                    }
                    let edit = client.edit(&name, &source).expect("edit round-trips");
                    if edit.get("ok").and_then(Json::as_bool) != Some(true) {
                        let code = edit.get("code").and_then(Json::as_str).unwrap_or("?");
                        assert!(
                            matches!(
                                code,
                                "overloaded" | "unavailable" | "internal_error" | "not_loaded"
                            ),
                            "{tag}: unexpected edit code: {edit}"
                        );
                    }
                }
                clean
            })
        })
        .collect();

    // The chaos driver: cycle through the failure modes while the
    // workers hammer the daemon. Bounded hit counts keep every wave
    // finite so the soak always converges.
    for wave in 0..8 {
        match wave % 4 {
            0 => qb_testutil::failpoints::arm(
                "spurious_cancel",
                qb_testutil::failpoints::Action::Cancel,
                Some(3),
            ),
            1 => qb_testutil::failpoints::arm(
                "spurious_cancel",
                qb_testutil::failpoints::Action::Panic,
                Some(1),
            ),
            2 => qb_testutil::failpoints::arm(
                "snapshot_write",
                qb_testutil::failpoints::Action::Error,
                Some(2),
            ),
            _ => qb_testutil::failpoints::arm(
                "slow_solve",
                qb_testutil::failpoints::Action::Delay(10),
                Some(10),
            ),
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    qb_testutil::failpoints::clear_all();

    let clean: u32 = threads.into_iter().map(|t| t.join().expect("worker")).sum();
    assert!(clean > 0, "no verify ever completed cleanly under chaos");
    qb_testutil::failpoints::clear_all();

    // Recovery: an edit closes any breaker a panic wave tripped, then
    // every program must verify cleanly against the oracle again.
    let mut client = Client::connect(&socket).expect("recovery connect");
    for w in &workers {
        let load = client.load(&w.name, &w.source).expect("recovery load");
        assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true), "{load}");
        let edit = client.edit(&w.name, &w.source).expect("recovery edit");
        assert_eq!(edit.get("ok").and_then(Json::as_bool), Some(true), "{edit}");
        let resp = client.verify(&w.name, None).expect("recovery verify");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert_matches_oracle(&resp, &w.expected, &format!("{} recovery", w.name));
    }

    // The daemon is healthy again: `ok`, drained, every breaker closed,
    // every worker thread alive, and the session table holds exactly
    // the four programs (bounded state, no leaked sessions).
    let status = await_health(&mut client, "ok", true, Duration::from_secs(30));
    assert_eq!(status.get("breakers_open").and_then(Json::as_i64), Some(0));
    assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(4));
    let programs = status.get("programs").and_then(Json::as_arr).unwrap();
    assert_eq!(programs.len(), 4);
    for p in programs {
        assert_eq!(
            p.get("worker_alive").and_then(Json::as_bool),
            Some(true),
            "{p}"
        );
        assert_eq!(p.get("queue_depth").and_then(Json::as_i64), Some(0), "{p}");
    }

    shutdown(client, handle);
    let _ = std::fs::remove_dir_all(&state_dir);
}
