//! Protocol round-trip tests for the verify-on-change daemon, driving a
//! real Unix socket: load → verify → edit → verify cycles on the paper's
//! two benchmark families (the Håner carry adder behind `adder.qbr` and
//! the borrowed-bit Gidney MCX), in clean, dirty and sabotaged variants.
//! Every verdict the daemon returns is cross-checked against the
//! independent fresh-solver pipeline [`verify_circuit_fresh`].

use qborrow::core::{verify_circuit_fresh, InitialValue, VerifyOptions};
use qborrow::lang::{adder_source, elaborate, mcx_source, parse, QubitKind};
use qborrow::serve::{run, Client, Json, ServeOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

static SOCKET_COUNTER: AtomicU32 = AtomicU32::new(0);

/// Starts a daemon on a fresh socket; returns the socket path, a
/// connected client, and the join handle.
fn start_daemon() -> (PathBuf, Client, std::thread::JoinHandle<()>) {
    let socket = std::env::temp_dir().join(format!(
        "qborrow-test-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let opts = ServeOptions {
        log: false,
        ..ServeOptions::new(socket.clone())
    };
    let handle = std::thread::spawn(move || run(&opts).expect("daemon runs"));
    for _ in 0..200 {
        if let Ok(client) = Client::connect(&socket) {
            return (socket, client, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn shutdown(mut client: Client, handle: std::thread::JoinHandle<()>) {
    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().expect("daemon thread exits cleanly");
}

/// Independent oracle: fresh-pipeline verdicts for a source.
/// Returns `(qubit, safe, violation-display)` per `borrow` qubit.
fn fresh_verdicts(source: &str) -> Vec<(usize, bool, Option<String>)> {
    let program = elaborate(&parse(source).expect("parses")).expect("elaborates");
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    let report = verify_circuit_fresh(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    )
    .expect("fresh verification completes");
    report
        .verdicts
        .iter()
        .map(|v| {
            (
                v.qubit,
                v.safe,
                v.counterexample.as_ref().map(|ce| ce.violation.to_string()),
            )
        })
        .collect()
}

/// Asserts a daemon verify response matches the fresh oracle exactly.
fn assert_matches_fresh(response: &Json, source: &str, tag: &str) {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{tag}: {response}"
    );
    let expected = fresh_verdicts(source);
    let verdicts = response
        .get("verdicts")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{tag}: no verdicts in {response}"));
    assert_eq!(verdicts.len(), expected.len(), "{tag}: verdict count");
    for (v, (qubit, safe, violation)) in verdicts.iter().zip(&expected) {
        assert_eq!(
            v.get("qubit").and_then(Json::as_usize),
            Some(*qubit),
            "{tag}: qubit order"
        );
        assert_eq!(
            v.get("safe").and_then(Json::as_bool),
            Some(*safe),
            "{tag}: safety of qubit {qubit}"
        );
        let daemon_violation = v.get("violation").and_then(Json::as_str).map(String::from);
        assert_eq!(
            &daemon_violation, violation,
            "{tag}: violation kind of qubit {qubit}"
        );
    }
    assert_eq!(
        response.get("all_safe").and_then(Json::as_bool),
        Some(expected.iter().all(|(_, safe, _)| *safe)),
        "{tag}: all_safe"
    );
}

/// A sabotaged Håner adder: an extra X on a dirty qubit after the
/// uncompute — a pure suffix append, violating condition (6.1) on a[1].
fn sabotaged_adder(n: usize) -> String {
    format!("{}X[a[1]];\n", adder_source(n))
}

/// A Gidney MCX whose ancilla leaks into a control: `release` is moved
/// to the very end so the extra CNOT elaborates, and the suffix gains a
/// gate that makes `anc` violate condition (6.2).
fn sabotaged_mcx(m: usize) -> String {
    let good = mcx_source(m);
    let moved = good.replace("release anc;\n", "");
    format!("{moved}\nCNOT[anc, q[1]];\nrelease anc;\n")
}

#[test]
fn socket_load_verify_edit_cycle_on_haner_adder() {
    let (_socket, mut client, handle) = start_daemon();
    let good = adder_source(8);
    let bad = sabotaged_adder(8);

    let load = client.load("adder", &good).unwrap();
    assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true), "{load}");
    assert_eq!(load.get("qubits").and_then(Json::as_i64), Some(15));
    assert_eq!(load.get("reused").and_then(Json::as_bool), Some(false));

    let verify = client.verify("adder", None).unwrap();
    assert_matches_fresh(&verify, &good, "clean load");

    // Sabotage: a 1-gate suffix append must take the incremental path
    // and flip the verdict.
    let edit = client.edit("adder", &bad).unwrap();
    assert_eq!(
        edit.get("strategy").and_then(Json::as_str),
        Some("incremental"),
        "{edit}"
    );
    let old_gates = load.get("gates").and_then(Json::as_i64).unwrap();
    assert_eq!(
        edit.get("common_prefix").and_then(Json::as_i64),
        Some(old_gates),
        "append keeps the whole old circuit as prefix"
    );
    assert_eq!(edit.get("added_gates").and_then(Json::as_i64), Some(1));
    let verify = client.verify("adder", None).unwrap();
    assert_matches_fresh(&verify, &bad, "sabotaged edit");
    assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));

    // Heal: editing back must flip every verdict back to safe.
    let edit = client.edit("adder", &good).unwrap();
    assert_eq!(
        edit.get("strategy").and_then(Json::as_str),
        Some("incremental")
    );
    let verify = client.verify("adder", None).unwrap();
    assert_matches_fresh(&verify, &good, "healed edit");
    assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));

    shutdown(client, handle);
}

#[test]
fn socket_gidney_mcx_dirty_and_sabotaged() {
    let (_socket, mut client, handle) = start_daemon();
    let good = mcx_source(5);
    let bad = sabotaged_mcx(5);

    client.load("mcx", &good).unwrap();
    let verify = client.verify("mcx", None).unwrap();
    assert_matches_fresh(&verify, &good, "good mcx");
    assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));

    let edit = client.edit("mcx", &bad).unwrap();
    assert_eq!(edit.get("ok").and_then(Json::as_bool), Some(true), "{edit}");
    let verify = client.verify("mcx", None).unwrap();
    assert_matches_fresh(&verify, &bad, "sabotaged mcx");
    assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));

    let edit = client.edit("mcx", &good).unwrap();
    assert_eq!(edit.get("ok").and_then(Json::as_bool), Some(true));
    let verify = client.verify("mcx", None).unwrap();
    assert_matches_fresh(&verify, &good, "healed mcx");

    shutdown(client, handle);
}

#[test]
fn socket_clean_variant_and_target_subsets() {
    let (_socket, mut client, handle) = start_daemon();
    // Clean variant of the Håner adder: the working register is
    // `alloc`ed (known |0…0⟩) instead of trusted-dirty.
    let clean = adder_source(6).replace("borrow@ q[n];", "alloc q[n];");
    client.load("clean-adder", &clean).unwrap();
    let verify = client.verify("clean-adder", None).unwrap();
    assert_matches_fresh(&verify, &clean, "clean-initial adder");

    // Subset verify: only the first two dirty qubits.
    let program = elaborate(&parse(&clean).unwrap()).unwrap();
    let targets = program.qubits_to_verify();
    let subset = vec![targets[0], targets[1]];
    let verify = client.verify("clean-adder", Some(subset.clone())).unwrap();
    let verdicts = verify.get("verdicts").and_then(Json::as_arr).unwrap();
    assert_eq!(verdicts.len(), 2);
    for (v, q) in verdicts.iter().zip(&subset) {
        assert_eq!(v.get("qubit").and_then(Json::as_usize), Some(*q));
        assert_eq!(v.get("safe").and_then(Json::as_bool), Some(true));
    }

    // Out-of-range targets surface as protocol errors, not crashes.
    let bad = client.verify("clean-adder", Some(vec![999])).unwrap();
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    shutdown(client, handle);
}

#[test]
fn socket_survives_malformed_requests_and_sessions_dedupe() {
    use std::io::{BufRead, BufReader, Write};
    let (socket, client, handle) = start_daemon();
    // Connections are served one at a time: release the probe connection
    // before opening a raw one.
    drop(client);

    // Raw garbage on a fresh connection: one error line back, daemon
    // stays up.
    {
        let stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"cmd\": nope}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim_end()).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    }
    let mut client = Client::connect(&socket).expect("reconnect after raw probe");

    // Structurally identical programs under two names share a session.
    let src_a = "borrow a[2]; CNOT[a[1], a[2]]; CNOT[a[1], a[2]];";
    let src_b = "borrow b[2]; for i = 1 to 2 { CNOT[b[1], b[2]]; }";
    let first = client.load("a.qbr", src_a).unwrap();
    let second = client.load("b.qbr", src_b).unwrap();
    assert_eq!(first.get("hash"), second.get("hash"));
    assert_eq!(second.get("reused").and_then(Json::as_bool), Some(true));

    let status = client.status().unwrap();
    assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(1));
    assert_eq!(
        status
            .get("programs")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2)
    );

    let unload = client.unload("a.qbr").unwrap();
    assert_eq!(unload.get("ok").and_then(Json::as_bool), Some(true));
    let status = client.status().unwrap();
    assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(1));

    let unload = client.unload("b.qbr").unwrap();
    assert_eq!(unload.get("sessions").and_then(Json::as_i64), Some(0));

    // Editing a never-loaded name carries the machine-readable code that
    // lets `qborrow watch` fall back to a fresh load.
    let ghost = client.edit("ghost.qbr", src_a).unwrap();
    assert_eq!(ghost.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(ghost.get("code").and_then(Json::as_str), Some("not_loaded"));

    // A second daemon refuses to hijack the live socket.
    let second = run(&ServeOptions {
        log: false,
        ..ServeOptions::new(socket.clone())
    });
    assert!(second.is_err(), "second daemon must not steal the socket");
    assert_eq!(second.unwrap_err().kind(), std::io::ErrorKind::AddrInUse);

    shutdown(client, handle);
}
