//! Crash-recovery and fault-injection tests driving the real `qborrow`
//! binary as a child process: SIGKILL mid-session with `--state-dir`
//! snapshots, environment-armed failpoints (`QB_FAILPOINTS`) panicking
//! inside a live daemon, protocol hardening against oversized and
//! non-UTF-8 request lines, and the `client verify --deadline-ms`
//! CLI path degrading to structured UNKNOWN verdicts.

use qborrow::core::{verify_circuit_fresh, InitialValue, VerifyOptions};
use qborrow::lang::{adder_source, elaborate, mcx_source, parse, QubitKind};
use qborrow::serve::{Client, Json};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// Fresh socket + state-dir paths for one test.
fn paths(tag: &str) -> (PathBuf, PathBuf) {
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let pid = std::process::id();
    (
        std::env::temp_dir().join(format!("qborrow-robust-{tag}-{pid}-{n}.sock")),
        std::env::temp_dir().join(format!("qborrow-robust-{tag}-{pid}-{n}.state")),
    )
}

/// Spawns a real daemon process (`qborrow serve`) on `socket`.
fn spawn_daemon(socket: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qborrow"));
    cmd.arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--quiet")
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("daemon process spawns")
}

/// Waits for the daemon to accept connections.
fn connect(socket: &Path) -> Client {
    for _ in 0..600 {
        if let Ok(client) = Client::connect(socket) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", socket.display());
}

fn shutdown(mut client: Client, mut child: Child) {
    let resp = client.shutdown().expect("shutdown round-trips");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    drop(client);
    let status = child.wait().expect("daemon process exits");
    assert!(status.success(), "clean daemon exit, got {status}");
}

/// Fresh-pipeline oracle: `(qubit, safe)` per borrow qubit of `source`.
fn fresh_verdicts(source: &str) -> Vec<(usize, bool)> {
    let program = elaborate(&parse(source).expect("parses")).expect("elaborates");
    let initial: Vec<InitialValue> = (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            _ => InitialValue::Free,
        })
        .collect();
    let report = verify_circuit_fresh(
        &program.circuit,
        &initial,
        &program.qubits_to_verify(),
        &VerifyOptions::default(),
    )
    .expect("fresh verification completes");
    report.verdicts.iter().map(|v| (v.qubit, v.safe)).collect()
}

/// Asserts a daemon verify response equals the fresh oracle.
fn assert_matches_fresh(response: &Json, source: &str, tag: &str) {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{tag}: {response}"
    );
    let expected = fresh_verdicts(source);
    let verdicts = response
        .get("verdicts")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{tag}: no verdicts in {response}"));
    assert_eq!(verdicts.len(), expected.len(), "{tag}: verdict count");
    for (v, (qubit, safe)) in verdicts.iter().zip(&expected) {
        assert_eq!(
            v.get("qubit").and_then(Json::as_usize),
            Some(*qubit),
            "{tag}"
        );
        assert_eq!(
            v.get("safe").and_then(Json::as_bool),
            Some(*safe),
            "{tag}: qubit {qubit}"
        );
    }
}

/// A Gidney MCX whose ancilla leaks into a control (unsafe on `anc`).
fn sabotaged_mcx(m: usize) -> String {
    let good = mcx_source(m);
    let moved = good.replace("release anc;\n", "");
    format!("{moved}\nCNOT[anc, q[1]];\nrelease anc;\n")
}

/// SIGKILL a snapshotting daemon mid-session; a restarted daemon on the
/// same `--state-dir` must come back with every program loaded, the
/// learned auto winner intact, and verdicts identical to the oracle.
#[test]
fn kill_nine_then_restart_recovers_programs_backends_and_winners() {
    let (socket, state_dir) = paths("kill9");
    let _ = std::fs::remove_dir_all(&state_dir);
    let state = state_dir.to_str().unwrap().to_string();
    let adder = adder_source(8);
    let mcx = sabotaged_mcx(4);

    let mut child = spawn_daemon(&socket, &["--state-dir", &state], &[]);
    let (winners_before, auto_pref) = {
        let mut client = connect(&socket);
        let load = client.load("adder", &adder).unwrap();
        assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true), "{load}");
        let load = client.load_with("mcx", &mcx, Some("auto")).unwrap();
        assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true), "{load}");
        let verify = client.verify("adder", None).unwrap();
        assert_matches_fresh(&verify, &adder, "adder before kill");
        let verify = client.verify("mcx", None).unwrap();
        assert_matches_fresh(&verify, &mcx, "mcx before kill");
        let auto_pref = verify
            .get("auto_preference")
            .and_then(Json::as_str)
            .map(String::from);
        let status = client.status().unwrap();
        assert_eq!(
            status.get("state_persisted").and_then(Json::as_bool),
            Some(true)
        );
        (
            status
                .get("auto_winners_remembered")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            auto_pref,
        )
    };
    // The snapshot writer is asynchronous (dirty flag + dedicated
    // thread); wait until the on-disk state actually contains what the
    // kill is supposed to preserve. Reads are sound because the writer
    // replaces the file atomically via rename.
    let state_file = state_dir.join("state.json");
    let flushed = |contents: &str| {
        contents.contains("\"mcx\"")
            && contents.contains("\"adder\"")
            && (winners_before == 0 || contents.contains("\"auto_winners\":[["))
    };
    for _ in 0..600 {
        if std::fs::read_to_string(&state_file).is_ok_and(|contents| flushed(&contents)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    child.kill().expect("SIGKILL delivered");
    child.wait().expect("killed process reaped");

    // Same socket, same state dir: the restart must reclaim the stale
    // socket file and replay the snapshot.
    let child = spawn_daemon(&socket, &["--state-dir", &state], &[]);
    let mut client = connect(&socket);
    let status = client.status().unwrap();
    let programs = status.get("programs").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = programs
        .iter()
        .filter_map(|p| p.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["adder", "mcx"], "all programs restored: {status}");
    let mcx_entry = &programs[1];
    assert_eq!(
        mcx_entry.get("backend").and_then(Json::as_str),
        Some("auto"),
        "per-program backend survives the crash"
    );
    assert_eq!(
        status.get("auto_winners_remembered").and_then(Json::as_i64),
        Some(winners_before),
        "learned auto winners survive the crash"
    );
    if auto_pref.as_deref().is_some_and(|p| p != "undecided") {
        assert!(winners_before > 0, "a decided preference was remembered");
    }

    // The restored sessions re-verify to the exact pre-crash verdicts.
    let verify = client.verify("adder", None).unwrap();
    assert_matches_fresh(&verify, &adder, "adder after restart");
    let verify = client.verify("mcx", None).unwrap();
    assert_matches_fresh(&verify, &mcx, "mcx after restart");

    shutdown(client, child);
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// `QB_FAILPOINTS=spurious_cancel=panic:1` on a real daemon process: the
/// first bounded verify panics inside the session, the daemon answers
/// with a structured `internal_error`, quarantines and rebuilds only
/// that session, and every later request is answered correctly.
#[test]
fn env_armed_failpoint_quarantines_only_the_poisoned_session() {
    let (socket, _state) = paths("failpoint");
    let adder = adder_source(8);
    let mcx = mcx_source(4);
    let child = spawn_daemon(
        &socket,
        &[],
        &[("QB_FAILPOINTS", "spurious_cancel=panic:1")],
    );
    let mut client = connect(&socket);
    client.load("adder", &adder).unwrap();
    client.load("mcx", &mcx).unwrap();

    // A bounded verify installs a cancellation token, which is what the
    // `spurious_cancel` failpoint keys on — armed as `panic`, it unwinds
    // out of the session mid-request.
    let poisoned = client
        .verify_with_deadline("adder", None, Some(60_000))
        .unwrap();
    assert_eq!(
        poisoned.get("ok").and_then(Json::as_bool),
        Some(false),
        "{poisoned}"
    );
    assert_eq!(
        poisoned.get("code").and_then(Json::as_str),
        Some("internal_error")
    );
    assert_eq!(
        poisoned.get("quarantined").and_then(Json::as_str),
        Some("adder")
    );
    assert_eq!(poisoned.get("rebuilt").and_then(Json::as_bool), Some(true));

    // The failpoint self-disarmed after one hit: the rebuilt session
    // verifies correctly, and the sibling session was never touched.
    let verify = client
        .verify_with_deadline("adder", None, Some(60_000))
        .unwrap();
    assert_matches_fresh(&verify, &adder, "rebuilt session");
    let verify = client.verify("mcx", None).unwrap();
    assert_matches_fresh(&verify, &mcx, "untouched sibling session");
    let status = client.status().unwrap();
    assert_eq!(status.get("quarantines").and_then(Json::as_i64), Some(1));

    shutdown(client, child);
}

/// Oversized and non-UTF-8 request lines get machine-readable error
/// codes and the connection survives both.
#[test]
fn hostile_request_lines_get_coded_errors_without_dropping_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let (socket, _state) = paths("hostile");
    let child = spawn_daemon(&socket, &[], &[]);
    drop(connect(&socket)); // wait for startup, then free the slot

    let stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut read_response = |tag: &str| -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect(tag);
        Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("{tag}: {e}"))
    };

    // 17 MiB of garbage on one line: past the 16 MiB request cap.
    let big = vec![b'a'; 17 << 20];
    writer.write_all(&big).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let resp = read_response("oversized line answered");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(resp.get("code").and_then(Json::as_str), Some("oversized"));

    // Same connection still works.
    writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
    writer.flush().unwrap();
    let resp = read_response("status after oversized");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    // Invalid UTF-8 bytes on one line.
    writer.write_all(b"{\"cmd\":\xff\xfe}\n").unwrap();
    writer.flush().unwrap();
    let resp = read_response("invalid utf8 answered");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some("invalid_utf8")
    );

    // And the connection still works after that too.
    writer.write_all(b"{\"cmd\":\"status\"}\n").unwrap();
    writer.flush().unwrap();
    let resp = read_response("status after invalid utf8");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    drop(writer);
    drop(reader);

    shutdown(connect(&socket), child);
}

/// The `client verify --deadline-ms` CLI path: an expired budget prints
/// structured UNKNOWN verdicts and fails the exit code; re-running
/// without the flag on the same warm daemon decides everything.
#[test]
fn cli_deadline_flag_degrades_to_unknown_and_unbounded_rerun_decides() {
    let (socket, _state) = paths("cli");
    let child = spawn_daemon(&socket, &[], &[]);
    drop(connect(&socket)); // wait for startup, then free the slot
    let source_path = std::env::temp_dir().join(format!(
        "qborrow-robust-cli-{}-{}.qbr",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::write(&source_path, adder_source(64)).unwrap();
    let client_cmd = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_qborrow"))
            .arg("client")
            .arg("verify")
            .arg(&source_path)
            .arg("--socket")
            .arg(&socket)
            .arg("--name")
            .arg("big")
            .args(extra)
            .output()
            .expect("client runs")
    };

    // A 1 ms budget cannot decide 63 qubits: UNKNOWNs, non-zero exit.
    let bounded = client_cmd(&["--deadline-ms", "1"]);
    let stdout = String::from_utf8_lossy(&bounded.stdout);
    assert!(
        !bounded.status.success(),
        "unknowns fail the exit code: {stdout}"
    );
    assert!(
        stdout.contains("UNKNOWN ("),
        "structured unknown verdicts rendered: {stdout}"
    );
    assert!(
        stdout.contains("unknown: deadline expired"),
        "summary names the degradation: {stdout}"
    );

    // Unbounded re-run on the same warm daemon decides every qubit.
    let full = client_cmd(&[]);
    let stdout = String::from_utf8_lossy(&full.stdout);
    assert!(full.status.success(), "adder-64 is all-safe: {stdout}");
    assert!(!stdout.contains("UNKNOWN"), "everything decided: {stdout}");
    assert!(stdout.contains("(warm session re-used)"), "{stdout}");

    let _ = std::fs::remove_file(&source_path);
    shutdown(connect(&socket), child);
}
