//! CLI-level tests of the `qborrow` binary: backend selection flags and
//! their failure modes (exit code 2 + a list of valid backends for a
//! typo, per the documented exit-code contract).

use std::process::Command;

fn qborrow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qborrow"))
}

fn fixture(name: &str) -> String {
    format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn unknown_backend_exits_2_and_lists_valid_backends() {
    let out = qborrow()
        .args(["verify", &fixture("cccnot.qbr"), "--backend", "cvc5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "bad usage exits 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown backend \"cvc5\""),
        "names the offender: {stderr}"
    );
    assert!(
        stderr.contains("sat, anf, bdd, auto"),
        "lists every valid backend: {stderr}"
    );
}

#[test]
fn missing_backend_value_exits_2() {
    let out = qborrow()
        .args(["verify", &fixture("cccnot.qbr"), "--backend"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sat, anf, bdd, auto"), "{stderr}");
}

#[test]
fn every_backend_verifies_the_safe_fixture() {
    for backend in ["sat", "anf", "bdd", "auto"] {
        let out = qborrow()
            .args(["verify", &fixture("cccnot.qbr"), "--backend", backend])
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "backend {backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("SAFE"), "backend {backend}: {stdout}");
    }
}

#[test]
fn unsafe_fixture_exits_1_under_bdd_with_witnessed_violation() {
    let out = qborrow()
        .args(["verify", &fixture("unsafe_copy.qbr"), "--backend", "bdd"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "unsafe program exits 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNSAFE"), "{stdout}");
    assert!(
        stdout.contains("witness"),
        "the canonical BDD produces a concrete witness: {stdout}"
    );
}

#[test]
fn client_rejects_unknown_backend_before_connecting() {
    // No daemon is running on this socket; the typo must fail fast with
    // exit 2 (local validation) rather than a connection error.
    let out = qborrow()
        .args([
            "client",
            "verify",
            &fixture("cccnot.qbr"),
            "--socket",
            "/tmp/qborrow-cli-test-no-daemon.sock",
            "--backend",
            "zdd",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sat, anf, bdd, auto"), "{stderr}");
}
