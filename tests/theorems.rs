//! Integration tests validating the paper's theorems on small systems:
//! the equivalent characterisations of safe uncomputation (Thms. 5.3,
//! 5.4, 5.5, 6.1, 6.2) agree with each other and with the symbolic
//! verifier.

use qborrow::circuit::{Circuit, Gate};
use qborrow::core::exact::{
    channel_preserves_bell_entanglement, circuit_safely_uncomputes,
    classical_circuit_safely_uncomputes, denotation_safely_uncomputes, operation_safely_uncomputes,
    program_is_safe, unitary_safely_uncomputes,
};
use qborrow::core::{verify_circuit, InitialValue, VerifyOptions};
use qborrow::lang::{denote, CoreGate, CoreStmt, QubitRef, SemanticsOptions};
use qborrow::sim::{unitary_of, Channel, SuperOp};

fn cq(q: usize) -> QubitRef {
    QubitRef::Concrete(q)
}
fn ph(name: &str) -> QubitRef {
    QubitRef::Placeholder(name.into())
}

/// A deterministic enumeration of classical 4-qubit circuits for the
/// cross-validation sweeps.
fn circuit_family() -> Vec<Circuit> {
    let mut out = Vec::new();
    let seeds: Vec<Vec<Gate>> = vec![
        vec![],
        vec![Gate::X(0)],
        vec![Gate::Cnot { c: 0, t: 1 }],
        vec![Gate::Cnot { c: 0, t: 1 }, Gate::Cnot { c: 0, t: 1 }],
        vec![Gate::Toffoli { c1: 0, c2: 1, t: 2 }],
        vec![
            Gate::Toffoli { c1: 0, c2: 1, t: 2 },
            Gate::Toffoli { c1: 2, c2: 3, t: 1 },
            Gate::Toffoli { c1: 0, c2: 1, t: 2 },
        ],
        vec![
            Gate::Toffoli { c1: 0, c2: 1, t: 2 },
            Gate::Toffoli { c1: 2, c2: 3, t: 1 },
            Gate::Toffoli { c1: 0, c2: 1, t: 2 },
            Gate::Toffoli { c1: 2, c2: 3, t: 1 },
        ],
        vec![Gate::Swap(0, 3), Gate::Swap(0, 3)],
        vec![Gate::X(2), Gate::Cnot { c: 2, t: 0 }, Gate::X(2)],
        vec![
            Gate::Cnot { c: 1, t: 0 },
            Gate::X(1),
            Gate::Cnot { c: 1, t: 0 },
            Gate::X(1),
        ],
    ];
    for gates in seeds {
        let mut c = Circuit::new(4);
        for g in gates {
            c.push(g);
        }
        out.push(c);
    }
    out
}

#[test]
fn theorem_6_2_symbolic_equals_definition_3_1() {
    // Thm. 6.2/6.4: the two-formula criterion coincides with the unitary
    // factorisation for classical circuits.
    let initial = vec![InitialValue::Free; 4];
    for circuit in circuit_family() {
        for q in 0..4 {
            let exact = circuit_safely_uncomputes(&circuit, q, 1e-9);
            let bit = classical_circuit_safely_uncomputes(&circuit, q).unwrap();
            let symbolic = verify_circuit(&circuit, &initial, &[q], &VerifyOptions::default())
                .unwrap()
                .all_safe();
            assert_eq!(exact, bit, "unitary vs permutation, qubit {q}");
            assert_eq!(exact, symbolic, "exact vs symbolic, qubit {q}");
        }
    }
}

#[test]
fn theorem_6_1_basis_check_equals_definition_5_1() {
    // The finite-basis restoration test (Thm. 6.1 item 2) and the
    // Bell-state test (item 3) agree with the unitary factorisation, for
    // quantum (non-classical) circuits too.
    let mut circuits = circuit_family();
    // Add non-classical members.
    let mut c = Circuit::new(4);
    c.h(0).cnot(0, 1).cnot(0, 1).h(0);
    circuits.push(c); // identity overall
    let mut c = Circuit::new(4);
    c.z(2);
    circuits.push(c); // phase on qubit 2: unsafe for 2, safe elsewhere
    let mut c = Circuit::new(4);
    c.h(3).cz(3, 0).h(3);
    circuits.push(c); // CNOT(0→3) in disguise

    for circuit in circuits {
        let u = unitary_of(&circuit);
        let channel = Channel::from_circuit(&circuit);
        let op = SuperOp::from_channel(&channel);
        for q in 0..4 {
            let by_unitary = unitary_safely_uncomputes(&u, 4, q, 1e-9);
            let by_basis = operation_safely_uncomputes(&op, q, 1e-8);
            let by_bell = channel_preserves_bell_entanglement(&channel, q, 1e-8);
            assert_eq!(by_unitary, by_basis, "Thm 6.1(2), qubit {q}");
            assert_eq!(by_unitary, by_bell, "Thm 6.1(3), qubit {q}");
        }
    }
}

#[test]
fn theorem_5_5_safety_iff_deterministic() {
    let opts = SemanticsOptions::default();

    // Safe body (identity on the placeholder): singleton denotation, and
    // every operation in it safely uncomputes every idle qubit.
    let safe = CoreStmt::Borrow {
        placeholder: "a".into(),
        body: Box::new(CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a"))),
            CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a"))),
        ])),
    };
    let d = denote(&safe, 4, &opts).unwrap();
    assert!(program_is_safe(&d));
    for q in 2..4 {
        assert!(denotation_safely_uncomputes(&d, q, 1e-8), "qubit {q}");
    }

    // Unsafe body: |[S]| > 1 with ≥ 2 candidates.
    let unsafe_prog = CoreStmt::Borrow {
        placeholder: "a".into(),
        body: Box::new(CoreStmt::Gate(CoreGate::Cnot(ph("a"), cq(0)))),
    };
    let d = denote(&unsafe_prog, 3, &opts).unwrap();
    assert!(!program_is_safe(&d));
    assert!(!denotation_safely_uncomputes(&d, 1, 1e-8));
}

#[test]
fn example_5_2_per_qubit_safety() {
    // S ≡ X[q]; borrow a; X[q]; X[a]; release a — the borrow is unsafe,
    // yet q (qubit 0) is safely uncomputed by S (Example 5.2).
    let opts = SemanticsOptions::default();
    let s = CoreStmt::Seq(vec![
        CoreStmt::Gate(CoreGate::X(cq(0))),
        CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Seq(vec![
                CoreStmt::Gate(CoreGate::X(cq(0))),
                CoreStmt::Gate(CoreGate::X(ph("a"))),
            ])),
        },
    ]);
    let d = denote(&s, 3, &opts).unwrap();
    // The borrow is unsafe: two instantiations (qubits 1 and 2).
    assert_eq!(d.operations.len(), 2);
    assert!(!program_is_safe(&d));
    // But every execution acts as the identity on q = qubit 0.
    assert!(denotation_safely_uncomputes(&d, 0, 1e-8));
    // …and not on the borrowed candidates.
    assert!(!denotation_safely_uncomputes(&d, 1, 1e-8));
}

#[test]
fn measurement_branching_breaks_safety_detectably() {
    // if M[a] then X[q] else skip — reading the dirty qubit through a
    // measurement guard leaks it even though its value is "unchanged".
    let opts = SemanticsOptions::default();
    let s = CoreStmt::If {
        qubit: cq(0),
        then_branch: Box::new(CoreStmt::Gate(CoreGate::X(cq(1)))),
        else_branch: Box::new(CoreStmt::Skip),
    };
    let d = denote(&s, 2, &opts).unwrap();
    assert_eq!(d.operations.len(), 1);
    // The measurement destroys superpositions of qubit 0.
    assert!(!denotation_safely_uncomputes(&d, 0, 1e-8));
    // A measurement of a qubit that controls nothing ... still unsafe for
    // that qubit (it decoheres), but qubit 1 of `skip` branches is fine:
    assert!(!denotation_safely_uncomputes(&d, 1, 1e-8));
    let trivial = CoreStmt::If {
        qubit: cq(0),
        then_branch: Box::new(CoreStmt::Skip),
        else_branch: Box::new(CoreStmt::Skip),
    };
    let d = denote(&trivial, 2, &opts).unwrap();
    // Measuring and doing nothing is invisible for the *other* qubit…
    assert!(denotation_safely_uncomputes(&d, 1, 1e-8));
    // …but still dephases the measured one: not safe.
    assert!(!denotation_safely_uncomputes(&d, 0, 1e-8));
}

#[test]
fn initialisation_is_never_safe_for_the_reset_qubit() {
    let opts = SemanticsOptions::default();
    let s = CoreStmt::Init(cq(1));
    let d = denote(&s, 3, &opts).unwrap();
    assert!(!denotation_safely_uncomputes(&d, 1, 1e-8));
    assert!(denotation_safely_uncomputes(&d, 0, 1e-8));
    assert!(denotation_safely_uncomputes(&d, 2, 1e-8));
}
