//! # qb-bdd
//!
//! Reduced ordered binary decision diagrams (ROBDDs), the third decision
//! backend of the safe-uncomputation verifier.
//!
//! BDDs are canonical for a fixed variable order, so checking the paper's
//! conditions becomes structural:
//!
//! * condition (6.1) — `b_q ∧ ¬q` unsatisfiable ⟺ its BDD is the `0` node;
//! * condition (6.2) — every other qubit's final formula is independent of
//!   the dirty qubit `q` ⟺ `q` does not occur in that formula's BDD
//!   support (equivalently the two cofactors coincide).
//!
//! The verifier uses circuit qubit indices directly as the BDD variable
//! order, which interleaves carry and data bits of the benchmark adders and
//! keeps their diagrams polynomial.

use qb_formula::{Arena, Node, NodeId as FormulaId, Var};
use std::collections::HashMap;

/// Identifier of a BDD node inside a [`Bdd`] manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddId(u32);

impl BddId {
    /// The constant-false terminal.
    pub const FALSE: BddId = BddId(0);
    /// The constant-true terminal.
    pub const TRUE: BddId = BddId(1);

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BddNode {
    var: Var,
    lo: BddId,
    hi: BddId,
}

/// Binary connective selector for [`Bdd::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

impl BddOp {
    #[inline]
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BddOp::And => a & b,
            BddOp::Or => a | b,
            BddOp::Xor => a ^ b,
        }
    }
}

/// A shared-node BDD manager.
///
/// Nodes are hash-consed, so semantic equality of functions is pointer
/// equality of [`BddId`]s.
///
/// # Examples
///
/// ```
/// use qb_bdd::{Bdd, BddOp};
/// let mut m = Bdd::new();
/// let x = m.var(0);
/// let y = m.var(1);
/// let a = m.apply(BddOp::Xor, x, y);
/// let b = m.apply(BddOp::Xor, y, x);
/// assert_eq!(a, b); // canonical
/// let back = m.apply(BddOp::Xor, a, y);
/// assert_eq!(back, x); // x ⊕ y ⊕ y = x
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<BddNode, BddId>,
    apply_cache: HashMap<(BddOp, BddId, BddId), BddId>,
    not_cache: HashMap<BddId, BddId>,
}

impl Bdd {
    /// Creates a manager containing only the terminals.
    pub fn new() -> Self {
        let mut m = Bdd {
            nodes: Vec::new(),
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        };
        // Terminal ids 0/1 are encoded implicitly; reserve slots so
        // internal node ids start at 2.
        m.nodes.push(BddNode {
            var: Var::MAX,
            lo: BddId::FALSE,
            hi: BddId::FALSE,
        });
        m.nodes.push(BddNode {
            var: Var::MAX,
            lo: BddId::TRUE,
            hi: BddId::TRUE,
        });
        m
    }

    /// Total number of nodes ever created (including terminals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when only terminals exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The terminal for `b`.
    pub fn constant(&self, b: bool) -> BddId {
        if b {
            BddId::TRUE
        } else {
            BddId::FALSE
        }
    }

    fn mk(&mut self, var: Var, lo: BddId, hi: BddId) -> BddId {
        if lo == hi {
            return lo;
        }
        let node = BddNode { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = BddId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    #[inline]
    fn var_of(&self, id: BddId) -> Var {
        if id.is_terminal() {
            Var::MAX
        } else {
            self.nodes[id.index()].var
        }
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: Var) -> BddId {
        self.mk(v, BddId::FALSE, BddId::TRUE)
    }

    /// Negation.
    pub fn not(&mut self, x: BddId) -> BddId {
        if x == BddId::FALSE {
            return BddId::TRUE;
        }
        if x == BddId::TRUE {
            return BddId::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&x) {
            return r;
        }
        let BddNode { var, lo, hi } = self.nodes[x.index()];
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(var, nlo, nhi);
        self.not_cache.insert(x, r);
        r
    }

    /// Shannon-expansion apply of a binary connective.
    pub fn apply(&mut self, op: BddOp, a: BddId, b: BddId) -> BddId {
        if a.is_terminal() && b.is_terminal() {
            return self.constant(op.eval(a == BddId::TRUE, b == BddId::TRUE));
        }
        // Exploit simple identities for speed.
        match (op, a, b) {
            (BddOp::And, x, y) if x == y => return x,
            (BddOp::And, BddId::FALSE, _) | (BddOp::And, _, BddId::FALSE) => return BddId::FALSE,
            (BddOp::And, BddId::TRUE, y) => return y,
            (BddOp::And, x, BddId::TRUE) => return x,
            (BddOp::Or, x, y) if x == y => return x,
            (BddOp::Or, BddId::TRUE, _) | (BddOp::Or, _, BddId::TRUE) => return BddId::TRUE,
            (BddOp::Or, BddId::FALSE, y) => return y,
            (BddOp::Or, x, BddId::FALSE) => return x,
            (BddOp::Xor, x, y) if x == y => return BddId::FALSE,
            (BddOp::Xor, BddId::FALSE, y) => return y,
            (BddOp::Xor, x, BddId::FALSE) => return x,
            (BddOp::Xor, BddId::TRUE, y) => return self.not(y),
            (BddOp::Xor, x, BddId::TRUE) => return self.not(x),
            _ => {}
        }
        // Normalise commutative operands for better cache hits.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.apply_cache.get(&(op, a, b)) {
            return r;
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let top = va.min(vb);
        let (alo, ahi) = if va == top {
            let n = self.nodes[a.index()];
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (blo, bhi) = if vb == top {
            let n = self.nodes[b.index()];
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(top, lo, hi);
        self.apply_cache.insert((op, a, b), r);
        r
    }

    /// Substitutes a constant for `v` (restrict).
    pub fn cofactor(&mut self, x: BddId, v: Var, val: bool) -> BddId {
        let mut cache: HashMap<BddId, BddId> = HashMap::new();
        self.cofactor_rec(x, v, val, &mut cache)
    }

    fn cofactor_rec(
        &mut self,
        x: BddId,
        v: Var,
        val: bool,
        cache: &mut HashMap<BddId, BddId>,
    ) -> BddId {
        if x.is_terminal() {
            return x;
        }
        let node = self.nodes[x.index()];
        if node.var > v {
            // Ordered: v cannot appear below.
            return x;
        }
        if let Some(&r) = cache.get(&x) {
            return r;
        }
        let r = if node.var == v {
            if val {
                node.hi
            } else {
                node.lo
            }
        } else {
            let lo = self.cofactor_rec(node.lo, v, val, cache);
            let hi = self.cofactor_rec(node.hi, v, val, cache);
            self.mk(node.var, lo, hi)
        };
        cache.insert(x, r);
        r
    }

    /// Returns `true` if the function depends on `v` (i.e. `v` labels a
    /// node reachable from `x`).
    pub fn depends_on(&self, x: BddId, v: Var) -> bool {
        let mut stack = vec![x];
        let mut seen: HashMap<BddId, ()> = HashMap::new();
        while let Some(id) = stack.pop() {
            if id.is_terminal() || seen.insert(id, ()).is_some() {
                continue;
            }
            let node = self.nodes[id.index()];
            if node.var == v {
                return true;
            }
            if node.var < v {
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        false
    }

    /// The sorted support (set of variables the function depends on).
    pub fn support(&self, x: BddId) -> Vec<Var> {
        let mut vars = Vec::new();
        let mut stack = vec![x];
        let mut seen: HashMap<BddId, ()> = HashMap::new();
        while let Some(id) = stack.pop() {
            if id.is_terminal() || seen.insert(id, ()).is_some() {
                continue;
            }
            let node = self.nodes[id.index()];
            vars.push(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Returns a satisfying partial assignment (pairs of variable and
    /// value along one path to the `1` terminal), or `None` when the
    /// function is constant false. Variables not mentioned may take any
    /// value.
    pub fn any_sat(&self, x: BddId) -> Option<Vec<(Var, bool)>> {
        if x == BddId::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = x;
        while !cur.is_terminal() {
            let node = self.nodes[cur.index()];
            // Prefer the branch that can reach TRUE; lo first for
            // determinism.
            if node.lo != BddId::FALSE {
                path.push((node.var, false));
                cur = node.lo;
            } else {
                path.push((node.var, true));
                cur = node.hi;
            }
        }
        debug_assert_eq!(cur, BddId::TRUE);
        Some(path)
    }

    /// Evaluates the function under `env` (indexed by variable).
    pub fn eval(&self, x: BddId, env: &[bool]) -> bool {
        let mut cur = x;
        while !cur.is_terminal() {
            let node = self.nodes[cur.index()];
            cur = if env[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
        cur == BddId::TRUE
    }

    /// Number of nodes reachable from `x` (a size measure for reporting).
    pub fn size(&self, x: BddId) -> usize {
        let mut count = 0;
        let mut stack = vec![x];
        let mut seen: HashMap<BddId, ()> = HashMap::new();
        while let Some(id) = stack.pop() {
            if seen.insert(id, ()).is_some() {
                continue;
            }
            count += 1;
            if !id.is_terminal() {
                let node = self.nodes[id.index()];
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        count
    }

    /// Builds BDDs for formula-arena `roots` bottom-up with full sharing.
    ///
    /// Qubit variable indices become BDD variables directly, so the circuit
    /// order is the BDD order.
    pub fn from_arena(&mut self, arena: &Arena, roots: &[FormulaId]) -> Vec<BddId> {
        let reach = arena.reachable(roots);
        let mut table: Vec<BddId> = vec![BddId::FALSE; arena.len()];
        for i in 0..arena.len() {
            if !reach[i] {
                continue;
            }
            let id = arena.id_at(i);
            let r = match arena.node(id) {
                Node::Const(b) => self.constant(*b),
                Node::Var(v) => self.var(*v),
                Node::And(children) => {
                    let mut acc = BddId::TRUE;
                    for c in children.iter() {
                        acc = self.apply(BddOp::And, acc, table[c.index()]);
                    }
                    acc
                }
                Node::Xor(children, parity) => {
                    let mut acc = self.constant(*parity);
                    for c in children.iter() {
                        acc = self.apply(BddOp::Xor, acc, table[c.index()]);
                    }
                    acc
                }
            };
            table[i] = r;
        }
        roots.iter().map(|r| table[r.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_formula::Simplify;

    #[test]
    fn canonicity_of_terminals() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let nx = m.not(x);
        assert_eq!(m.apply(BddOp::And, x, nx), BddId::FALSE);
        assert_eq!(m.apply(BddOp::Or, x, nx), BddId::TRUE);
        assert_eq!(m.apply(BddOp::Xor, x, x), BddId::FALSE);
    }

    #[test]
    fn shannon_ordering_respected() {
        let mut m = Bdd::new();
        let x0 = m.var(0);
        let x1 = m.var(1);
        let both = m.apply(BddOp::And, x1, x0);
        // Root must be labelled with the smaller variable.
        assert!(!both.is_terminal());
        assert_eq!(m.support(both), vec![0, 1]);
        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(both, &[e0, e1]), e0 & e1);
        }
    }

    #[test]
    fn cofactor_eliminates_variable() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.apply(BddOp::Xor, x, y);
        let f0 = m.cofactor(f, 0, false);
        let f1 = m.cofactor(f, 0, true);
        assert_eq!(f0, y);
        assert_eq!(f1, m.not(y));
        assert!(!m.depends_on(f0, 0));
    }

    #[test]
    fn depends_on_matches_cofactor_equality() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.apply(BddOp::And, x, y);
        let f = m.apply(BddOp::Or, xy, z);
        for v in 0..4u32 {
            let c0 = m.cofactor(f, v, false);
            let c1 = m.cofactor(f, v, true);
            assert_eq!(c0 != c1, m.depends_on(f, v), "var {v}");
        }
    }

    #[test]
    fn xor_cancellation_through_apply() {
        let mut m = Bdd::new();
        let x = m.var(3);
        let y = m.var(5);
        let a = m.apply(BddOp::Xor, x, y);
        let b = m.apply(BddOp::Xor, a, y);
        assert_eq!(b, x);
    }

    #[test]
    fn from_arena_matches_eval() {
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut f = Arena::new(mode);
            let x = f.var(0);
            let y = f.var(1);
            let z = f.var(2);
            let xy = f.and2(x, y);
            let t = f.xor2(xy, z);
            let root = f.not(t);
            let other = f.or2(x, z);
            let mut m = Bdd::new();
            let bdds = m.from_arena(&f, &[root, other]);
            for bits in 0..8u32 {
                let env = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                assert_eq!(m.eval(bdds[0], &env), f.eval(root, &env), "{mode:?}");
                assert_eq!(m.eval(bdds[1], &env), f.eval(other, &env), "{mode:?}");
            }
        }
    }

    #[test]
    fn unsat_is_false_terminal() {
        let mut f = Arena::new(Simplify::Raw);
        let x = f.var(0);
        let nx = f.not(x);
        let contra = f.and2(x, nx);
        let mut m = Bdd::new();
        let b = m.from_arena(&f, &[contra])[0];
        assert_eq!(b, BddId::FALSE);
    }

    #[test]
    fn size_counts_reachable() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.apply(BddOp::And, x, y);
        // nodes: f-root(var0), var1 node, two terminals
        assert_eq!(m.size(f), 4);
    }
}
