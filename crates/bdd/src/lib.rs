//! # qb-bdd
//!
//! A session-grade reduced-ordered-BDD manager — the persistent BDD
//! backend of the safe-uncomputation verifier.
//!
//! BDDs are canonical for a fixed variable order, so checking the paper's
//! conditions becomes structural:
//!
//! * condition (6.1) — `b_q ∧ ¬q` unsatisfiable ⟺ its BDD is the `0`
//!   terminal (with complement edges: the complemented `1` edge);
//! * condition (6.2) — every other qubit's final formula is independent
//!   of the dirty qubit `q` ⟺ `q` does not occur in that formula's BDD
//!   support (equivalently the two cofactors coincide).
//!
//! The verifier uses circuit qubit indices directly as the BDD variable
//! order, which interleaves carry and data bits of the benchmark adders
//! and keeps their diagrams polynomial.
//!
//! Unlike the throwaway builder this crate used to be, [`BddManager`] is
//! built to live for a whole verification *session*:
//!
//! * **complement edges** — negation is an O(1) bit flip, `f` and `¬f`
//!   share every node, and there is a single terminal;
//! * a **bounded computed table** for `apply`/`restrict` results,
//!   evicted least-recently-used, so a long-lived manager's memoisation
//!   state cannot grow without bound;
//! * **external reference counts** plus **mark-sweep garbage
//!   collection** ([`BddManager::collect`]) with dense renumbering and a
//!   [`BddRemap`] for handle holders, mirroring
//!   `qb_formula::Arena::collect`;
//! * a **node budget** — every constructor fails with [`BddOverflow`]
//!   instead of blowing up, which is what lets an auto-portfolio backend
//!   try BDDs first and fall back to SAT;
//! * [`BddSession`] — a manager plus a memoised, LRU-bounded
//!   formula-arena→BDD translation cache keyed by `qb_formula::NodeId`,
//!   following `Arena::collect`'s [`NodeRemap`] so warm diagrams survive
//!   formula-graph GC.

use qb_formula::{Arena, Node, NodeId as FormulaId, NodeRemap, Var};
use qb_sat::CancelToken;
use std::collections::HashMap;

/// Error raised when a construction would exceed the manager's node
/// budget. Callers treat it as "backend inapplicable" (the auto
/// portfolio falls back to SAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddOverflow {
    /// The node budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BDD node count exceeded budget of {}", self.budget)
    }
}

impl std::error::Error for BddOverflow {}

/// Error raised by [`BddSession::build`]: either the node budget
/// overflowed, or an installed [`CancelToken`] interrupted the build
/// (deadline, budget or explicit cancel). Both roll the partially built
/// cone back, leaving the session reusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddBuildError {
    /// The manager's node budget was exceeded.
    Overflow(BddOverflow),
    /// The build was interrupted by the installed [`CancelToken`]
    /// before completing; no verdict is implied.
    Interrupted,
}

impl std::fmt::Display for BddBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BddBuildError::Overflow(o) => o.fmt(f),
            BddBuildError::Interrupted => write!(f, "BDD build interrupted by cancellation"),
        }
    }
}

impl std::error::Error for BddBuildError {}

impl From<BddOverflow> for BddBuildError {
    fn from(o: BddOverflow) -> Self {
        BddBuildError::Overflow(o)
    }
}

/// An edge to a BDD node, with a complement bit in the low bit.
///
/// With complement edges there is a single terminal node (index 0);
/// [`BddRef::TRUE`] is its regular edge and [`BddRef::FALSE`] its
/// complemented edge. Negation is [`BddRef::complement`] — an O(1) bit
/// flip that allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-true function (regular edge to the terminal).
    pub const TRUE: BddRef = BddRef(0);
    /// The constant-false function (complemented edge to the terminal).
    pub const FALSE: BddRef = BddRef(1);

    #[inline]
    fn new(index: u32, complement: bool) -> BddRef {
        BddRef(index << 1 | complement as u32)
    }

    /// The index of the node this edge points to.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge carries a complement.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Logical negation — flips the complement bit, allocating nothing.
    #[inline]
    #[must_use]
    pub fn complement(self) -> BddRef {
        BddRef(self.0 ^ 1)
    }

    /// This edge with the complement bit cleared.
    #[inline]
    fn regular(self) -> BddRef {
        BddRef(self.0 & !1)
    }

    /// Complements the edge when `c` is true.
    #[inline]
    fn complement_if(self, c: bool) -> BddRef {
        BddRef(self.0 ^ c as u32)
    }

    /// Returns `true` for the two terminal edges.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` for the constant-false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == BddRef::FALSE
    }

    /// Returns `true` for the constant-true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == BddRef::TRUE
    }
}

/// An interned decision node. The `hi` (then) edge is always regular —
/// the normalisation that makes complement-edge BDDs canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BddNode {
    var: Var,
    lo: BddRef,
    hi: BddRef,
}

/// Binary connective selector for [`BddManager::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

/// Computed-table operation tags (`restrict` reuses the table with the
/// variable/value packed into the second operand slot).
const OP_AND: u8 = 0;
const OP_XOR: u8 = 1;
const OP_RESTRICT0: u8 = 2;
const OP_RESTRICT1: u8 = 3;

/// A bounded, LRU-evicted memo table for `apply`/`restrict` results.
/// Keys hold raw edge words, so the table must be cleared (not remapped)
/// across [`BddManager::collect`].
#[derive(Debug, Clone)]
struct ComputedTable {
    map: HashMap<(u8, u32, u32), CacheSlot>,
    clock: u64,
    cap: usize,
    evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    result: BddRef,
    last_used: u64,
}

impl ComputedTable {
    fn new(cap: usize) -> Self {
        ComputedTable {
            map: HashMap::new(),
            clock: 0,
            cap: cap.max(16),
            evictions: 0,
        }
    }

    fn get(&mut self, key: (u8, u32, u32)) -> Option<BddRef> {
        self.clock += 1;
        let slot = self.map.get_mut(&key)?;
        slot.last_used = self.clock;
        Some(slot.result)
    }

    fn insert(&mut self, key: (u8, u32, u32), result: BddRef) {
        self.clock += 1;
        self.map.insert(
            key,
            CacheSlot {
                result,
                last_used: self.clock,
            },
        );
        self.evictions +=
            qb_formula::lru_evict_batch(&mut self.map, self.cap, |s| s.last_used, |_, _| {});
    }

    fn clear(&mut self) {
        self.map.clear();
    }
}

/// The dense old→new edge mapping produced by [`BddManager::collect`].
#[derive(Debug, Clone)]
pub struct BddRemap {
    /// `map[old_index]` is the surviving node's new index.
    map: Vec<Option<u32>>,
    live: usize,
}

impl BddRemap {
    /// The new edge for `old`, preserving its complement bit, or `None`
    /// if the node was collected.
    #[inline]
    pub fn remap(&self, old: BddRef) -> Option<BddRef> {
        self.map
            .get(old.index())
            .copied()
            .flatten()
            .map(|idx| BddRef::new(idx, old.is_complemented()))
    }

    /// Number of nodes that survived collection.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of nodes the collection reclaimed.
    pub fn collected(&self) -> usize {
        self.map.len() - self.live
    }
}

/// A shared-node BDD manager with complement edges.
///
/// Nodes are hash-consed against a unique table, so semantic equality of
/// functions is equality of [`BddRef`]s (including the complement bit).
///
/// # Examples
///
/// ```
/// use qb_bdd::{BddManager, BddOp, BddRef};
/// let mut m = BddManager::new();
/// let x = m.var(0).unwrap();
/// let y = m.var(1).unwrap();
/// let a = m.apply(BddOp::Xor, x, y).unwrap();
/// let b = m.apply(BddOp::Xor, y, x).unwrap();
/// assert_eq!(a, b); // canonical
/// let back = m.apply(BddOp::Xor, a, y).unwrap();
/// assert_eq!(back, x); // x ⊕ y ⊕ y = x
/// assert_eq!(m.not(x), x.complement()); // negation is free
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<BddNode>,
    unique: HashMap<(Var, BddRef, BddRef), u32>,
    cache: ComputedTable,
    /// External reference counts by node index (GC roots).
    refs: Vec<u32>,
    node_budget: usize,
    collections: u64,
    nodes_collected: u64,
    applies: u64,
}

impl Default for BddManager {
    fn default() -> Self {
        BddManager::new()
    }
}

/// Default bound on memoised apply/restrict results.
const COMPUTED_TABLE_CAPACITY: usize = 1 << 16;

impl BddManager {
    /// Creates an unbudgeted manager containing only the terminal.
    pub fn new() -> Self {
        BddManager::with_budget(usize::MAX)
    }

    /// Creates a manager whose constructors fail with [`BddOverflow`]
    /// once `node_budget` nodes are resident.
    pub fn with_budget(node_budget: usize) -> Self {
        BddManager {
            // Index 0 is the terminal sentinel.
            nodes: vec![BddNode {
                var: Var::MAX,
                lo: BddRef::TRUE,
                hi: BddRef::TRUE,
            }],
            unique: HashMap::new(),
            cache: ComputedTable::new(COMPUTED_TABLE_CAPACITY),
            refs: vec![0],
            node_budget: node_budget.max(2),
            collections: 0,
            nodes_collected: 0,
            applies: 0,
        }
    }

    /// Resident node count (including the terminal and any garbage not
    /// yet collected).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when only the terminal exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The configured node budget.
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// Replaces the node budget (takes effect on the next construction).
    pub fn set_node_budget(&mut self, node_budget: usize) {
        self.node_budget = node_budget.max(2);
    }

    /// Bounds the computed table to `cap` memoised results.
    pub fn set_computed_table_capacity(&mut self, cap: usize) {
        self.cache.cap = cap.max(16);
    }

    /// Mark-sweep collections performed over the manager's lifetime.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Total nodes reclaimed across all collections.
    pub fn nodes_collected(&self) -> u64 {
        self.nodes_collected
    }

    /// Computed-table entries dropped by LRU eviction.
    pub fn computed_evictions(&self) -> u64 {
        self.cache.evictions
    }

    /// Apply steps (including recursive cofactor expansions) performed
    /// over the manager's lifetime.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// The terminal edge for `b`.
    pub fn constant(&self, b: bool) -> BddRef {
        if b {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// Interns `(var, lo, hi)`, normalising the complement of the `hi`
    /// edge onto the output edge.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] when a fresh node would exceed the budget.
    fn mk(&mut self, var: Var, lo: BddRef, hi: BddRef) -> Result<BddRef, BddOverflow> {
        if lo == hi {
            return Ok(lo);
        }
        // Canonical form: the hi (then) edge is never complemented.
        let (lo, hi, out) = if hi.is_complemented() {
            (lo.complement(), hi.complement(), true)
        } else {
            (lo, hi, false)
        };
        if let Some(&idx) = self.unique.get(&(var, lo, hi)) {
            return Ok(BddRef::new(idx, out));
        }
        if self.nodes.len() >= self.node_budget {
            return Err(BddOverflow {
                budget: self.node_budget,
            });
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(BddNode { var, lo, hi });
        self.refs.push(0);
        self.unique.insert((var, lo, hi), idx);
        Ok(BddRef::new(idx, out))
    }

    /// The single-variable function `v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] past the node budget.
    pub fn var(&mut self, v: Var) -> Result<BddRef, BddOverflow> {
        self.mk(v, BddRef::FALSE, BddRef::TRUE)
    }

    /// Negation — free with complement edges.
    pub fn not(&mut self, x: BddRef) -> BddRef {
        x.complement()
    }

    #[inline]
    fn var_of(&self, x: BddRef) -> Var {
        self.nodes[x.index()].var
    }

    /// The `top`-variable cofactors of `x` (identity when `x`'s root is
    /// below `top`), pushing the edge complement into the children.
    #[inline]
    fn cofactors(&self, x: BddRef, top: Var) -> (BddRef, BddRef) {
        let node = &self.nodes[x.index()];
        if x.is_terminal() || node.var != top {
            return (x, x);
        }
        let c = x.is_complemented();
        (node.lo.complement_if(c), node.hi.complement_if(c))
    }

    /// Shannon-expansion apply of a binary connective.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] past the node budget.
    pub fn apply(&mut self, op: BddOp, a: BddRef, b: BddRef) -> Result<BddRef, BddOverflow> {
        match op {
            BddOp::And => self.and(a, b),
            BddOp::Xor => self.xor(a, b),
            BddOp::Or => {
                // De Morgan through the free negation.
                let r = self.and(a.complement(), b.complement())?;
                Ok(r.complement())
            }
        }
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] past the node budget.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> Result<BddRef, BddOverflow> {
        self.applies += 1;
        if a.is_true() {
            return Ok(b);
        }
        if b.is_true() {
            return Ok(a);
        }
        if a.is_false() || b.is_false() {
            return Ok(BddRef::FALSE);
        }
        if a == b {
            return Ok(a);
        }
        if a == b.complement() {
            return Ok(BddRef::FALSE);
        }
        // Normalise commutative operands for better cache hits.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = (OP_AND, a.0, b.0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r);
        }
        let top = self.var_of(a).min(self.var_of(b));
        let (alo, ahi) = self.cofactors(a, top);
        let (blo, bhi) = self.cofactors(b, top);
        let lo = self.and(alo, blo)?;
        let hi = self.and(ahi, bhi)?;
        let r = self.mk(top, lo, hi)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] past the node budget.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> Result<BddRef, BddOverflow> {
        self.applies += 1;
        // XOR commutes with complement: strip both complements onto the
        // result parity, then memoise on the regular pair.
        let parity = a.is_complemented() ^ b.is_complemented();
        let (a, b) = (a.regular(), b.regular());
        if a == b {
            return Ok(BddRef::FALSE.complement_if(parity));
        }
        if a.is_terminal() {
            // Regular terminal = TRUE: 1 ⊕ b = ¬b.
            return Ok(b.complement().complement_if(parity));
        }
        if b.is_terminal() {
            return Ok(a.complement().complement_if(parity));
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = (OP_XOR, a.0, b.0);
        if let Some(r) = self.cache.get(key) {
            return Ok(r.complement_if(parity));
        }
        let top = self.var_of(a).min(self.var_of(b));
        let (alo, ahi) = self.cofactors(a, top);
        let (blo, bhi) = self.cofactors(b, top);
        let lo = self.xor(alo, blo)?;
        let hi = self.xor(ahi, bhi)?;
        let r = self.mk(top, lo, hi)?;
        self.cache.insert(key, r);
        Ok(r.complement_if(parity))
    }

    /// Substitutes a constant for `v` (restrict), memoised in the
    /// computed table.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] past the node budget.
    pub fn restrict(&mut self, x: BddRef, v: Var, val: bool) -> Result<BddRef, BddOverflow> {
        if x.is_terminal() {
            return Ok(x);
        }
        let node = self.nodes[x.index()];
        if node.var > v {
            // Ordered: v cannot appear below.
            return Ok(x);
        }
        let parity = x.is_complemented();
        if node.var == v {
            let child = if val { node.hi } else { node.lo };
            return Ok(child.complement_if(parity));
        }
        let op = if val { OP_RESTRICT1 } else { OP_RESTRICT0 };
        let key = (op, x.regular().0, v);
        if let Some(r) = self.cache.get(key) {
            return Ok(r.complement_if(parity));
        }
        let lo = self.restrict(node.lo, v, val)?;
        let hi = self.restrict(node.hi, v, val)?;
        let r = self.mk(node.var, lo, hi)?;
        self.cache.insert(key, r);
        Ok(r.complement_if(parity))
    }

    /// Returns `true` if the function depends on `v` (i.e. `v` labels a
    /// node reachable from `x`). Complement bits are irrelevant.
    pub fn depends_on(&self, x: BddRef, v: Var) -> bool {
        let mut stack = vec![x.index()];
        let mut seen: HashMap<usize, ()> = HashMap::new();
        while let Some(idx) = stack.pop() {
            if idx == 0 || seen.insert(idx, ()).is_some() {
                continue;
            }
            let node = &self.nodes[idx];
            if node.var == v {
                return true;
            }
            if node.var < v {
                stack.push(node.lo.index());
                stack.push(node.hi.index());
            }
        }
        false
    }

    /// The sorted support (set of variables the function depends on).
    pub fn support(&self, x: BddRef) -> Vec<Var> {
        let mut vars = Vec::new();
        let mut stack = vec![x.index()];
        let mut seen: HashMap<usize, ()> = HashMap::new();
        while let Some(idx) = stack.pop() {
            if idx == 0 || seen.insert(idx, ()).is_some() {
                continue;
            }
            let node = &self.nodes[idx];
            vars.push(node.var);
            stack.push(node.lo.index());
            stack.push(node.hi.index());
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// The constant value of a terminal edge.
    #[inline]
    fn terminal_value(x: BddRef) -> bool {
        debug_assert!(x.is_terminal());
        !x.is_complemented()
    }

    /// Returns a satisfying partial assignment (pairs of variable and
    /// value along one path to true), or `None` when the function is
    /// constant false. Variables not mentioned may take any value.
    pub fn any_sat(&self, x: BddRef) -> Option<Vec<(Var, bool)>> {
        if x.is_false() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = x;
        let mut want = true;
        while !cur.is_terminal() {
            // The regular node function must take `want` adjusted for
            // this edge's complement.
            let want_inner = want ^ cur.is_complemented();
            let node = &self.nodes[cur.index()];
            // A non-terminal child is non-constant (complement edges),
            // so it can realise either value; a terminal child must
            // already carry the wanted constant.
            if !node.lo.is_terminal() || Self::terminal_value(node.lo) == want_inner {
                path.push((node.var, false));
                cur = node.lo;
            } else {
                path.push((node.var, true));
                cur = node.hi;
            }
            want = want_inner;
        }
        debug_assert_eq!(Self::terminal_value(cur), want);
        Some(path)
    }

    /// Evaluates the function under `env` (indexed by variable).
    pub fn eval(&self, x: BddRef, env: &[bool]) -> bool {
        let mut parity = false;
        let mut cur = x;
        while !cur.is_terminal() {
            parity ^= cur.is_complemented();
            let node = &self.nodes[cur.index()];
            cur = if env[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
        Self::terminal_value(cur) ^ parity
    }

    /// Number of nodes reachable from `x` (a size measure for
    /// reporting; the terminal counts once, complement bits not at all).
    pub fn size(&self, x: BddRef) -> usize {
        let mut count = 0;
        let mut stack = vec![x.index()];
        let mut seen: HashMap<usize, ()> = HashMap::new();
        while let Some(idx) = stack.pop() {
            if seen.insert(idx, ()).is_some() {
                continue;
            }
            count += 1;
            if idx != 0 {
                let node = &self.nodes[idx];
                stack.push(node.lo.index());
                stack.push(node.hi.index());
            }
        }
        count
    }

    /// Takes an external reference on `x`'s node, protecting it (and its
    /// cone) across [`BddManager::collect`].
    pub fn ref_inc(&mut self, x: BddRef) {
        self.refs[x.index()] += 1;
    }

    /// Releases an external reference taken with [`BddManager::ref_inc`].
    pub fn ref_dec(&mut self, x: BddRef) {
        let r = &mut self.refs[x.index()];
        debug_assert!(*r > 0, "unbalanced ref_dec");
        *r = r.saturating_sub(1);
    }

    /// Number of nodes currently holding external references.
    pub fn referenced_nodes(&self) -> usize {
        self.refs.iter().filter(|&&r| r > 0).count()
    }

    /// Mark-sweep garbage collection: keeps the terminal and every node
    /// reachable from an externally referenced node, renumbers survivors
    /// densely (children keep smaller indices than parents), rebuilds
    /// the unique table and clears the computed table.
    ///
    /// Every [`BddRef`] issued before the call is invalidated; holders
    /// must translate through the returned [`BddRemap`].
    pub fn collect(&mut self) -> BddRemap {
        let n = self.nodes.len();
        let mut mark = vec![false; n];
        mark[0] = true;
        let mut stack: Vec<usize> = (1..n).filter(|&i| self.refs[i] > 0).collect();
        while let Some(idx) = stack.pop() {
            if mark[idx] {
                continue;
            }
            mark[idx] = true;
            let node = &self.nodes[idx];
            stack.push(node.lo.index());
            stack.push(node.hi.index());
        }
        let mut map: Vec<Option<u32>> = vec![None; n];
        let mut kept: Vec<BddNode> = Vec::new();
        let mut kept_refs: Vec<u32> = Vec::new();
        for i in 0..n {
            if !mark[i] {
                continue;
            }
            let node = self.nodes[i];
            let remap_edge = |e: BddRef, map: &[Option<u32>]| -> BddRef {
                BddRef::new(
                    map[e.index()].expect("child of a live node is live"),
                    e.is_complemented(),
                )
            };
            let remapped = if i == 0 {
                node
            } else {
                BddNode {
                    var: node.var,
                    lo: remap_edge(node.lo, &map),
                    hi: remap_edge(node.hi, &map),
                }
            };
            map[i] = Some(kept.len() as u32);
            kept.push(remapped);
            kept_refs.push(self.refs[i]);
        }
        self.unique = kept
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, node)| ((node.var, node.lo, node.hi), i as u32))
            .collect();
        let live = kept.len();
        self.nodes = kept;
        self.refs = kept_refs;
        self.cache.clear();
        self.collections += 1;
        self.nodes_collected += (n - live) as u64;
        BddRemap { map, live }
    }
}

/// A memoised arena-node→BDD translation entry.
#[derive(Debug, Clone, Copy)]
struct TransEntry {
    bdd: BddRef,
    last_used: u64,
}

/// Reuse and residency counters of a [`BddSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddSessionStats {
    /// Resident manager nodes (live + uncollected garbage).
    pub resident_nodes: usize,
    /// Memoised arena-node translations currently held.
    pub cached_translations: usize,
    /// Translation-cache hits (arena nodes never re-translated).
    pub translation_hits: u64,
    /// Translation-cache misses (nodes translated this session).
    pub translation_misses: u64,
    /// Translation entries dropped by LRU eviction or arena remap.
    pub translation_evictions: u64,
    /// Manager mark-sweep collections performed.
    pub collections: u64,
    /// Total manager nodes reclaimed across collections.
    pub nodes_collected: u64,
}

/// Default bound on memoised arena-node translations.
const TRANSLATION_CACHE_CAPACITY: usize = 1 << 15;

/// Manager node count below which session GC never runs.
const BDD_GC_MIN_NODES: usize = 1 << 12;

/// Watermark growth factor for session GC pacing (semispace-style).
const BDD_GC_GROWTH: usize = 2;

/// A persistent BDD manager bound to a formula arena: translations of
/// arena nodes are memoised by `NodeId` (hash-consing makes node
/// identity semantic identity, so a warm entry answers any later query
/// over the same structure — across targets, sweeps and edits — without
/// touching the apply machinery), reference-counted into the manager,
/// LRU-bounded, and remapped through `Arena::collect`'s [`NodeRemap`].
///
/// # Examples
///
/// ```
/// use qb_bdd::BddSession;
/// use qb_formula::{Arena, Simplify};
///
/// let mut f = Arena::new(Simplify::Raw);
/// let x = f.var(0);
/// let nx = f.not(x);
/// let contra = f.and2(x, nx);
/// let mut session = BddSession::new(usize::MAX);
/// let b = session.build(&f, &[contra]).unwrap()[0];
/// assert!(b.is_false()); // canonical: unsat is the false edge
/// // A second build over the same root is answered from the cache.
/// let again = session.build(&f, &[contra]).unwrap()[0];
/// assert_eq!(b, again);
/// assert!(session.stats().translation_hits > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BddSession {
    manager: BddManager,
    cache: HashMap<FormulaId, TransEntry>,
    clock: u64,
    cache_cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    gc_floor: usize,
    gc_watermark: usize,
    /// Cooperative cancellation handle, polled once per translated node.
    cancel: Option<CancelToken>,
}

impl BddSession {
    /// Creates a session whose manager fails with [`BddOverflow`] past
    /// `node_budget` resident nodes (`usize::MAX` = unbudgeted).
    pub fn new(node_budget: usize) -> Self {
        BddSession {
            manager: BddManager::with_budget(node_budget),
            cache: HashMap::new(),
            clock: 0,
            cache_cap: TRANSLATION_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
            evictions: 0,
            gc_floor: BDD_GC_MIN_NODES,
            gc_watermark: BDD_GC_MIN_NODES,
            cancel: None,
        }
    }

    /// Installs (or removes) a cooperative cancellation token, polled
    /// once per translated node during [`BddSession::build`].
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The underlying manager (for support/model queries on built refs).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// Resident manager node count.
    pub fn resident_nodes(&self) -> usize {
        self.manager.len()
    }

    /// Session counters.
    pub fn stats(&self) -> BddSessionStats {
        BddSessionStats {
            resident_nodes: self.manager.len(),
            cached_translations: self.cache.len(),
            translation_hits: self.hits,
            translation_misses: self.misses,
            translation_evictions: self.evictions,
            collections: self.manager.collections(),
            nodes_collected: self.manager.nodes_collected(),
        }
    }

    /// Tightens (or relaxes) the session's memory bounds: manager GC
    /// never runs below `gc_floor` resident nodes, and at most
    /// `translation_cap` arena-node translations are memoised. `None`
    /// keeps the current value.
    pub fn set_limits(&mut self, gc_floor: Option<usize>, translation_cap: Option<usize>) {
        if let Some(floor) = gc_floor {
            self.gc_floor = floor.max(2);
            // Re-arm at the floor: the next maybe_gc past it collects
            // and re-paces to twice the live size.
            self.gc_watermark = self.gc_floor;
        }
        if let Some(cap) = translation_cap {
            self.cache_cap = cap.max(1);
            self.evict_over_capacity();
        }
    }

    /// Builds BDDs for formula-arena `roots` bottom-up with full
    /// sharing, reusing every memoised translation: traversal stops at
    /// cached nodes, so a warm root costs O(1).
    ///
    /// # Errors
    ///
    /// Returns [`BddBuildError::Overflow`] when the manager's node
    /// budget is exceeded, and [`BddBuildError::Interrupted`] when an
    /// installed [`CancelToken`] fires mid-build; either way the
    /// partially built cone is rolled back (entries added by this call
    /// are dropped and the manager collected), leaving the session as
    /// it was before the call.
    pub fn build(
        &mut self,
        arena: &Arena,
        roots: &[FormulaId],
    ) -> Result<Vec<BddRef>, BddBuildError> {
        let _span = qb_obs::span("bdd.build", "");
        let (hits0, misses0, applies0) = (self.hits, self.misses, self.manager.applies());
        // Frontier traversal: descend only into nodes without a memoised
        // translation.
        let mut visited = vec![false; arena.len()];
        let mut need: Vec<FormulaId> = Vec::new();
        let mut stack: Vec<FormulaId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if visited[id.index()] {
                continue;
            }
            visited[id.index()] = true;
            if let Some(entry) = self.cache.get_mut(&id) {
                self.clock += 1;
                entry.last_used = self.clock;
                self.hits += 1;
                continue;
            }
            need.push(id);
            match arena.node(id) {
                Node::And(children) | Node::Xor(children, _) => {
                    stack.extend_from_slice(children);
                }
                _ => {}
            }
        }
        // Children precede parents in arena order, so ascending index
        // order computes every dependency first.
        need.sort_unstable();
        let fresh: Vec<FormulaId> = need.clone();
        for id in need {
            // Cancellation poll: a translated node is the unit of work
            // (each costs at least one apply), so per-node granularity
            // bounds interrupt latency without touching the apply loop.
            if let Some(token) = &self.cancel {
                if token.should_stop(0, 0) {
                    self.rollback_fresh(&fresh, id);
                    self.flush_build_metrics(hits0, misses0, applies0, "interrupted");
                    return Err(BddBuildError::Interrupted);
                }
            }
            let result = match arena.node(id) {
                Node::Const(b) => Ok(self.manager.constant(*b)),
                Node::Var(v) => self.manager.var(*v),
                Node::And(children) => {
                    let mut acc = Ok(BddRef::TRUE);
                    for c in children.iter() {
                        let child = self.cache[c].bdd;
                        acc = acc.and_then(|a| self.manager.and(a, child));
                        if acc.is_err() {
                            break;
                        }
                    }
                    acc
                }
                Node::Xor(children, parity) => {
                    let mut acc = Ok(self.manager.constant(*parity));
                    for c in children.iter() {
                        let child = self.cache[c].bdd;
                        acc = acc.and_then(|a| self.manager.xor(a, child));
                        if acc.is_err() {
                            break;
                        }
                    }
                    acc
                }
            };
            let bdd = match result {
                Ok(bdd) => bdd,
                Err(overflow) => {
                    self.rollback_fresh(&fresh, id);
                    self.flush_build_metrics(hits0, misses0, applies0, "overflow");
                    return Err(BddBuildError::Overflow(overflow));
                }
            };
            self.clock += 1;
            self.manager.ref_inc(bdd);
            self.cache.insert(
                id,
                TransEntry {
                    bdd,
                    last_used: self.clock,
                },
            );
            self.misses += 1;
        }
        let out = roots.iter().map(|r| self.cache[r].bdd).collect();
        self.evict_over_capacity();
        self.flush_build_metrics(hits0, misses0, applies0, "ok");
        Ok(out)
    }

    /// Publishes one build call's translation-cache and apply-step
    /// deltas to the global metrics registry; aborted builds are counted
    /// by outcome so overflow storms show up on the metrics surface.
    fn flush_build_metrics(&self, hits0: u64, misses0: u64, applies0: u64, outcome: &'static str) {
        qb_obs::counter_add("bdd_cache", "hit", self.hits - hits0);
        qb_obs::counter_add("bdd_cache", "miss", self.misses - misses0);
        qb_obs::counter_add("bdd_applies", "", self.manager.applies() - applies0);
        if outcome != "ok" {
            qb_obs::counter_add("bdd_build_aborts", outcome, 1);
        }
    }

    /// Rolls back a failed [`BddSession::build`] call: entries inserted
    /// by this call (fresh ids strictly below `failed_at`) are dropped
    /// so the failed cone doesn't pin budget-exhausting garbage. The
    /// collection renumbers every node, so surviving warm translations
    /// must follow the remap — force_gc does both.
    fn rollback_fresh(&mut self, fresh: &[FormulaId], failed_at: FormulaId) {
        for &f in fresh {
            if f >= failed_at {
                break;
            }
            if let Some(entry) = self.cache.remove(&f) {
                self.manager.ref_dec(entry.bdd);
                self.evictions += 1;
            }
        }
        self.force_gc();
    }

    /// Keeps the translation cache within its LRU bound (batch eviction
    /// down to ¾ capacity). Evicted diagrams stay resident until the
    /// next manager collection.
    fn evict_over_capacity(&mut self) {
        let manager = &mut self.manager;
        self.evictions += qb_formula::lru_evict_batch(
            &mut self.cache,
            self.cache_cap,
            |e| e.last_used,
            |_, entry| manager.ref_dec(entry.bdd),
        );
    }

    /// Collects the manager once it has outgrown its watermark,
    /// remapping every cached translation through the [`BddRemap`]
    /// (cache entries hold references, so they always survive).
    pub fn maybe_gc(&mut self) {
        if self.manager.len() < self.gc_watermark || self.manager.len() < self.gc_floor {
            return;
        }
        self.force_gc();
    }

    /// Unconditionally collects the manager and remaps the cache.
    pub fn force_gc(&mut self) {
        let _span = qb_obs::span("bdd.gc", "");
        qb_obs::counter_add("bdd_gc", "collect", 1);
        let remap = self.manager.collect();
        for entry in self.cache.values_mut() {
            entry.bdd = remap
                .remap(entry.bdd)
                .expect("referenced translations survive collection");
        }
        self.gc_watermark = (self.manager.len() * BDD_GC_GROWTH).max(self.gc_floor);
    }

    /// Follows a formula-arena collection: cache keys are rewritten
    /// through `remap`; entries whose arena node was reclaimed are
    /// dropped (sound — a collected id is never issued for its old
    /// structure again) and their diagrams released for the next
    /// manager GC.
    pub fn remap_nodes(&mut self, remap: &NodeRemap) {
        let cache = std::mem::take(&mut self.cache);
        for (id, entry) in cache {
            match remap.remap(id) {
                Some(new) => {
                    self.cache.insert(new, entry);
                }
                None => {
                    self.manager.ref_dec(entry.bdd);
                    self.evictions += 1;
                }
            }
        }
        self.maybe_gc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_formula::Simplify;

    #[test]
    fn canonicity_of_terminals() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let nx = m.not(x);
        assert_eq!(m.apply(BddOp::And, x, nx).unwrap(), BddRef::FALSE);
        assert_eq!(m.apply(BddOp::Or, x, nx).unwrap(), BddRef::TRUE);
        assert_eq!(m.apply(BddOp::Xor, x, x).unwrap(), BddRef::FALSE);
    }

    #[test]
    fn complement_edges_share_nodes() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.and(x, y).unwrap();
        let len = m.len();
        let nf = m.not(f);
        assert_eq!(m.len(), len, "negation allocates nothing");
        assert_eq!(nf.complement(), f);
        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(nf, &[e0, e1]), !(e0 & e1));
        }
    }

    #[test]
    fn shannon_ordering_respected() {
        let mut m = BddManager::new();
        let x0 = m.var(0).unwrap();
        let x1 = m.var(1).unwrap();
        let both = m.apply(BddOp::And, x1, x0).unwrap();
        assert!(!both.is_terminal());
        assert_eq!(m.support(both), vec![0, 1]);
        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(both, &[e0, e1]), e0 & e1);
        }
    }

    #[test]
    fn restrict_eliminates_variable() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.xor(x, y).unwrap();
        let f0 = m.restrict(f, 0, false).unwrap();
        let f1 = m.restrict(f, 0, true).unwrap();
        assert_eq!(f0, y);
        assert_eq!(f1, m.not(y));
        assert!(!m.depends_on(f0, 0));
    }

    #[test]
    fn depends_on_matches_restrict_equality() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let z = m.var(2).unwrap();
        let xy = m.and(x, y).unwrap();
        let f = m.apply(BddOp::Or, xy, z).unwrap();
        for v in 0..4u32 {
            let c0 = m.restrict(f, v, false).unwrap();
            let c1 = m.restrict(f, v, true).unwrap();
            assert_eq!(c0 != c1, m.depends_on(f, v), "var {v}");
        }
    }

    #[test]
    fn xor_cancellation_through_apply() {
        let mut m = BddManager::new();
        let x = m.var(3).unwrap();
        let y = m.var(5).unwrap();
        let a = m.xor(x, y).unwrap();
        let b = m.xor(a, y).unwrap();
        assert_eq!(b, x);
        // Complements strip through XOR: ¬x ⊕ ¬y = x ⊕ y.
        let c = m.xor(x.complement(), y.complement()).unwrap();
        assert_eq!(c, a);
        let d = m.xor(x.complement(), y).unwrap();
        assert_eq!(d, a.complement());
    }

    #[test]
    fn any_sat_finds_models_through_complements() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let ny = m.not(y);
        let f = m.and(x, ny).unwrap();
        let model: HashMap<Var, bool> = m.any_sat(f).unwrap().into_iter().collect();
        assert!(model[&0]);
        assert!(!model[&1]);
        // Negation's models satisfy the negation.
        let nf = m.not(f);
        let path = m.any_sat(nf).unwrap();
        let mut env = [false, false];
        for (v, val) in path {
            env[v as usize] = val;
        }
        assert!(m.eval(nf, &env));
        assert!(m.any_sat(BddRef::FALSE).is_none());
        assert_eq!(m.any_sat(BddRef::TRUE).unwrap(), vec![]);
    }

    #[test]
    fn session_build_matches_eval() {
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut f = Arena::new(mode);
            let x = f.var(0);
            let y = f.var(1);
            let z = f.var(2);
            let xy = f.and2(x, y);
            let t = f.xor2(xy, z);
            let root = f.not(t);
            let other = f.or2(x, z);
            let mut s = BddSession::new(usize::MAX);
            let bdds = s.build(&f, &[root, other]).unwrap();
            for bits in 0..8u32 {
                let env = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                assert_eq!(
                    s.manager().eval(bdds[0], &env),
                    f.eval(root, &env),
                    "{mode:?}"
                );
                assert_eq!(
                    s.manager().eval(bdds[1], &env),
                    f.eval(other, &env),
                    "{mode:?}"
                );
            }
        }
    }

    #[test]
    fn unsat_is_false_edge() {
        let mut f = Arena::new(Simplify::Raw);
        let x = f.var(0);
        let nx = f.not(x);
        let contra = f.and2(x, nx);
        let mut s = BddSession::new(usize::MAX);
        let b = s.build(&f, &[contra]).unwrap()[0];
        assert!(b.is_false());
    }

    #[test]
    fn warm_roots_cost_no_translation() {
        let mut f = Arena::new(Simplify::Raw);
        let x = f.var(0);
        let y = f.var(1);
        let xy = f.and2(x, y);
        let root = f.xor2(xy, x);
        let mut s = BddSession::new(usize::MAX);
        s.build(&f, &[root]).unwrap();
        let misses_after_cold = s.stats().translation_misses;
        s.build(&f, &[root]).unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.translation_misses, misses_after_cold,
            "no re-translation"
        );
        assert!(stats.translation_hits >= 1);
        // A superstructure over the warm root translates only the new top.
        let z = f.var(2);
        let bigger = f.and2(root, z);
        s.build(&f, &[bigger]).unwrap();
        assert_eq!(
            s.stats().translation_misses,
            misses_after_cold + 2,
            "only z and the new AND are fresh"
        );
    }

    #[test]
    fn node_budget_overflows_and_rolls_back() {
        let mut f = Arena::new(Simplify::Raw);
        // Product of disjoint (xᵢ ⊕ yᵢ) — BDD stays linear, so overflow
        // comes from a deliberately tiny budget instead.
        let factors: Vec<_> = (0..6)
            .map(|i| {
                let a = f.var(2 * i);
                let b = f.var(2 * i + 1);
                f.xor2(a, b)
            })
            .collect();
        let root = f.and(&factors);
        let mut s = BddSession::new(4);
        let err = s.build(&f, &[root]).unwrap_err();
        assert_eq!(err, BddBuildError::Overflow(BddOverflow { budget: 4 }));
        // Rollback: the failed cone left no cache entries behind.
        assert_eq!(s.stats().cached_translations, 0);
        assert!(s.resident_nodes() <= 4);
        // The same session still answers within-budget queries.
        let x = f.var(0);
        let nx = f.not(x);
        let contra = f.and2(x, nx);
        let b = s.build(&f, &[contra]).unwrap()[0];
        assert!(b.is_false());
    }

    #[test]
    fn cancelled_build_rolls_back_and_session_stays_usable() {
        let mut f = Arena::new(Simplify::Raw);
        let factors: Vec<_> = (0..6)
            .map(|i| {
                let a = f.var(2 * i);
                let b = f.var(2 * i + 1);
                f.xor2(a, b)
            })
            .collect();
        let root = f.and(&factors);
        let mut s = BddSession::new(usize::MAX);
        let token = CancelToken::new();
        s.set_cancel_token(Some(token.clone()));
        token.cancel();
        let err = s.build(&f, &[root]).unwrap_err();
        assert_eq!(err, BddBuildError::Interrupted);
        // Rollback: the interrupted cone left no cache entries behind.
        assert_eq!(s.stats().cached_translations, 0);
        // Clearing the token makes the same query complete, with the
        // right semantics: ⋀ᵢ(xᵢ⊕yᵢ) is true iff every pair differs.
        token.reset();
        let b = s.build(&f, &[root]).unwrap()[0];
        let mut env = vec![false; 12];
        assert!(!s.manager().eval(b, &env));
        for i in 0..6 {
            env[2 * i + 1] = true;
        }
        assert!(s.manager().eval(b, &env));
    }

    #[test]
    fn overflow_rollback_remaps_surviving_translations() {
        // A warm session whose translation cache sits above collected
        // garbage: LRU-evicted diagrams occupy low node indices, so the
        // rollback collection renumbers the survivors. Warm entries must
        // follow the remap or later builds read the wrong nodes.
        let mut f = Arena::new(Simplify::Raw);
        let mut junk_roots = Vec::new();
        for i in 5..12u32 {
            let a = f.var(2 * i);
            let b = f.var(2 * i + 1);
            junk_roots.push(f.and2(a, b));
        }
        let keep = {
            let a = f.var(0);
            let b = f.var(1);
            f.and2(a, b)
        };
        let mut s = BddSession::new(64);
        s.set_limits(Some(usize::MAX), Some(4)); // GC floor huge: only rollback collects
        for r in &junk_roots {
            s.build(&f, &[*r]).unwrap(); // LRU-evicts earlier entries
        }
        // Translate `keep` last: its diagram sits *above* the evicted
        // junk diagrams in the node array, so the rollback collection
        // renumbers it downward.
        let before = s.build(&f, &[keep]).unwrap()[0];
        assert!(s.stats().translation_evictions > 0, "garbage exists");

        // Blow the budget: a wide conjunction of fresh xors.
        let factors: Vec<FormulaId> = (0..40)
            .map(|i| {
                let a = f.var(100 + 2 * i);
                let b = f.var(101 + 2 * i);
                f.xor2(a, b)
            })
            .collect();
        let big = f.and(&factors);
        s.build(&f, &[big]).unwrap_err();

        // The warm entry must still denote x0 ∧ x1 — and a post-rollback
        // cache hit must agree with it.
        let after = s.build(&f, &[keep]).unwrap()[0];
        assert_eq!(before.index() == after.index(), before == after);
        let mut env = vec![false; 200];
        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)] {
            env[0] = e0;
            env[1] = e1;
            assert_eq!(
                s.manager().eval(after, &env),
                e0 & e1,
                "post-rollback translation is exact"
            );
        }
    }

    #[test]
    fn manager_gc_keeps_referenced_cones_and_remaps() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let keep = m.and(x, y).unwrap();
        let junk = m.xor(x, y).unwrap();
        let junk2 = m.and(junk, y).unwrap();
        m.ref_inc(keep);
        let before = m.len();
        let remap = m.collect();
        assert!(m.len() < before, "xor cone reclaimed");
        assert_eq!(remap.collected(), before - m.len());
        let keep2 = remap.remap(keep).unwrap();
        for (e0, e1) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(keep2, &[e0, e1]), e0 & e1);
        }
        assert!(remap.remap(junk2).is_none());
        // Rebuilding collected structure re-interns cleanly.
        let x2 = m.var(0).unwrap();
        let y2 = m.var(1).unwrap();
        assert_eq!(m.and(x2, y2).unwrap(), keep2);
    }

    #[test]
    fn session_survives_arena_collection() {
        let mut f = Arena::new(Simplify::Full);
        let x = f.var(0);
        let y = f.var(1);
        let xy = f.and2(x, y);
        let root = f.xor2(xy, x);
        let dead = {
            let z = f.var(2);
            f.and2(z, root)
        };
        let mut s = BddSession::new(usize::MAX);
        let before = s.build(&f, &[root, dead]).unwrap();
        let remap = f.collect(&[root]);
        let new_root = remap.remap(root).unwrap();
        s.remap_nodes(&remap);
        assert!(s.stats().translation_evictions > 0, "dead entries dropped");
        let hits_before = s.stats().translation_hits;
        let after = s.build(&f, &[new_root]).unwrap();
        assert_eq!(before[0], after[0], "warm diagram survived the remap");
        assert!(s.stats().translation_hits > hits_before);
    }

    #[test]
    fn translation_cache_is_lru_bounded() {
        let mut f = Arena::new(Simplify::Raw);
        let mut roots = Vec::new();
        for i in 0..32u32 {
            let a = f.var(2 * i);
            let b = f.var(2 * i + 1);
            roots.push(f.and2(a, b));
        }
        let mut s = BddSession::new(usize::MAX);
        s.set_limits(None, Some(16));
        for r in &roots {
            s.build(&f, &[*r]).unwrap();
        }
        let stats = s.stats();
        assert!(stats.cached_translations <= 16, "{stats:?}");
        assert!(stats.translation_evictions > 0);
        // Evicted diagrams are reclaimed by the next collection.
        s.force_gc();
        assert!(s.stats().collections >= 1);
        // Verdicts stay exact after eviction + collection.
        let b = s.build(&f, &[roots[0]]).unwrap()[0];
        for (e0, e1) in [(false, false), (true, false), (true, true)] {
            let mut env = vec![false; 64];
            env[0] = e0;
            env[1] = e1;
            assert_eq!(s.manager().eval(b, &env), e0 & e1);
        }
    }

    #[test]
    fn computed_table_stays_bounded() {
        let mut m = BddManager::new();
        m.set_computed_table_capacity(64);
        let vars: Vec<BddRef> = (0..40).map(|v| m.var(v).unwrap()).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                m.and(vars[i], vars[j]).unwrap();
                m.xor(vars[i], vars[j]).unwrap();
            }
        }
        assert!(m.cache.map.len() <= 64);
        assert!(m.computed_evictions() > 0);
    }

    #[test]
    fn size_counts_reachable() {
        let mut m = BddManager::new();
        let x = m.var(0).unwrap();
        let y = m.var(1).unwrap();
        let f = m.and(x, y).unwrap();
        // nodes: f-root(var0), var1 node, the shared terminal.
        assert_eq!(m.size(f), 3);
    }
}
