//! # qb-serve
//!
//! The verify-on-change serving layer: a long-lived daemon that keeps
//! one warm [`qb_core::VerifySession`] per loaded program and re-checks
//! the paper's safe-uncomputation conditions (6.1)/(6.2) after every
//! edit, over a JSON-lines Unix-socket protocol.
//!
//! The paper's workflow is compile–verify iteration: a developer edits a
//! program that borrows dirty qubits and re-checks it after every
//! change. A one-shot `qborrow verify` pays full parse + symbolic
//! execution + encoding + solving each time; the daemon instead keeps
//! the elaborated circuit, the formula arena, the incremental encoder
//! and the CDCL solver (with all its learnt clauses) alive between
//! requests, and [`qb_core::VerifySession::apply_edit`] confines the
//! cost of an edit to the changed gate suffix.
//!
//! * [`Server`] — the socket-free request handler (sessions keyed by
//!   [`qb_lang::structural_hash`], names as aliases);
//! * [`run`] / [`ServeOptions`] — the Unix-socket accept loop behind
//!   `qborrow serve --socket <path>`;
//! * [`Client`] — the thin synchronous client behind `qborrow client`
//!   and `qborrow watch`;
//! * [`Request`] / [`Json`] — the wire protocol.
//!
//! # Examples
//!
//! Drive a server in-process (the socket layer adds only framing):
//!
//! ```
//! use qb_serve::{Json, Request, Server};
//! use qb_core::VerifyOptions;
//!
//! let mut server = Server::new(VerifyOptions::default());
//! let load = Request::Load {
//!     name: "demo".into(),
//!     source: "borrow a; X[a]; X[a];".into(),
//!     backend: None, // the daemon's default; "bdd"/"auto"/… select per session
//! };
//! let (response, _) = server.handle_line(&load.to_line());
//! let response = Json::parse(&response).unwrap();
//! assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
//!
//! let verify = Request::Verify {
//!     name: "demo".into(),
//!     targets: None,
//!     deadline_ms: None,
//!     trace: false, // true: the response carries Chrome trace-event JSON
//! };
//! let (response, _) = server.handle_line(&verify.to_line());
//! let response = Json::parse(&response).unwrap();
//! assert_eq!(response.get("all_safe").and_then(Json::as_bool), Some(true));
//! ```

mod actor;
mod client;
mod daemon;
mod json;
mod protocol;
mod router;

pub use client::{shed_retry_after, Client, RetryBudget};
pub use daemon::{run, ServeOptions, Server, ServerLimits};
pub use json::Json;
pub use protocol::{coded_error_response, error_response, Request};
