//! Per-session actors: one owned worker thread per `(structural hash,
//! backend)` session.
//!
//! Each actor owns its [`VerifySession`] outright — no lock is ever held
//! across a solve — and is fed through a bounded MPSC mailbox by the
//! router ([`crate::router`]). Requests to the same session pipeline
//! through the mailbox in order, so per-session semantics are exactly
//! the single-threaded daemon's; requests to different sessions run on
//! different threads and never serialize behind each other.
//!
//! The actor also owns the failure domain: a panic unwinding out of a
//! solve is caught here, the poisoned session is rebuilt from its
//! retained source, and the reply carries a structured `internal_error`
//! — one bad circuit never takes down a neighbouring editor's session.

use crate::json::Json;
use crate::protocol::{coded_error_response, error_response};
use crate::router::{elaborate_source, hash_hex, not_loaded_response, ActorId, Router, SessionKey};
use qb_core::{CancelToken, QubitVerdict, Verdict, VerifyError, VerifyLimits, VerifySession};
use qb_lang::{gate_diff, structural_hash, ElaboratedProgram};
use qb_obs::Histogram;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Mailbox bound: enough to absorb a pipelining client's burst, small
/// enough that overload surfaces immediately. Senders never block on a
/// full mailbox — the router's admission check rejects the request with
/// a structured `overloaded` error instead (see [`crate::router`]).
pub(crate) const MAILBOX_CAP: usize = 256;

/// Where a request's rendered response line goes: the per-connection
/// writer thread (or the synchronous [`crate::Server`] facade).
pub(crate) type ReplySender = std::sync::mpsc::Sender<String>;

/// Everything needed to finish a request far from where it was parsed:
/// id for stamping, command label for metering, enqueue instant for the
/// mailbox-wait histogram, and the reply channel.
pub(crate) struct RequestCtx {
    pub request_id: u64,
    pub cmd: &'static str,
    pub enqueued: Instant,
    pub reply: ReplySender,
}

/// One mailbox message. The router resolves names to actors; the actor
/// only ever sees work for its own session.
pub(crate) enum ActorMsg {
    Verify {
        name: String,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
        trace: bool,
        ctx: RequestCtx,
    },
    /// An already-elaborated edit. The router rekeyed the session table
    /// under the actor's send lock before enqueueing, so by the time
    /// this is processed the table already names the post-edit key.
    Edit {
        name: String,
        program: ElaboratedProgram,
        source: String,
        ctx: RequestCtx,
    },
    /// Render a summary reply (load / identical edit / alias rebind):
    /// `extra` carries the leading response members, the actor appends
    /// its program summary.
    Describe {
        name: String,
        extra: Vec<(&'static str, Json)>,
        ctx: RequestCtx,
    },
}

impl ActorMsg {
    fn name_and_ctx(self) -> (String, RequestCtx) {
        match self {
            ActorMsg::Verify { name, ctx, .. }
            | ActorMsg::Edit { name, ctx, .. }
            | ActorMsg::Describe { name, ctx, .. } => (name, ctx),
        }
    }
}

/// The actor's continuously published summary: status and metrics read
/// this instead of queueing behind the mailbox, so a `status` request
/// never waits for a slow sweep to finish (the daemon-control lane).
pub(crate) struct PublishedStats {
    /// Program-summary response members (everything except the
    /// name and idle time, which are per-alias / per-read).
    pub pairs: Vec<(&'static str, Json)>,
    pub arena_nodes: usize,
    pub bdd_resident_nodes: usize,
    pub auto_preference: qb_core::AutoPreference,
    pub target_latency: Histogram,
    pub root_latency: Histogram,
}

/// State shared between an actor and the router/readers: routing needs
/// queue depth, liveness, the mailbox-wait histogram and the breaker
/// without a mailbox round-trip.
pub(crate) struct ActorShared {
    /// Messages enqueued but not yet dequeued.
    pub queue_depth: AtomicUsize,
    /// Cleared when the worker thread exits (drain or quarantine death).
    pub alive: AtomicBool,
    /// Serialises "mutate the routing table, then enqueue" sequences
    /// (edit rekeys) against plain sends, so mailbox order always agrees
    /// with table order. Lock order: `send_lock` strictly before the
    /// router's table lock; plain senders take it only after releasing
    /// the table lock.
    pub send_lock: Mutex<()>,
    /// How long messages sat in this mailbox before being dequeued.
    pub mailbox_wait: Mutex<Histogram>,
    /// Per-session circuit breaker over the quarantine-rebuild path.
    pub breaker: Mutex<Breaker>,
    pub published: Mutex<PublishedStats>,
}

/// Per-session circuit breaker: a session that panics (quarantine-
/// rebuilds) repeatedly trips the breaker open, and the router fast-
/// fails its verifies `unavailable` instead of burning CPU in a rebuild
/// loop. After a cooldown one half-open probe is admitted; its outcome
/// closes or re-opens the breaker. Edits pass the breaker — replacing
/// the poisoned program is the cure — and a successful verify or edit
/// closes it.
#[derive(Default)]
pub(crate) struct Breaker {
    /// Recent quarantine strikes (oldest aged out past the window).
    strikes: Vec<Instant>,
    /// Set while the breaker is open (fast-fail `unavailable`).
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; the next strike or success
    /// decides the breaker's fate.
    probing: bool,
}

impl Breaker {
    /// Strikes older than this don't count toward tripping: a panic a
    /// minute ago says little about the session's health now.
    const STRIKE_WINDOW: Duration = Duration::from_secs(30);

    /// Records a quarantine strike. Trips open at `threshold` strikes
    /// within the window; a strike while probing re-opens immediately
    /// (the probe just proved the session is still poisoned).
    pub fn strike(&mut self, threshold: u32, now: Instant) {
        if self.probing {
            self.probing = false;
            self.opened_at = Some(now);
            return;
        }
        self.strikes
            .retain(|t| now.duration_since(*t) <= Self::STRIKE_WINDOW);
        self.strikes.push(now);
        if self.strikes.len() >= threshold.max(1) as usize {
            self.strikes.clear();
            self.opened_at = Some(now);
        }
    }

    /// A verify or edit completed cleanly: close the breaker and forget
    /// the strike history.
    pub fn note_ok(&mut self) {
        self.strikes.clear();
        self.opened_at = None;
        self.probing = false;
    }

    /// Admission check for verifies. `Ok(())` admits (including the one
    /// half-open probe once `cooldown` has elapsed); `Err(ms)` fast-
    /// fails with the suggested retry delay.
    pub fn admit(&mut self, cooldown: Duration, now: Instant) -> Result<(), u64> {
        let Some(opened) = self.opened_at else {
            return Ok(());
        };
        let elapsed = now.duration_since(opened);
        if elapsed < cooldown {
            return Err((cooldown - elapsed).as_millis().max(1) as u64);
        }
        if self.probing {
            // A probe is already in flight; hold further traffic until
            // it reports back.
            return Err(cooldown.as_millis().max(1) as u64);
        }
        self.probing = true;
        Ok(())
    }

    /// Whether the breaker is currently open (for status surfacing).
    pub fn is_open(&self) -> bool {
        self.opened_at.is_some()
    }
}

/// Count of in-flight span captures. Span recording is a process
/// global; refcounting keeps it enabled until the *last* concurrent
/// capture finishes instead of the first one switching everyone else
/// off mid-sweep.
static TRACE_DEPTH: AtomicU32 = AtomicU32::new(0);

/// RAII over the global span-recording flag, scoped to one request on
/// one actor thread. The flight recorder captures *every* verify, so
/// recording is effectively on whenever any session is mid-sweep and
/// back to the one-relaxed-load fast path when the daemon is idle.
/// Spans stay in the per-thread ring, so concurrent actors never see
/// each other's events; `Drop` releases the refcount even when a solve
/// panics, and anything a panic strands in this thread's ring is
/// discarded by the next capture here.
struct CaptureGuard;

fn capture_begin() -> CaptureGuard {
    // Discard leftovers from an earlier untaken capture on this thread
    // so they cannot pollute this request's trace.
    let _ = qb_obs::take_spans();
    if TRACE_DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
        qb_obs::set_enabled(true);
    }
    CaptureGuard
}

impl CaptureGuard {
    /// This request's span tree: the actor thread recorded nothing else
    /// since [`capture_begin`].
    fn take(self) -> Vec<qb_obs::SpanEvent> {
        qb_obs::take_spans()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if TRACE_DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
            qb_obs::set_enabled(false);
        }
    }
}

/// A deadline watchdog: a helper thread that trips `token` when the
/// budget elapses, covering the window before the cooperative checks
/// inside the solver loops observe the deadline themselves (and making
/// every later check a cheap flag read). Dropping the guard wakes the
/// thread immediately, so an in-budget verify pays one condvar signal,
/// not a lingering thread per request.
struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(token: CancelToken, deadline: Duration) -> Watchdog {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*thread_state;
            let expires = Instant::now() + deadline;
            let mut done = lock.lock().unwrap();
            loop {
                if *done {
                    return;
                }
                let now = Instant::now();
                if now >= expires {
                    token.cancel();
                    return;
                }
                done = cvar.wait_timeout(done, expires - now).unwrap().0;
            }
        });
        Watchdog {
            state,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn render_verdict(program: &ElaboratedProgram, v: &QubitVerdict) -> Json {
    let mut pairs = vec![
        ("qubit", Json::Int(v.qubit as i64)),
        ("name", Json::Str(program.qubit_name(v.qubit).to_string())),
        ("safe", Json::Bool(v.safe)),
        ("verdict", Json::Str(v.verdict.name().to_string())),
        ("zero_ns", Json::Int(v.zero_time.as_nanos() as i64)),
        ("plus_ns", Json::Int(v.plus_time.as_nanos() as i64)),
    ];
    if let Verdict::Unknown { reason } = &v.verdict {
        pairs.push(("reason", Json::Str(reason.clone())));
    }
    if let Some(ce) = &v.counterexample {
        pairs.push(("violation", Json::Str(ce.violation.to_string())));
        if let Some(bits) = &ce.basis_assignment {
            pairs.push((
                "witness",
                Json::Arr(bits.iter().map(|&b| Json::Bool(b)).collect()),
            ));
        }
    }
    Json::obj(pairs)
}

/// One session worker. Owns the program, its session and the retained
/// source; everything else reaches it through the mailbox.
struct SessionActor {
    router: Arc<Router>,
    id: ActorId,
    shared: Arc<ActorShared>,
    key: SessionKey,
    program: ElaboratedProgram,
    session: VerifySession,
    source: String,
    verifies: u64,
    /// Set when a quarantine rebuild failed: the session is gone, the
    /// table entry was dropped, and remaining queued messages are
    /// answered `not_loaded` until the mailbox drains.
    dead: bool,
}

/// Builds the initial published summary and spawns the worker thread.
pub(crate) fn spawn_actor(
    router: Arc<Router>,
    id: ActorId,
    key: SessionKey,
    program: ElaboratedProgram,
    session: VerifySession,
    source: String,
) -> (
    SyncSender<ActorMsg>,
    Arc<ActorShared>,
    std::thread::JoinHandle<()>,
) {
    let (tx, rx) = std::sync::mpsc::sync_channel(MAILBOX_CAP);
    let mut actor = SessionActor {
        router,
        id,
        shared: Arc::new(ActorShared {
            queue_depth: AtomicUsize::new(0),
            alive: AtomicBool::new(true),
            send_lock: Mutex::new(()),
            mailbox_wait: Mutex::new(Histogram::new()),
            breaker: Mutex::new(Breaker::default()),
            published: Mutex::new(PublishedStats {
                pairs: Vec::new(),
                arena_nodes: 0,
                bdd_resident_nodes: 0,
                auto_preference: qb_core::AutoPreference::Undecided,
                target_latency: Histogram::new(),
                root_latency: Histogram::new(),
            }),
        }),
        key,
        program,
        session,
        source,
        verifies: 0,
        dead: false,
    };
    // Publish before the spawn: a `status` racing the first message
    // already sees the session (read-your-writes for the loading client).
    actor.publish();
    let shared = Arc::clone(&actor.shared);
    let handle = std::thread::Builder::new()
        .name(format!("qb-session-{}", hash_hex(key.0)))
        .spawn(move || actor.run(rx))
        .expect("spawn session actor");
    (tx, shared, handle)
}

impl SessionActor {
    fn run(mut self, rx: Receiver<ActorMsg>) {
        while let Ok(msg) = rx.recv() {
            self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            self.router.note_dequeue();
            self.handle_one(msg);
        }
        // Mailbox closed: the router dropped this actor's entry (unload,
        // eviction, edit rebind or shutdown drain). Fold what the auto
        // portfolio learned into the winner map before the session dies.
        if !self.dead {
            self.router
                .remember_auto(self.key, self.session.auto_preference());
        }
        self.shared.alive.store(false, Ordering::SeqCst);
    }

    fn handle_one(&mut self, msg: ActorMsg) {
        let cmd;
        let name;
        let ctx;
        // Retained so a panic mid-edit rebuilds to the *post-edit*
        // program the routing table was already rekeyed to.
        let mut pending_source: Option<String> = None;
        let result = match msg {
            ActorMsg::Verify {
                name: n,
                targets,
                deadline_ms,
                trace,
                ctx: c,
            } => {
                cmd = "verify";
                name = n;
                ctx = c;
                self.note_wait(&ctx);
                let rid = ctx.request_id;
                let t0 = Instant::now();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    self.verify(&name, targets, deadline_ms, trace, rid)
                }));
                (t0, r)
            }
            ActorMsg::Edit {
                name: n,
                program,
                source,
                ctx: c,
            } => {
                cmd = "edit";
                name = n;
                ctx = c;
                self.note_wait(&ctx);
                pending_source = Some(source.clone());
                let t0 = Instant::now();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    self.edit(&name, program, source)
                }));
                (t0, r)
            }
            ActorMsg::Describe {
                name: n,
                extra,
                ctx: c,
            } => {
                cmd = ctx_cmd(&c);
                name = n;
                ctx = c;
                self.note_wait(&ctx);
                let t0 = Instant::now();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| self.describe(&name, extra)));
                (t0, r)
            }
        };
        let (t0, result) = result;
        let response = match result {
            Ok(response) => {
                // A clean verify or edit proves the session healthy:
                // close the breaker. (Describe summaries prove nothing.)
                if matches!(cmd, "verify" | "edit") {
                    if let Ok(mut breaker) = self.shared.breaker.lock() {
                        breaker.note_ok();
                    }
                }
                response
            }
            Err(payload) => {
                // The panic unwound out of the session: quarantine it
                // (any state left behind is untrusted), rebuild from the
                // retained source, keep serving. Whatever the request
                // recorded before dying is salvaged first so the flight
                // recorder still retains a (partial) trace of it.
                self.router
                    .stash_spans(ctx.request_id, qb_obs::take_spans());
                self.router.note_quarantine();
                if let Ok(mut breaker) = self.shared.breaker.lock() {
                    breaker.strike(self.router.breaker_threshold(), Instant::now());
                }
                if let Some(source) = pending_source {
                    self.source = source;
                }
                let rebuilt = self.rebuild();
                Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::Str(format!(
                            "internal panic while handling the request: {}",
                            panic_text(payload.as_ref())
                        )),
                    ),
                    ("code", Json::Str("internal_error".to_string())),
                    ("quarantined", Json::Str(name)),
                    ("rebuilt", Json::Bool(rebuilt)),
                ])
            }
        };
        let handle_ns = t0.elapsed().as_nanos() as u64;
        let queue_ns = queue_ns(&ctx);
        self.publish();
        self.router.finish(
            ctx.request_id,
            cmd,
            response,
            queue_ns,
            handle_ns,
            &ctx.reply,
        );
    }

    /// Records this message's mailbox wait (the concurrent daemon's
    /// queue-wait: time between routing and dequeue).
    fn note_wait(&self, ctx: &RequestCtx) {
        let ns = queue_ns(ctx);
        qb_obs::observe_ns("request_mailbox_wait", ctx.cmd, ns);
        if let Ok(mut h) = self.shared.mailbox_wait.lock() {
            h.record(ns);
        }
    }

    /// Tears down the (presumed poisoned) session and rebuilds it from
    /// the retained source. On failure the actor deregisters itself —
    /// every alias drops, clients see `not_loaded` and re-`load`.
    fn rebuild(&mut self) -> bool {
        let rebuilt = elaborate_source(&self.source).and_then(|program| {
            let hash = structural_hash(&program);
            self.router
                .new_session(&program, hash, self.key.1)
                .map(|session| (program, hash, session))
        });
        match rebuilt {
            Ok((program, hash, session)) => {
                self.program = program;
                self.session = session;
                self.key = (hash, self.key.1);
                self.verifies = 0;
                true
            }
            Err(_) => {
                self.router.deregister(self.id);
                self.dead = true;
                false
            }
        }
    }

    fn verify(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
        trace: bool,
        request_id: u64,
    ) -> Json {
        if self.dead {
            return not_loaded_response(name);
        }
        let deadline = self.router.effective_deadline(deadline_ms);
        let targets = targets.unwrap_or_else(|| self.program.qubits_to_verify());
        let t0 = Instant::now();
        // Every verify captures its span tree for the flight recorder;
        // `trace` only decides whether the rendered Chrome trace also
        // rides in this response.
        let capture = capture_begin();
        let verdicts = match deadline {
            None => self.session.verify_targets(&targets),
            Some(budget) => {
                let token = CancelToken::new();
                let limits = VerifyLimits {
                    deadline: Some(budget),
                    token: Some(token.clone()),
                    ..VerifyLimits::default()
                };
                // The watchdog hard-trips the token at the deadline;
                // dropping the guard after the sweep retires it.
                let _watchdog = Watchdog::arm(token, budget);
                self.session.verify_targets_limited(&targets, &limits)
            }
        };
        let spans = capture.take();
        let trace_json = trace.then(|| qb_obs::chrome_trace(&spans));
        // Hand the span tree to the router before any early return, so
        // error responses are still recorded with their trace.
        self.router.stash_spans(request_id, spans);
        let verdicts = match verdicts {
            Ok(v) => v,
            Err(e) => return error_response(&e.to_string()),
        };
        let solve_ns = t0.elapsed().as_nanos() as i64;
        self.verifies += 1;
        let all_safe = verdicts.iter().all(|v| v.safe);
        let unknowns = verdicts.iter().filter(|v| v.verdict.is_unknown()).count();
        let rendered: Vec<Json> = verdicts
            .iter()
            .map(|v| render_verdict(&self.program, v))
            .collect();
        let stats = self.session.stats();
        self.router
            .remember_auto(self.key, self.session.auto_preference());
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.to_string())),
            ("hash", Json::Str(hash_hex(self.key.0))),
            ("backend", Json::Str(self.key.1.to_string())),
            ("all_safe", Json::Bool(all_safe)),
            ("unknowns", Json::Int(unknowns as i64)),
            ("verdicts", Json::Arr(rendered)),
            ("solve_ns", Json::Int(solve_ns)),
            ("verifies", Json::Int(self.verifies as i64)),
            ("compactions", Json::Int(stats.compactions as i64)),
            ("bdd_fallbacks", Json::Int(stats.bdd_fallbacks as i64)),
            ("interrupts", Json::Int(stats.interrupts as i64)),
            (
                "deadline_fallbacks",
                Json::Int(stats.deadline_fallbacks as i64),
            ),
            (
                "auto_preference",
                Json::Str(stats.auto_preference.name().into()),
            ),
            (
                "solver_propagations",
                Json::Int(stats.solver_propagations as i64),
            ),
            ("solver_conflicts", Json::Int(stats.solver_conflicts as i64)),
            ("solver_restarts", Json::Int(stats.solver_restarts as i64)),
            ("solver_vivified", Json::Int(stats.solver_vivified as i64)),
            ("encode_ns", Json::Int(stats.encode_time.as_nanos() as i64)),
            (
                "cofactor_ns",
                Json::Int(stats.cofactor_time.as_nanos() as i64),
            ),
            (
                "target_p50_us",
                Json::Int((stats.target_latency.p50() / 1_000) as i64),
            ),
            (
                "target_p95_us",
                Json::Int((stats.target_latency.p95() / 1_000) as i64),
            ),
            (
                "root_p50_us",
                Json::Int((stats.root_latency.p50() / 1_000) as i64),
            ),
            (
                "root_p95_us",
                Json::Int((stats.root_latency.p95() / 1_000) as i64),
            ),
        ];
        if let Ok(wait) = self.shared.mailbox_wait.lock() {
            pairs.push((
                "mailbox_wait_p50_us",
                Json::Int((wait.p50() / 1_000) as i64),
            ));
            pairs.push((
                "mailbox_wait_p95_us",
                Json::Int((wait.p95() / 1_000) as i64),
            ));
        }
        if let Some(budget) = deadline {
            pairs.push(("deadline_ms", Json::Int(budget.as_millis() as i64)));
        }
        if let Some(trace_json) = trace_json {
            pairs.push(("trace", Json::Str(trace_json)));
        }
        Json::obj(pairs)
    }

    /// Applies an already-rekeyed edit: incrementally when the qubit
    /// layout held, by rebuilding a fresh session (same actor, same
    /// mailbox) when it did not.
    fn edit(&mut self, name: &str, program: ElaboratedProgram, source: String) -> Json {
        if self.dead {
            return not_loaded_response(name);
        }
        let new_key = (structural_hash(&program), self.key.1);
        let kinds_match = self.program.qubit_kinds == program.qubit_kinds;
        let diff = gate_diff(self.program.circuit.gates(), program.circuit.gates());
        if kinds_match {
            match self.session.apply_edit(&program.circuit) {
                Ok(stats) => {
                    self.program = program;
                    self.source = source;
                    self.key = new_key;
                    let mut pairs = vec![
                        ("ok", Json::Bool(true)),
                        ("changed", Json::Bool(true)),
                        ("strategy", Json::Str("incremental".into())),
                        ("common_prefix", Json::Int(stats.common_prefix as i64)),
                        ("removed_gates", Json::Int(diff.removed as i64)),
                        ("added_gates", Json::Int(diff.added as i64)),
                        ("permanent_prefix", Json::Int(stats.permanent_prefix as i64)),
                        ("suffix_clauses", Json::Int(stats.suffix_clauses as i64)),
                        ("edit_ns", Json::Int(stats.elapsed.as_nanos() as i64)),
                    ];
                    pairs.extend(self.summary_pairs(name));
                    return Json::obj(pairs);
                }
                Err(VerifyError::IncompatibleEdit { .. }) => {
                    // Fall through to the rebuild path below.
                }
                Err(e) => {
                    // The router already rekeyed the table to the new
                    // hash, but the session still holds the old program:
                    // rekey back so the table matches reality.
                    self.router
                        .restore_binding(self.id, self.key, name, self.source.clone());
                    return error_response(&e.to_string());
                }
            }
        }
        // Layout changed (or the edit was incompatible): rebuild a fresh
        // session for the new program. The routing table already maps
        // the new key to this actor, so only local state moves.
        match self.router.new_session(&program, new_key.0, new_key.1) {
            Ok(session) => {
                self.router
                    .remember_auto(self.key, self.session.auto_preference());
                self.session = session;
                self.program = program;
                self.source = source;
                self.key = new_key;
                self.verifies = 0;
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("changed", Json::Bool(true)),
                    ("strategy", Json::Str("reload".into())),
                    ("common_prefix", Json::Int(diff.common_prefix as i64)),
                    ("removed_gates", Json::Int(diff.removed as i64)),
                    ("added_gates", Json::Int(diff.added as i64)),
                ];
                pairs.extend(self.summary_pairs(name));
                Json::obj(pairs)
            }
            Err(e) => {
                // No session can exist for the reserved key: deregister
                // so clients see `not_loaded` and re-load, matching what
                // a fresh load of this source would report.
                self.router.deregister(self.id);
                self.dead = true;
                coded_error_response(&e, "internal_error")
            }
        }
    }

    fn describe(&mut self, name: &str, extra: Vec<(&'static str, Json)>) -> Json {
        if self.dead {
            return not_loaded_response(name);
        }
        let mut pairs = extra;
        pairs.extend(self.summary_pairs(name));
        Json::obj(pairs)
    }

    /// The per-program summary members (the old daemon's
    /// `program_summary`), computed from the owned session.
    fn summary_pairs(&self, name: &str) -> Vec<(&'static str, Json)> {
        let mut pairs = vec![
            ("name", Json::Str(name.to_string())),
            ("idle_ms", Json::Int(0)),
        ];
        pairs.extend(self.stat_pairs());
        pairs
    }

    /// Summary members independent of any alias: everything in the old
    /// `program_summary` except the name and idle time.
    fn stat_pairs(&self) -> Vec<(&'static str, Json)> {
        let (hash, backend) = self.key;
        let stats = self.session.stats();
        vec![
            ("hash", Json::Str(hash_hex(hash))),
            ("backend", Json::Str(backend.to_string())),
            ("qubits", Json::Int(self.program.num_qubits() as i64)),
            ("gates", Json::Int(self.program.circuit.size() as i64)),
            (
                "targets",
                Json::Arr(
                    self.program
                        .qubits_to_verify()
                        .iter()
                        .map(|&q| Json::Int(q as i64))
                        .collect(),
                ),
            ),
            ("verifies", Json::Int(self.verifies as i64)),
            ("edits", Json::Int(stats.edits as i64)),
            ("arena_nodes", Json::Int(stats.arena_nodes as i64)),
            ("solver_vars", Json::Int(stats.solver_vars as i64)),
            ("clause_slots", Json::Int(stats.clause_slots as i64)),
            ("live_clauses", Json::Int(stats.live_clauses as i64)),
            ("compactions", Json::Int(stats.compactions as i64)),
            ("cached_decisions", Json::Int(stats.cached_decisions as i64)),
            ("decision_hits", Json::Int(stats.decision_hits as i64)),
            (
                "decision_evictions",
                Json::Int(stats.decision_evictions as i64),
            ),
            (
                "arena_collections",
                Json::Int(stats.arena_collections as i64),
            ),
            (
                "arena_nodes_collected",
                Json::Int(stats.arena_nodes_collected as i64),
            ),
            (
                "arena_gc_watermark",
                Json::Int(stats.arena_gc_watermark as i64),
            ),
            (
                "bdd_resident_nodes",
                Json::Int(stats.bdd_resident_nodes as i64),
            ),
            (
                "bdd_cached_translations",
                Json::Int(stats.bdd_cached_translations as i64),
            ),
            ("bdd_collections", Json::Int(stats.bdd_collections as i64)),
            ("bdd_fallbacks", Json::Int(stats.bdd_fallbacks as i64)),
            ("interrupts", Json::Int(stats.interrupts as i64)),
            (
                "deadline_fallbacks",
                Json::Int(stats.deadline_fallbacks as i64),
            ),
            ("anf_cached_polys", Json::Int(stats.anf_cached_polys as i64)),
            (
                "auto_preference",
                Json::Str(stats.auto_preference.name().into()),
            ),
            (
                "solver_propagations",
                Json::Int(stats.solver_propagations as i64),
            ),
            ("solver_conflicts", Json::Int(stats.solver_conflicts as i64)),
            ("solver_restarts", Json::Int(stats.solver_restarts as i64)),
            ("solver_vivified", Json::Int(stats.solver_vivified as i64)),
            ("sat_ns", Json::Int(stats.sat_time.as_nanos() as i64)),
            ("bdd_ns", Json::Int(stats.bdd_time.as_nanos() as i64)),
            ("anf_ns", Json::Int(stats.anf_time.as_nanos() as i64)),
            ("encode_ns", Json::Int(stats.encode_time.as_nanos() as i64)),
            (
                "cofactor_ns",
                Json::Int(stats.cofactor_time.as_nanos() as i64),
            ),
            (
                "target_p50_us",
                Json::Int((stats.target_latency.p50() / 1_000) as i64),
            ),
            (
                "target_p95_us",
                Json::Int((stats.target_latency.p95() / 1_000) as i64),
            ),
        ]
    }

    /// Publishes the summary snapshot `status`/`metrics` read without
    /// queueing behind this mailbox.
    fn publish(&mut self) {
        if self.dead {
            return;
        }
        let stats = self.session.stats();
        let pairs = self.stat_pairs();
        if let Ok(mut published) = self.shared.published.lock() {
            published.pairs = pairs;
            published.arena_nodes = stats.arena_nodes;
            published.bdd_resident_nodes = stats.bdd_resident_nodes;
            published.auto_preference = self.session.auto_preference();
            published.target_latency = stats.target_latency;
            published.root_latency = stats.root_latency;
        }
    }
}

fn ctx_cmd(ctx: &RequestCtx) -> &'static str {
    ctx.cmd
}

fn queue_ns(ctx: &RequestCtx) -> u64 {
    ctx.enqueued.elapsed().as_nanos() as u64
}

/// Recovers the name and reply context from a message the (closed)
/// mailbox bounced, so the router can still answer the client.
pub(crate) fn bounce(msg: ActorMsg) -> (String, RequestCtx) {
    msg.name_and_ctx()
}
