//! The verify-on-change daemon: warm per-program verification sessions
//! behind a JSON-lines Unix-socket protocol.
//!
//! The daemon holds one [`VerifySession`] per loaded program, keyed by
//! the *structural hash* of the elaborated circuit
//! ([`qb_lang::structural_hash`]) and its decision backend: client-chosen
//! names are aliases onto the keyed session table, so two editors looking
//! at structurally identical programs on the same backend share one warm
//! session. A `verify` request decides
//! conditions on the warm solver (learnt clauses, VSIDS state and phase
//! saving carry over from every previous request); an `edit` request
//! diffs the newly elaborated gate sequence against the cached circuit
//! and — when only a suffix changed — retracts and re-encodes just that
//! suffix, keeping the prefix encoding warm
//! ([`VerifySession::apply_edit`]).
//!
//! Connections are served one at a time (the session table is a single
//! mutable resource); clients hold connections only for the duration of
//! a request batch. Multi-client concurrency and a TCP transport are
//! recorded follow-ups in `ROADMAP.md`.

use crate::json::Json;
use crate::protocol::{coded_error_response, error_response, Request};
use qb_core::{
    AutoPreference, BackendKind, CancelToken, InitialValue, QubitVerdict, Verdict, VerifyError,
    VerifyLimits, VerifyOptions, VerifySession,
};
use qb_lang::{elaborate, gate_diff, parse, structural_hash, ElaboratedProgram, QubitKind};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Memory bounds of a long-lived daemon (see `README.md`, "Memory
/// behaviour of long-lived sessions"). All default to unbounded /
/// session defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerLimits {
    /// Upper bound on concurrently loaded (hash-distinct) sessions; the
    /// least-recently-used session (and every name aliasing it) is
    /// evicted past it. `None` = unbounded.
    pub max_sessions: Option<usize>,
    /// Sessions untouched for this long are evicted by the sweep that
    /// runs after every handled request. `None` = never.
    pub idle_timeout: Option<Duration>,
    /// Per-session formula-arena GC watermark floor handed to
    /// [`VerifySession::set_memory_limits`]. `None` = session default.
    pub arena_gc_floor: Option<usize>,
    /// Per-session decision-cache capacity. `None` = session default.
    pub decision_cache_cap: Option<usize>,
    /// Wall-clock budget applied to every `verify` request that does not
    /// carry its own `deadline_ms`. `None` = unbounded.
    pub default_deadline: Option<Duration>,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Path of the Unix domain socket to listen on.
    pub socket: PathBuf,
    /// Verifier configuration shared by every session.
    pub verify: VerifyOptions,
    /// Print one line per handled request to stderr.
    pub log: bool,
    /// Memory bounds (session LRU, idle sweep, per-session GC knobs).
    pub limits: ServerLimits,
    /// Directory for crash-recovery snapshots: loaded sources, their
    /// backends and the learned auto-portfolio winners are persisted
    /// after every mutating request, and a restarted daemon replays them
    /// so it comes back warm. `None` = no persistence.
    pub state_dir: Option<PathBuf>,
    /// Append one JSON object per handled request (id, cmd, outcome,
    /// queue-wait and handle latency) to this file. `None` = no log.
    pub log_file: Option<PathBuf>,
}

impl ServeOptions {
    /// Options for `socket` with default verification settings.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeOptions {
            socket: socket.into(),
            verify: VerifyOptions::default(),
            log: false,
            limits: ServerLimits::default(),
            state_dir: None,
            log_file: None,
        }
    }
}

/// Key of a warm session: programs are shared by structural hash *per
/// decision backend*, so `--backend bdd` and the daemon default each get
/// their own warm state for the same circuit.
type SessionKey = (u64, BackendKind);

/// One warm program: the elaborated circuit and its verification session.
struct ProgramSession {
    program: ElaboratedProgram,
    session: VerifySession,
    /// The source the session was built from (or last edited to),
    /// retained so a poisoned session can be rebuilt in place and so
    /// snapshots can replay the load after a crash.
    source: String,
    verifies: u64,
    /// Request-counter stamp of the last touch (LRU eviction order).
    last_used: u64,
    /// Wall-clock time of the last touch (idle eviction).
    last_used_at: Instant,
}

fn initial_values(program: &ElaboratedProgram) -> Vec<InitialValue> {
    (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            QubitKind::BorrowedDirty | QubitKind::TrustedDirty => InitialValue::Free,
        })
        .collect()
}

fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Remembered auto-portfolio winners kept across session eviction,
/// least-recently-touched entries evicted beyond this.
const AUTO_WINNERS_CAP: usize = 1024;

/// An `ok:false` response carrying the machine-readable `not_loaded`
/// code, so clients (notably `qborrow watch` across a daemon restart)
/// can fall back to a fresh `load` instead of failing forever.
fn not_loaded_response(name: &str) -> Json {
    coded_error_response(&format!("program {name:?} is not loaded"), "not_loaded")
}

/// A deadline watchdog: a helper thread that trips `token` when the
/// budget elapses, covering the window before the cooperative checks
/// inside the solver loops observe the deadline themselves (and making
/// every later check a cheap flag read). Dropping the guard wakes the
/// thread immediately, so an in-budget verify pays one condvar signal,
/// not a lingering thread per request.
struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(token: CancelToken, deadline: Duration) -> Watchdog {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*thread_state;
            let expires = Instant::now() + deadline;
            let mut done = lock.lock().unwrap();
            loop {
                if *done {
                    return;
                }
                let now = Instant::now();
                if now >= expires {
                    token.cancel();
                    return;
                }
                done = cvar.wait_timeout(done, expires - now).unwrap().0;
            }
        });
        Watchdog {
            state,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The request's wire command name, the label requests are metered
/// under.
fn request_cmd(request: &Request) -> &'static str {
    match request {
        Request::Load { .. } => "load",
        Request::Verify { .. } => "verify",
        Request::Edit { .. } => "edit",
        Request::Status => "status",
        Request::Metrics => "metrics",
        Request::Unload { .. } => "unload",
        Request::Shutdown => "shutdown",
    }
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a 64-bit, the snapshot checksum: torn or bit-flipped state files
/// are detected and discarded on restore instead of resurrecting a
/// corrupt session table.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The daemon's request handler, socket-free for testability: feed it
/// request lines, get response lines back.
pub struct Server {
    verify: VerifyOptions,
    /// Warm sessions, keyed by (structural hash, backend).
    sessions: HashMap<SessionKey, ProgramSession>,
    /// Client names aliasing into `sessions`.
    names: HashMap<String, SessionKey>,
    requests: u64,
    /// Memory bounds (session LRU, idle sweep, per-session GC knobs).
    limits: ServerLimits,
    /// Sessions evicted by the LRU bound or the idle sweep.
    session_evictions: u64,
    /// Per-circuit auto-portfolio memory: which backend won, keyed by
    /// structural hash. Survives session eviction and unload, so a
    /// reloaded circuit skips the losing backend attempt immediately.
    /// LRU-bounded ([`AUTO_WINNERS_CAP`]) like every other piece of
    /// per-circuit daemon state — an edit stream mints a fresh hash per
    /// reload, so an unbounded map would leak over weeks of uptime.
    auto_winners: HashMap<u64, (AutoPreference, u64)>,
    /// Snapshot directory ([`ServeOptions::state_dir`]); `None` = no
    /// persistence.
    state_dir: Option<PathBuf>,
    /// Set by mutating requests; cleared when a snapshot is written.
    state_dirty: bool,
    /// Snapshot writes that failed (logged, never fatal).
    snapshot_failures: u64,
    /// Sessions quarantined after a panic unwound out of them.
    quarantines: u64,
    /// Open request log ([`ServeOptions::log_file`]): one JSON object
    /// per handled request.
    log_sink: Option<std::fs::File>,
}

impl Server {
    /// Creates an empty server with no memory bounds.
    pub fn new(verify: VerifyOptions) -> Self {
        Server::with_limits(verify, ServerLimits::default())
    }

    /// Creates an empty server with the given memory bounds.
    pub fn with_limits(verify: VerifyOptions, limits: ServerLimits) -> Self {
        Server {
            verify,
            sessions: HashMap::new(),
            names: HashMap::new(),
            requests: 0,
            limits,
            session_evictions: 0,
            auto_winners: HashMap::new(),
            state_dir: None,
            state_dirty: false,
            snapshot_failures: 0,
            quarantines: 0,
            log_sink: None,
        }
    }

    /// Opens (appending) the per-request JSONL log.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created or opened for append.
    pub fn set_log_file(&mut self, path: &Path) -> std::io::Result<()> {
        self.log_sink = Some(
            std::fs::File::options()
                .create(true)
                .append(true)
                .open(path)?,
        );
        Ok(())
    }

    /// Directs crash-recovery snapshots to `dir` (`None` disables them).
    /// Call [`Server::restore_state`] afterwards to replay a previous
    /// run's snapshot.
    pub fn set_state_dir(&mut self, dir: Option<PathBuf>) {
        self.state_dir = dir;
    }

    /// Sessions quarantined after a panic unwound out of them.
    pub fn quarantined_sessions(&self) -> u64 {
        self.quarantines
    }

    /// Builds a session for `program` on `backend`, applying the
    /// configured per-session memory bounds and seeding the auto
    /// portfolio with the backend this circuit's structural hash is
    /// remembered to prefer.
    fn new_session(
        &self,
        program: &ElaboratedProgram,
        hash: u64,
        backend: BackendKind,
    ) -> Result<VerifySession, String> {
        let opts = VerifyOptions {
            backend,
            ..self.verify
        };
        let mut session = VerifySession::new(&program.circuit, &initial_values(program), &opts)
            .map_err(|e| e.to_string())?;
        if self.limits.arena_gc_floor.is_some() || self.limits.decision_cache_cap.is_some() {
            session.set_memory_limits(self.limits.arena_gc_floor, self.limits.decision_cache_cap);
        }
        if backend == BackendKind::Auto {
            if let Some(&(pref, _)) = self.auto_winners.get(&hash) {
                session.set_auto_preference(pref);
            }
        }
        Ok(session)
    }

    /// Records what the auto portfolio learned about a circuit, so the
    /// next session over the same structural hash skips the losing
    /// backend attempt.
    fn remember_auto(&mut self, key: SessionKey) {
        if key.1 != BackendKind::Auto {
            return;
        }
        if let Some(entry) = self.sessions.get(&key) {
            let pref = entry.session.auto_preference();
            if pref != AutoPreference::Undecided {
                if self.auto_winners.get(&key.0).map(|&(p, _)| p) != Some(pref) {
                    // A newly learned (or changed) winner is worth a
                    // snapshot; mere stamp refreshes are not.
                    self.state_dirty = true;
                }
                self.auto_winners.insert(key.0, (pref, self.requests));
                qb_formula::lru_evict_batch(
                    &mut self.auto_winners,
                    AUTO_WINNERS_CAP,
                    |&(_, stamp)| stamp,
                    |_, _| {},
                );
            }
        }
    }

    /// Resolves a request's optional backend name (`None` = the daemon
    /// default), rejecting unknown names with the valid list.
    fn resolve_backend(&self, requested: &Option<String>) -> Result<BackendKind, String> {
        match requested {
            None => Ok(self.verify.backend),
            Some(name) => BackendKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown backend {name:?} (valid backends: {})",
                    BackendKind::valid_names()
                )
            }),
        }
    }

    /// Handles one request line; returns the response line (no trailing
    /// newline) and whether the daemon should shut down.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        self.handle_line_queued(line, 0)
    }

    /// [`Server::handle_line`] with an explicit queue wait: `queue_ns`
    /// is how long the request sat received-but-unhandled (pipelined
    /// behind earlier requests). Every request is stamped with a daemon
    /// request id (the `"request_id"` response member), its queue-wait
    /// and handle latencies are recorded into the process metrics
    /// registry per request type, and one JSON object is appended to the
    /// request log when one is configured.
    pub fn handle_line_queued(&mut self, line: &str, queue_ns: u64) -> (String, bool) {
        self.requests += 1;
        let request_id = self.requests;
        let clock = Instant::now();
        let (cmd, mut response, shutdown) = match Request::parse(line) {
            Err(e) => ("malformed", error_response(&e), false),
            Ok(request) => {
                let cmd = request_cmd(&request);
                let shutdown = request == Request::Shutdown;
                let response = self.handle(request);
                // The request just handled refreshed its own session's
                // stamps, so the sweep only reaps genuinely idle ones.
                self.sweep_idle();
                self.persist_state();
                (cmd, response, shutdown)
            }
        };
        let handle_ns = clock.elapsed().as_nanos() as u64;
        qb_obs::counter_add("requests", cmd, 1);
        qb_obs::observe_ns("request_handle", cmd, handle_ns);
        qb_obs::observe_ns("request_queue_wait", cmd, queue_ns);
        if let Json::Obj(members) = &mut response {
            members.insert("request_id".into(), Json::Int(request_id as i64));
        }
        self.log_request(request_id, cmd, &response, queue_ns, handle_ns);
        (response.to_string(), shutdown)
    }

    /// Appends one request record to the JSONL log, if one is open.
    /// Write failures are silently dropped: logging must never take the
    /// daemon down.
    fn log_request(&mut self, id: u64, cmd: &str, response: &Json, queue_ns: u64, handle_ns: u64) {
        let Some(sink) = &mut self.log_sink else {
            return;
        };
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        let record = Json::obj(vec![
            ("ts_ms", Json::Int(ts_ms)),
            ("request_id", Json::Int(id as i64)),
            ("cmd", Json::Str(cmd.to_string())),
            (
                "ok",
                Json::Bool(response.get("ok").and_then(Json::as_bool) == Some(true)),
            ),
            ("queue_ns", Json::Int(queue_ns as i64)),
            ("handle_ns", Json::Int(handle_ns as i64)),
        ]);
        let _ = writeln!(sink, "{record}");
    }

    /// Number of loaded (hash-distinct) sessions.
    pub fn loaded_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions evicted so far (LRU bound + idle sweep).
    pub fn session_evictions(&self) -> u64 {
        self.session_evictions
    }

    /// Marks a session as just used (LRU + idle bookkeeping).
    fn touch(&mut self, key: SessionKey) {
        let stamp = self.requests;
        if let Some(entry) = self.sessions.get_mut(&key) {
            entry.last_used = stamp;
            entry.last_used_at = Instant::now();
        }
    }

    /// Evicts `key` and every name aliasing it.
    fn evict(&mut self, key: SessionKey) {
        self.remember_auto(key);
        if self.sessions.remove(&key).is_some() {
            self.names.retain(|_, k| *k != key);
            self.session_evictions += 1;
            self.state_dirty = true;
        }
    }

    /// Enforces the LRU bound, never evicting `protect` (the session the
    /// current request just created or touched).
    fn evict_over_capacity(&mut self, protect: SessionKey) {
        let Some(max) = self.limits.max_sessions else {
            return;
        };
        let max = max.max(1);
        while self.sessions.len() > max {
            let victim = self
                .sessions
                .iter()
                .filter(|(&k, _)| k != protect)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => self.evict(k),
                None => return,
            }
        }
    }

    /// Evicts every session idle past the configured timeout.
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.limits.idle_timeout else {
            return;
        };
        let stale: Vec<SessionKey> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.last_used_at.elapsed() >= timeout)
            .map(|(&k, _)| k)
            .collect();
        for key in stale {
            self.evict(key);
        }
    }

    /// Dispatches one request with panic isolation: a panic unwinding
    /// out of a session (a solver bug, an injected failpoint) poisons
    /// only that session — it is quarantined and rebuilt from its
    /// retained source while the daemon answers with a structured
    /// `internal_error` and keeps serving every other program.
    fn handle(&mut self, request: Request) -> Json {
        let touched = match &request {
            Request::Load { name, .. }
            | Request::Verify { name, .. }
            | Request::Edit { name, .. }
            | Request::Unload { name } => Some(name.clone()),
            Request::Status | Request::Metrics | Request::Shutdown => None,
        };
        // The session table itself is only mutated between session
        // calls, so an unwind can leave a *session* inconsistent but
        // never the table: quarantining the named session restores the
        // server invariants.
        match std::panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(request))) {
            Ok(response) => response,
            Err(payload) => {
                self.quarantines += 1;
                self.state_dirty = true;
                let mut pairs = vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::Str(format!(
                            "internal panic while handling the request: {}",
                            panic_text(payload.as_ref())
                        )),
                    ),
                    ("code", Json::Str("internal_error".to_string())),
                ];
                if let Some(name) = touched {
                    let rebuilt = self.quarantine(&name);
                    pairs.push(("quarantined", Json::Str(name)));
                    pairs.push(("rebuilt", Json::Bool(rebuilt)));
                }
                Json::obj(pairs)
            }
        }
    }

    fn dispatch(&mut self, request: Request) -> Json {
        match request {
            Request::Load {
                name,
                source,
                backend,
            } => self.load(name, &source, &backend),
            Request::Verify {
                name,
                targets,
                deadline_ms,
                trace,
            } => self.run_verify(&name, targets, deadline_ms, trace),
            Request::Edit {
                name,
                source,
                backend,
            } => self.edit(&name, &source, &backend),
            Request::Status => self.status(),
            Request::Metrics => self.metrics(),
            Request::Unload { name } => self.unload(&name),
            Request::Shutdown => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("shutdown", Json::Bool(true)),
            ]),
        }
    }

    /// Removes `name`'s session (any state a panic left behind is
    /// untrusted) and rebuilds it from the retained source. Returns
    /// whether the rebuild succeeded; on failure every alias of the
    /// session is dropped, so clients see `not_loaded` and re-`load`.
    fn quarantine(&mut self, name: &str) -> bool {
        let Some(&key) = self.names.get(name) else {
            return false;
        };
        let Some(poisoned) = self.sessions.remove(&key) else {
            self.names.remove(name);
            return false;
        };
        let source = poisoned.source;
        drop(poisoned.session);
        let rebuilt = Self::elaborate_source(&source).and_then(|program| {
            self.new_session(&program, key.0, key.1)
                .map(|session| (program, session))
        });
        match rebuilt {
            Ok((program, session)) => {
                self.sessions.insert(
                    key,
                    ProgramSession {
                        program,
                        session,
                        source,
                        verifies: 0,
                        last_used: self.requests,
                        last_used_at: Instant::now(),
                    },
                );
                true
            }
            Err(_) => {
                self.names.retain(|_, k| *k != key);
                false
            }
        }
    }

    fn elaborate_source(source: &str) -> Result<ElaboratedProgram, String> {
        let ast = parse(source).map_err(|e| e.to_string())?;
        elaborate(&ast).map_err(|e| e.to_string())
    }

    fn program_summary(
        name: &str,
        key: SessionKey,
        entry: &ProgramSession,
    ) -> Vec<(&'static str, Json)> {
        let (hash, backend) = key;
        let stats = entry.session.stats();
        vec![
            ("name", Json::Str(name.to_string())),
            ("hash", Json::Str(hash_hex(hash))),
            ("backend", Json::Str(backend.to_string())),
            ("qubits", Json::Int(entry.program.num_qubits() as i64)),
            ("gates", Json::Int(entry.program.circuit.size() as i64)),
            (
                "targets",
                Json::Arr(
                    entry
                        .program
                        .qubits_to_verify()
                        .iter()
                        .map(|&q| Json::Int(q as i64))
                        .collect(),
                ),
            ),
            ("verifies", Json::Int(entry.verifies as i64)),
            ("edits", Json::Int(stats.edits as i64)),
            ("arena_nodes", Json::Int(stats.arena_nodes as i64)),
            ("solver_vars", Json::Int(stats.solver_vars as i64)),
            ("clause_slots", Json::Int(stats.clause_slots as i64)),
            ("live_clauses", Json::Int(stats.live_clauses as i64)),
            ("compactions", Json::Int(stats.compactions as i64)),
            ("cached_decisions", Json::Int(stats.cached_decisions as i64)),
            ("decision_hits", Json::Int(stats.decision_hits as i64)),
            (
                "decision_evictions",
                Json::Int(stats.decision_evictions as i64),
            ),
            (
                "arena_collections",
                Json::Int(stats.arena_collections as i64),
            ),
            (
                "arena_nodes_collected",
                Json::Int(stats.arena_nodes_collected as i64),
            ),
            (
                "arena_gc_watermark",
                Json::Int(stats.arena_gc_watermark as i64),
            ),
            (
                "bdd_resident_nodes",
                Json::Int(stats.bdd_resident_nodes as i64),
            ),
            (
                "bdd_cached_translations",
                Json::Int(stats.bdd_cached_translations as i64),
            ),
            ("bdd_collections", Json::Int(stats.bdd_collections as i64)),
            ("bdd_fallbacks", Json::Int(stats.bdd_fallbacks as i64)),
            ("interrupts", Json::Int(stats.interrupts as i64)),
            (
                "deadline_fallbacks",
                Json::Int(stats.deadline_fallbacks as i64),
            ),
            ("anf_cached_polys", Json::Int(stats.anf_cached_polys as i64)),
            (
                "auto_preference",
                Json::Str(stats.auto_preference.name().into()),
            ),
            (
                "solver_propagations",
                Json::Int(stats.solver_propagations as i64),
            ),
            ("solver_conflicts", Json::Int(stats.solver_conflicts as i64)),
            ("solver_restarts", Json::Int(stats.solver_restarts as i64)),
            ("solver_vivified", Json::Int(stats.solver_vivified as i64)),
            ("sat_ns", Json::Int(stats.sat_time.as_nanos() as i64)),
            ("bdd_ns", Json::Int(stats.bdd_time.as_nanos() as i64)),
            ("anf_ns", Json::Int(stats.anf_time.as_nanos() as i64)),
            ("encode_ns", Json::Int(stats.encode_time.as_nanos() as i64)),
            (
                "cofactor_ns",
                Json::Int(stats.cofactor_time.as_nanos() as i64),
            ),
            (
                "target_p50_us",
                Json::Int((stats.target_latency.p50() / 1_000) as i64),
            ),
            (
                "target_p95_us",
                Json::Int((stats.target_latency.p95() / 1_000) as i64),
            ),
            (
                "idle_ms",
                Json::Int(entry.last_used_at.elapsed().as_millis() as i64),
            ),
        ]
    }

    fn load(&mut self, name: String, source: &str, backend: &Option<String>) -> Json {
        let program = match Self::elaborate_source(source) {
            Ok(p) => p,
            Err(e) => return error_response(&e),
        };
        let hash = structural_hash(&program);
        // Backend selection is sticky: a backend-less load of a name
        // that already holds a session keeps that session's backend —
        // whatever the source now hashes to — so a plain `client
        // verify` after a `--backend bdd` one stays on BDD instead of
        // silently rebuilding on the daemon default. Only fresh names
        // fall to the default.
        let backend = match backend {
            Some(_) => match self.resolve_backend(backend) {
                Ok(b) => b,
                Err(e) => return error_response(&e),
            },
            None => match self.names.get(&name) {
                Some(&(_, kind)) => kind,
                None => self.verify.backend,
            },
        };
        let key = (hash, backend);
        let reused = self.sessions.contains_key(&key);
        if !reused {
            let session = match self.new_session(&program, hash, backend) {
                Ok(s) => s,
                Err(e) => return error_response(&e),
            };
            self.sessions.insert(
                key,
                ProgramSession {
                    program,
                    session,
                    source: source.to_string(),
                    verifies: 0,
                    last_used: self.requests,
                    last_used_at: Instant::now(),
                },
            );
        }
        // Rebind the name; drop a previously bound session if this name
        // was its last alias.
        if let Some(old) = self.names.insert(name.clone(), key) {
            if old != key {
                self.drop_if_unaliased(old);
            }
        }
        self.touch(key);
        self.evict_over_capacity(key);
        self.state_dirty = true;
        let Some(entry) = self.sessions.get(&key) else {
            return self.desync(&name);
        };
        let mut pairs = vec![("ok", Json::Bool(true)), ("reused", Json::Bool(reused))];
        pairs.extend(Self::program_summary(&name, key, entry));
        Json::obj(pairs)
    }

    /// Self-heals a dangling name→session alias (a broken internal
    /// invariant): the alias is dropped and the client told to reload,
    /// instead of the pre-hardening behaviour of killing the daemon —
    /// and every other loaded program — with an `expect` panic.
    fn desync(&mut self, name: &str) -> Json {
        self.names.remove(name);
        self.state_dirty = true;
        coded_error_response(
            &format!("session table desynchronised for {name:?}; alias dropped, please reload"),
            "internal_error",
        )
    }

    fn run_verify(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
        trace: bool,
    ) -> Json {
        let Some(&key) = self.names.get(name) else {
            return not_loaded_response(name);
        };
        self.touch(key);
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.limits.default_deadline);
        let Some(entry) = self.sessions.get_mut(&key) else {
            return self.desync(name);
        };
        let targets = targets.unwrap_or_else(|| entry.program.qubits_to_verify());
        let t0 = Instant::now();
        // A traced request flips span recording on for the duration of
        // the sweep (discarding stale spans first) and restores the
        // previous state before any return path, success or error.
        let was_enabled = qb_obs::enabled();
        if trace {
            let _ = qb_obs::take_all_spans();
            qb_obs::set_enabled(true);
        }
        let verdicts = match deadline {
            None => entry.session.verify_targets(&targets),
            Some(budget) => {
                let token = CancelToken::new();
                let limits = VerifyLimits {
                    deadline: Some(budget),
                    token: Some(token.clone()),
                    ..VerifyLimits::default()
                };
                // The watchdog hard-trips the token at the deadline;
                // dropping the guard after the sweep retires it.
                let _watchdog = Watchdog::arm(token, budget);
                entry.session.verify_targets_limited(&targets, &limits)
            }
        };
        let trace_json = if trace {
            qb_obs::set_enabled(was_enabled);
            Some(qb_obs::chrome_trace(&qb_obs::take_all_spans()))
        } else {
            None
        };
        let verdicts = match verdicts {
            Ok(v) => v,
            Err(e) => return error_response(&e.to_string()),
        };
        let solve_ns = t0.elapsed().as_nanos() as i64;
        entry.verifies += 1;
        let all_safe = verdicts.iter().all(|v| v.safe);
        let unknowns = verdicts.iter().filter(|v| v.verdict.is_unknown()).count();
        let rendered: Vec<Json> = verdicts
            .iter()
            .map(|v| render_verdict(&entry.program, v))
            .collect();
        let stats = entry.session.stats();
        let verifies = entry.verifies;
        self.remember_auto(key);
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.to_string())),
            ("hash", Json::Str(hash_hex(key.0))),
            ("backend", Json::Str(key.1.to_string())),
            ("all_safe", Json::Bool(all_safe)),
            ("unknowns", Json::Int(unknowns as i64)),
            ("verdicts", Json::Arr(rendered)),
            ("solve_ns", Json::Int(solve_ns)),
            ("verifies", Json::Int(verifies as i64)),
            ("compactions", Json::Int(stats.compactions as i64)),
            ("bdd_fallbacks", Json::Int(stats.bdd_fallbacks as i64)),
            ("interrupts", Json::Int(stats.interrupts as i64)),
            (
                "deadline_fallbacks",
                Json::Int(stats.deadline_fallbacks as i64),
            ),
            (
                "auto_preference",
                Json::Str(stats.auto_preference.name().into()),
            ),
            (
                "solver_propagations",
                Json::Int(stats.solver_propagations as i64),
            ),
            ("solver_conflicts", Json::Int(stats.solver_conflicts as i64)),
            ("solver_restarts", Json::Int(stats.solver_restarts as i64)),
            ("solver_vivified", Json::Int(stats.solver_vivified as i64)),
            ("encode_ns", Json::Int(stats.encode_time.as_nanos() as i64)),
            (
                "cofactor_ns",
                Json::Int(stats.cofactor_time.as_nanos() as i64),
            ),
            (
                "target_p50_us",
                Json::Int((stats.target_latency.p50() / 1_000) as i64),
            ),
            (
                "target_p95_us",
                Json::Int((stats.target_latency.p95() / 1_000) as i64),
            ),
            (
                "root_p50_us",
                Json::Int((stats.root_latency.p50() / 1_000) as i64),
            ),
            (
                "root_p95_us",
                Json::Int((stats.root_latency.p95() / 1_000) as i64),
            ),
        ];
        if let Some(budget) = deadline {
            pairs.push(("deadline_ms", Json::Int(budget.as_millis() as i64)));
        }
        if let Some(trace_json) = trace_json {
            pairs.push(("trace", Json::Str(trace_json)));
        }
        Json::obj(pairs)
    }

    fn edit(&mut self, name: &str, source: &str, backend: &Option<String>) -> Json {
        let Some(&old_key) = self.names.get(name) else {
            return not_loaded_response(name);
        };
        // An edit keeps its session's backend unless one is requested.
        let backend = match backend {
            None => old_key.1,
            Some(_) => match self.resolve_backend(backend) {
                Ok(b) => b,
                Err(e) => return error_response(&e),
            },
        };
        let program = match Self::elaborate_source(source) {
            Ok(p) => p,
            Err(e) => return error_response(&e),
        };
        let new_key = (structural_hash(&program), backend);
        if new_key == old_key {
            self.touch(old_key);
            let Some(entry) = self.sessions.get(&old_key) else {
                return self.desync(name);
            };
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("changed", Json::Bool(false)),
                ("strategy", Json::Str("identical".into())),
            ];
            pairs.extend(Self::program_summary(name, old_key, entry));
            return Json::obj(pairs);
        }
        // An identical program is already warm under another name (or
        // backend): just re-alias, dropping our old session if unaliased.
        if self.sessions.contains_key(&new_key) {
            self.names.insert(name.to_string(), new_key);
            self.drop_if_unaliased(old_key);
            self.touch(new_key);
            self.state_dirty = true;
            let Some(entry) = self.sessions.get(&new_key) else {
                return self.desync(name);
            };
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("changed", Json::Bool(true)),
                ("strategy", Json::Str("aliased".into())),
            ];
            pairs.extend(Self::program_summary(name, new_key, entry));
            return Json::obj(pairs);
        }

        let aliased = self.names.values().filter(|&&k| k == old_key).count() > 1;
        let Some(old_entry) = self.sessions.get(&old_key) else {
            return self.desync(name);
        };
        let kinds_match = old_entry.program.qubit_kinds == program.qubit_kinds;
        let diff = gate_diff(old_entry.program.circuit.gates(), program.circuit.gates());

        // Incremental path: exclusive session on the same backend with
        // an unchanged qubit layout. Otherwise fall back to a fresh
        // session for this name.
        if !aliased && kinds_match && backend == old_key.1 {
            let Some(mut entry) = self.sessions.remove(&old_key) else {
                return self.desync(name);
            };
            match entry.session.apply_edit(&program.circuit) {
                Ok(stats) => {
                    entry.program = program;
                    entry.source = source.to_string();
                    self.sessions.insert(new_key, entry);
                    self.names.insert(name.to_string(), new_key);
                    self.touch(new_key);
                    self.state_dirty = true;
                    let Some(entry) = self.sessions.get(&new_key) else {
                        return self.desync(name);
                    };
                    let mut pairs = vec![
                        ("ok", Json::Bool(true)),
                        ("changed", Json::Bool(true)),
                        ("strategy", Json::Str("incremental".into())),
                        ("common_prefix", Json::Int(stats.common_prefix as i64)),
                        ("removed_gates", Json::Int(diff.removed as i64)),
                        ("added_gates", Json::Int(diff.added as i64)),
                        ("permanent_prefix", Json::Int(stats.permanent_prefix as i64)),
                        ("suffix_clauses", Json::Int(stats.suffix_clauses as i64)),
                        ("edit_ns", Json::Int(stats.elapsed.as_nanos() as i64)),
                    ];
                    pairs.extend(Self::program_summary(name, new_key, entry));
                    return Json::obj(pairs);
                }
                Err(VerifyError::IncompatibleEdit { .. }) => {
                    // Qubit layout changed: put the old session back and
                    // fall through to the reload path.
                    self.sessions.insert(old_key, entry);
                }
                Err(e) => {
                    self.sessions.insert(old_key, entry);
                    return error_response(&e.to_string());
                }
            }
        }

        // Reload path: build a fresh session for the edited program.
        let session = match self.new_session(&program, new_key.0, backend) {
            Ok(s) => s,
            Err(e) => return error_response(&e),
        };
        self.sessions.insert(
            new_key,
            ProgramSession {
                program,
                session,
                source: source.to_string(),
                verifies: 0,
                last_used: self.requests,
                last_used_at: Instant::now(),
            },
        );
        self.names.insert(name.to_string(), new_key);
        self.drop_if_unaliased(old_key);
        self.evict_over_capacity(new_key);
        self.state_dirty = true;
        let Some(entry) = self.sessions.get(&new_key) else {
            return self.desync(name);
        };
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("changed", Json::Bool(true)),
            ("strategy", Json::Str("reload".into())),
            ("common_prefix", Json::Int(diff.common_prefix as i64)),
            ("removed_gates", Json::Int(diff.removed as i64)),
            ("added_gates", Json::Int(diff.added as i64)),
        ];
        pairs.extend(Self::program_summary(name, new_key, entry));
        Json::obj(pairs)
    }

    fn status(&self) -> Json {
        let mut names: Vec<&String> = self.names.keys().collect();
        names.sort();
        let programs: Vec<Json> = names
            .iter()
            .filter_map(|name| {
                // A dangling alias (broken invariant) is skipped rather
                // than panicking the whole daemon out from under every
                // other loaded program.
                let key = self.names[*name];
                let entry = self.sessions.get(&key)?;
                Some(Json::obj(
                    Self::program_summary(name, key, entry)
                        .into_iter()
                        .collect(),
                ))
            })
            .collect();
        let resident_nodes: usize = self
            .sessions
            .values()
            .map(|s| s.session.stats().arena_nodes)
            .sum();
        let resident_bdd: usize = self
            .sessions
            .values()
            .map(|s| s.session.stats().bdd_resident_nodes)
            .sum();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("programs", Json::Arr(programs)),
            ("sessions", Json::Int(self.sessions.len() as i64)),
            (
                "max_sessions",
                match self.limits.max_sessions {
                    Some(n) => Json::Int(n as i64),
                    None => Json::Null,
                },
            ),
            (
                "session_evictions",
                Json::Int(self.session_evictions as i64),
            ),
            ("resident_arena_nodes", Json::Int(resident_nodes as i64)),
            ("resident_bdd_nodes", Json::Int(resident_bdd as i64)),
            (
                "auto_winners_remembered",
                Json::Int(self.auto_winners.len() as i64),
            ),
            ("quarantines", Json::Int(self.quarantines as i64)),
            (
                "snapshot_failures",
                Json::Int(self.snapshot_failures as i64),
            ),
            ("state_persisted", Json::Bool(self.state_dir.is_some())),
            (
                "default_deadline_ms",
                match self.limits.default_deadline {
                    Some(d) => Json::Int(d.as_millis() as i64),
                    None => Json::Null,
                },
            ),
            ("requests", Json::Int(self.requests as i64)),
        ])
    }

    /// Renders the process metrics registry — request counters and
    /// latency histograms, solver-phase counters, backend cache rates —
    /// in the Prometheus text exposition format, folding in the warm
    /// sessions' per-target and per-root latency histograms.
    fn metrics(&self) -> Json {
        let mut target = qb_obs::Histogram::new();
        let mut root = qb_obs::Histogram::new();
        for entry in self.sessions.values() {
            let stats = entry.session.stats();
            target.merge(&stats.target_latency);
            root.merge(&stats.root_latency);
        }
        let text = qb_obs::prometheus_text(
            &qb_obs::metrics_snapshot(),
            &[
                ("target_latency", "all", target),
                ("root_latency", "all", root),
            ],
        );
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", Json::Str(text)),
            ("sessions", Json::Int(self.sessions.len() as i64)),
            ("requests", Json::Int(self.requests as i64)),
        ])
    }

    fn unload(&mut self, name: &str) -> Json {
        match self.names.remove(name) {
            None => not_loaded_response(name),
            Some(key) => {
                self.drop_if_unaliased(key);
                self.state_dirty = true;
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("unloaded", Json::Str(name.to_string())),
                    ("sessions", Json::Int(self.sessions.len() as i64)),
                ])
            }
        }
    }

    fn drop_if_unaliased(&mut self, key: SessionKey) {
        if !self.names.values().any(|&k| k == key) {
            self.remember_auto(key);
            self.sessions.remove(&key);
        }
    }

    /// The snapshot payload: every name with its retained source and
    /// backend (sorted for a deterministic file), plus the learned
    /// auto-portfolio winners. Sessions are *not* serialised — solver
    /// state is rebuilt by replaying the loads, which provably reaches
    /// the same verdicts (it is the same code path a cold client takes).
    fn state_payload(&self) -> Json {
        let mut names: Vec<&String> = self.names.keys().collect();
        names.sort();
        let programs: Vec<Json> = names
            .iter()
            .filter_map(|name| {
                let key = self.names[*name];
                let entry = self.sessions.get(&key)?;
                Some(Json::obj(vec![
                    ("name", Json::Str((*name).clone())),
                    ("backend", Json::Str(key.1.to_string())),
                    ("source", Json::Str(entry.source.clone())),
                ]))
            })
            .collect();
        let mut winners: Vec<(&u64, &(AutoPreference, u64))> = self.auto_winners.iter().collect();
        winners.sort_by_key(|&(hash, _)| hash);
        let winners: Vec<Json> = winners
            .into_iter()
            .map(|(&hash, &(pref, _))| {
                Json::Arr(vec![
                    Json::Str(hash_hex(hash)),
                    Json::Str(pref.name().to_string()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("auto_winners", Json::Arr(winners)),
            ("programs", Json::Arr(programs)),
        ])
    }

    /// Writes the snapshot if one is due. Failures are counted and
    /// logged, never fatal: a daemon that cannot persist still serves.
    fn persist_state(&mut self) {
        let Some(dir) = self.state_dir.clone() else {
            return;
        };
        if !self.state_dirty {
            return;
        }
        // Fold what live auto sessions have learned into the winner map
        // before serialising, so a crash right after this write already
        // knows the preference.
        let keys: Vec<SessionKey> = self.sessions.keys().copied().collect();
        for key in keys {
            self.remember_auto(key);
        }
        let payload = self.state_payload().to_string();
        match write_snapshot(&dir, &payload) {
            // Still dirty on failure: the next handled request retries.
            Ok(()) => self.state_dirty = false,
            Err(e) => {
                self.snapshot_failures += 1;
                eprintln!("qb-serve: snapshot write failed ({e}); will retry after next request");
            }
        }
    }

    /// Replays the snapshot in the configured state directory, if any:
    /// seeds the auto-portfolio winners, then re-loads every program
    /// under its name and backend. Returns the number of programs
    /// restored. A missing, torn or checksum-failing snapshot starts
    /// cold (logged, never fatal).
    pub fn restore_state(&mut self) -> usize {
        let Some(dir) = self.state_dir.clone() else {
            return 0;
        };
        let path = dir.join(STATE_FILE);
        let data = match std::fs::read_to_string(&path) {
            Ok(d) => d,
            Err(_) => return 0,
        };
        let mut lines = data.lines();
        let (payload, checksum) = match (lines.next(), lines.next()) {
            (Some(p), Some(c)) => (p, c),
            _ => {
                eprintln!(
                    "qb-serve: snapshot {} is truncated; starting cold",
                    path.display()
                );
                return 0;
            }
        };
        if checksum.trim() != format!("{:016x}", fnv1a64(payload.as_bytes())) {
            eprintln!(
                "qb-serve: snapshot {} fails its checksum; starting cold",
                path.display()
            );
            return 0;
        }
        let Ok(state) = Json::parse(payload) else {
            eprintln!(
                "qb-serve: snapshot {} is not valid JSON; starting cold",
                path.display()
            );
            return 0;
        };
        // Winners first, so the replayed loads seed their auto sessions
        // with the learned preference instead of re-learning it.
        if let Some(winners) = state.get("auto_winners").and_then(Json::as_arr) {
            for winner in winners {
                let Some(pair) = winner.as_arr() else {
                    continue;
                };
                let (Some(hash), Some(pref)) = (
                    pair.first().and_then(Json::as_str),
                    pair.get(1).and_then(Json::as_str),
                ) else {
                    continue;
                };
                if let (Ok(hash), Some(pref)) =
                    (u64::from_str_radix(hash, 16), AutoPreference::parse(pref))
                {
                    self.auto_winners.insert(hash, (pref, self.requests));
                }
            }
        }
        let mut restored = 0;
        if let Some(programs) = state.get("programs").and_then(Json::as_arr) {
            for program in programs {
                let (Some(name), Some(source)) = (
                    program.get("name").and_then(Json::as_str),
                    program.get("source").and_then(Json::as_str),
                ) else {
                    continue;
                };
                let backend = program
                    .get("backend")
                    .and_then(Json::as_str)
                    .map(String::from);
                let response = self.load(name.to_string(), source, &backend);
                if response.get("ok").and_then(Json::as_bool) == Some(true) {
                    restored += 1;
                } else {
                    eprintln!("qb-serve: snapshot replay of {name:?} failed: {response}");
                }
            }
        }
        // Replaying loads marked the state dirty; the snapshot on disk
        // already says exactly this, so suppress the rewrite.
        self.state_dirty = false;
        restored
    }
}

/// Snapshot file name inside [`ServeOptions::state_dir`].
const STATE_FILE: &str = "state.json";

/// Atomically replaces the snapshot: payload line + checksum line to a
/// temp file, fsync'd, then renamed over the live name — a crash at any
/// instant leaves either the old complete snapshot or the new one.
fn write_snapshot(dir: &Path, payload: &str) -> std::io::Result<()> {
    if qb_testutil::failpoints::should_fail("snapshot_write") {
        return Err(std::io::Error::other("injected snapshot_write failure"));
    }
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join("state.json.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(payload.as_bytes())?;
        file.write_all(b"\n")?;
        file.write_all(format!("{:016x}\n", fnv1a64(payload.as_bytes())).as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(STATE_FILE))
}

fn render_verdict(program: &ElaboratedProgram, v: &QubitVerdict) -> Json {
    let mut pairs = vec![
        ("qubit", Json::Int(v.qubit as i64)),
        ("name", Json::Str(program.qubit_name(v.qubit).to_string())),
        ("safe", Json::Bool(v.safe)),
        ("verdict", Json::Str(v.verdict.name().to_string())),
        ("zero_ns", Json::Int(v.zero_time.as_nanos() as i64)),
        ("plus_ns", Json::Int(v.plus_time.as_nanos() as i64)),
    ];
    if let Verdict::Unknown { reason } = &v.verdict {
        pairs.push(("reason", Json::Str(reason.clone())));
    }
    if let Some(ce) = &v.counterexample {
        pairs.push(("violation", Json::Str(ce.violation.to_string())));
        if let Some(bits) = &ce.basis_assignment {
            pairs.push((
                "witness",
                Json::Arr(bits.iter().map(|&b| Json::Bool(b)).collect()),
            ));
        }
    }
    Json::obj(pairs)
}

/// Runs the daemon: binds `opts.socket`, serves connections until a
/// `shutdown` request arrives, then removes the socket file.
///
/// # Errors
///
/// Fails when the socket cannot be bound. Per-connection I/O errors are
/// logged and do not stop the daemon.
pub fn run(opts: &ServeOptions) -> std::io::Result<()> {
    if opts.socket.exists() {
        // Only reclaim the path if nothing is listening on it: unlinking
        // a live daemon's socket would strand it (and its warm sessions)
        // unreachable forever.
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("a daemon is already serving on {}", opts.socket.display()),
            ));
        }
        // A previous daemon crashed or was killed: reclaim the path.
        std::fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    if opts.log {
        let bound = match opts.limits.max_sessions {
            Some(n) => format!(", max {n} sessions"),
            None => String::new(),
        };
        eprintln!(
            "qb-serve: listening on {} (backend {}, {:?}{bound})",
            opts.socket.display(),
            opts.verify.backend,
            opts.verify.simplify
        );
    }
    let mut server = Server::with_limits(opts.verify, opts.limits);
    if let Some(path) = &opts.log_file {
        if let Err(e) = server.set_log_file(path) {
            eprintln!(
                "qb-serve: cannot open request log {} ({e}); continuing without one",
                path.display()
            );
        }
    }
    if let Some(dir) = &opts.state_dir {
        server.set_state_dir(Some(dir.clone()));
        let restored = server.restore_state();
        if opts.log && restored > 0 {
            eprintln!(
                "qb-serve: restored {restored} program(s) from {}",
                dir.display()
            );
        }
    }
    for stream in listener.incoming() {
        match stream {
            Err(e) => {
                eprintln!("qb-serve: accept failed: {e}");
            }
            Ok(stream) => match serve_connection(stream, &mut server, opts.log) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => eprintln!("qb-serve: connection error: {e}"),
            },
        }
    }
    let _ = std::fs::remove_file(&opts.socket);
    if opts.log {
        eprintln!("qb-serve: shut down");
    }
    Ok(())
}

/// Upper bound on one request line (16 MiB). Program sources are at most
/// a few hundred KiB even at paper scale; anything larger is a confused
/// or malicious client, and buffering it unchecked would let one
/// connection exhaust the daemon's memory.
const MAX_REQUEST_LINE: u64 = 16 * 1024 * 1024;

/// Serves one connection; returns `true` when a shutdown was requested.
///
/// Malformed input never drops the connection: an oversized line is
/// drained and answered with an `"oversized"`-coded error, invalid UTF-8
/// with `"invalid_utf8"`, and the client can keep sending requests.
fn serve_connection(stream: UnixStream, server: &mut Server, log: bool) -> std::io::Result<bool> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Stamp of the last response (or connection start): a request that
    // was already buffered when it was taken has been queuing since then.
    let mut idle_since = Instant::now();
    loop {
        let pipelined = !reader.buffer().is_empty();
        let mut buf: Vec<u8> = Vec::new();
        let n = (&mut reader)
            .take(MAX_REQUEST_LINE + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(false); // client hung up
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() as u64 > MAX_REQUEST_LINE {
            // The cap truncated the line mid-way: discard the rest of it
            // so the stream resynchronises on the next newline.
            drain_to_newline(&mut reader)?;
            let response = coded_error_response(
                &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                "oversized",
            );
            respond(&mut writer, &response.to_string())?;
            continue;
        }
        let line = match String::from_utf8(buf) {
            Ok(s) => s,
            Err(_) => {
                let response =
                    coded_error_response("request line is not valid UTF-8", "invalid_utf8");
                respond(&mut writer, &response.to_string())?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // A pipelined request sat in the read buffer while earlier ones
        // were handled; an idle connection's request waited ~nothing.
        let queue_ns = if pipelined {
            idle_since.elapsed().as_nanos() as u64
        } else {
            0
        };
        let t0 = Instant::now();
        let (response, shutdown) = server.handle_line_queued(&line, queue_ns);
        if log {
            let cmd = Json::parse(&line)
                .ok()
                .and_then(|v| v.get("cmd").and_then(Json::as_str).map(String::from))
                .unwrap_or_else(|| "<malformed>".into());
            eprintln!(
                "qb-serve: {cmd} -> {} bytes in {:?}",
                response.len(),
                t0.elapsed()
            );
        }
        respond(&mut writer, &response)?;
        idle_since = Instant::now();
        if shutdown {
            return Ok(true);
        }
    }
}

fn respond(writer: &mut UnixStream, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Discards bytes up to and including the next newline (or EOF), in
/// bounded chunks so an adversarial endless line cannot pin memory.
fn drain_to_newline(reader: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let mut chunk: Vec<u8> = Vec::new();
        let n = reader
            .by_ref()
            .take(1 << 20)
            .read_until(b'\n', &mut chunk)?;
        if n == 0 || chunk.last() == Some(&b'\n') {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn handle(server: &mut Server, line: &str) -> Json {
        let (resp, _) = server.handle_line(line);
        Json::parse(&resp).unwrap()
    }

    const GOOD: &str = "borrow@ q[4]; borrow a; CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; \
                        CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; release a;";
    const BROKEN: &str = "borrow@ q[4]; borrow a; CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; \
                          CCNOT[q[1], q[2], a];";

    #[test]
    fn load_verify_edit_cycle() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        assert_eq!(load.get("qubits").unwrap().as_i64(), Some(5));
        assert_eq!(load.get("reused").unwrap().as_bool(), Some(false));

        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        assert_eq!(verify.get("all_safe").unwrap().as_bool(), Some(true));

        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "cccnot".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("incremental"));
        assert_eq!(edit.get("common_prefix").unwrap().as_i64(), Some(3));

        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        assert_eq!(verify.get("all_safe").unwrap().as_bool(), Some(false));
        assert_eq!(server.loaded_sessions(), 1, "edit rekeys, not duplicates");
    }

    #[test]
    fn responses_carry_monotonic_request_ids() {
        let mut server = Server::new(VerifyOptions::default());
        let first = handle(&mut server, &Request::Status.to_line());
        let second = handle(&mut server, &Request::Status.to_line());
        let id = |v: &Json| v.get("request_id").and_then(Json::as_i64).unwrap();
        assert_eq!(id(&second), id(&first) + 1);
        // Even malformed requests are metered and stamped.
        let bad = handle(&mut server, "not json");
        assert_eq!(id(&bad), id(&second) + 1);
    }

    #[test]
    fn metrics_request_returns_prometheus_text() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        let metrics = handle(&mut server, &Request::Metrics.to_line());
        assert!(ok(&metrics), "{metrics}");
        let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
        // Request latency histograms and solver-phase counters both
        // surface in the exposition (the registry is process-global, so
        // other tests only ever add to these series).
        assert!(
            text.contains("qb_request_handle_seconds_bucket"),
            "missing request-latency histogram:\n{text}"
        );
        assert!(
            text.contains("qb_solver_propagations_total"),
            "missing solver counters:\n{text}"
        );
        assert!(
            text.contains("qb_target_latency_seconds_count"),
            "missing session target-latency histogram:\n{text}"
        );
    }

    #[test]
    fn traced_verify_returns_balanced_chrome_trace() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: true,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        assert!(!qb_obs::enabled(), "tracing must be restored after");
        let trace = verify.get("trace").and_then(Json::as_str).unwrap();
        let parsed = Json::parse(trace).expect("trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "traced sweep recorded no spans");
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, ends, "unbalanced B/E events");
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("sweep")),
            "missing sweep span"
        );
        // The untraced latency fields ride along too.
        assert!(verify.get("target_p95_us").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn request_log_appends_one_json_line_per_request() {
        let dir = std::env::temp_dir().join(format!("qb-reqlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut server = Server::new(VerifyOptions::default());
        server.set_log_file(&path).unwrap();
        handle(&mut server, &Request::Status.to_line());
        handle(&mut server, &Request::Metrics.to_line());
        let data = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = data.lines().collect();
        assert_eq!(lines.len(), 2, "{data}");
        for (line, cmd) in lines.iter().zip(["status", "metrics"]) {
            let v = Json::parse(line).expect("log line is JSON");
            assert_eq!(v.get("cmd").and_then(Json::as_str), Some(cmd));
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
            assert!(v.get("handle_ns").and_then(Json::as_i64).is_some());
            assert!(v.get("queue_ns").and_then(Json::as_i64).is_some());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn structurally_identical_loads_share_one_session() {
        let mut server = Server::new(VerifyOptions::default());
        let a = handle(
            &mut server,
            &Request::Load {
                name: "a".into(),
                source: "borrow x[2]; X[x[1]]; X[x[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        let b = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: "// same circuit, different name\nborrow y[2]; for i = 1 to 2 { X[y[1]]; }"
                    .into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&a) && ok(&b));
        assert_eq!(a.get("hash"), b.get("hash"));
        assert_eq!(b.get("reused").unwrap().as_bool(), Some(true));
        assert_eq!(server.loaded_sessions(), 1);

        // Editing one alias forks rather than corrupting the other.
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "b".into(),
                source: "borrow y[2]; X[y[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit));
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("reload"));
        assert_eq!(server.loaded_sessions(), 2);

        let unload = handle(&mut server, &Request::Unload { name: "a".into() }.to_line());
        assert!(ok(&unload));
        assert_eq!(server.loaded_sessions(), 1);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut server = Server::new(VerifyOptions::default());
        let (resp, shutdown) = server.handle_line("{\"cmd\":");
        assert!(!shutdown);
        assert!(resp.contains("malformed"));

        let bad = handle(
            &mut server,
            &Request::Load {
                name: "bad".into(),
                source: "borrow a; X[zzz];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(!ok(&bad));

        let missing = handle(
            &mut server,
            &Request::Verify {
                name: "ghost".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&missing));

        let edit_unloaded = handle(
            &mut server,
            &Request::Edit {
                name: "ghost".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(!ok(&edit_unloaded));

        // The server still works.
        let load = handle(
            &mut server,
            &Request::Load {
                name: "ok".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
    }

    #[test]
    fn edit_changing_layout_reloads() {
        let mut server = Server::new(VerifyOptions::default());
        handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: "borrow a[2]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "p".into(),
                source: "borrow a[3]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("reload"));
        assert_eq!(edit.get("qubits").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn backends_get_separate_sessions_and_status_reports_them() {
        let mut server = Server::new(VerifyOptions::default());
        for (name, backend) in [("s", None), ("b", Some("bdd")), ("a", Some("auto"))] {
            let load = handle(
                &mut server,
                &Request::Load {
                    name: name.into(),
                    source: GOOD.into(),
                    backend: backend.map(str::to_string),
                }
                .to_line(),
            );
            assert!(ok(&load), "{load}");
        }
        // Same structural hash, three backends: three warm sessions.
        assert_eq!(server.loaded_sessions(), 3);

        // Every backend agrees on the verdict; the BDD session reports
        // resident diagram nodes and no SAT state.
        for name in ["s", "b", "a"] {
            let verify = handle(
                &mut server,
                &Request::Verify {
                    name: name.into(),
                    targets: None,
                    deadline_ms: None,
                    trace: false,
                }
                .to_line(),
            );
            assert!(ok(&verify), "{verify}");
            assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));
        }
        let status = handle(&mut server, &Request::Status.to_line());
        let programs = status.get("programs").and_then(Json::as_arr).unwrap();
        let by_name = |n: &str| {
            programs
                .iter()
                .find(|p| p.get("name").and_then(Json::as_str) == Some(n))
                .unwrap()
        };
        assert_eq!(
            by_name("s").get("backend").and_then(Json::as_str),
            Some("sat")
        );
        assert_eq!(
            by_name("b").get("backend").and_then(Json::as_str),
            Some("bdd")
        );
        assert_eq!(
            by_name("a").get("backend").and_then(Json::as_str),
            Some("auto")
        );
        assert!(
            by_name("b")
                .get("bdd_resident_nodes")
                .and_then(Json::as_i64)
                > Some(0)
        );
        assert_eq!(
            by_name("b").get("solver_vars").and_then(Json::as_i64),
            Some(0)
        );
        assert_eq!(
            by_name("s")
                .get("bdd_resident_nodes")
                .and_then(Json::as_i64),
            Some(0)
        );
        assert!(status.get("resident_bdd_nodes").and_then(Json::as_i64) > Some(0));

        // A backend-less reload of an unchanged program is sticky: the
        // warm BDD session is re-used, not rebuilt on the daemon default.
        let reload = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&reload), "{reload}");
        assert_eq!(reload.get("reused").and_then(Json::as_bool), Some(true));
        assert_eq!(reload.get("backend").and_then(Json::as_str), Some("bdd"));
        assert_eq!(server.loaded_sessions(), 3);

        // ...and stickiness follows the name even when the source
        // changed: a backend-less load of an edited program stays on
        // the name's backend instead of reverting to the default.
        let changed = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: format!("{GOOD} X[q[1]]; X[q[1]];"),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&changed), "{changed}");
        assert_eq!(changed.get("backend").and_then(Json::as_str), Some("bdd"));
        // Restore the original source for the steps below.
        let restore = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(restore.get("backend").and_then(Json::as_str), Some("bdd"));

        // Editing the BDD alias stays incremental on its own backend.
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "b".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("incremental"));
        assert_eq!(edit.get("backend").unwrap().as_str(), Some("bdd"));
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "b".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));

        // An unknown backend is rejected with the valid list.
        let bad = handle(
            &mut server,
            &Request::Load {
                name: "x".into(),
                source: GOOD.into(),
                backend: Some("cvc5".into()),
            }
            .to_line(),
        );
        assert!(!ok(&bad));
        assert!(
            bad.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("sat, anf, bdd, auto"),
            "{bad}"
        );
    }

    #[test]
    fn lru_bound_evicts_least_recently_used_session() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                max_sessions: Some(2),
                ..ServerLimits::default()
            },
        );
        let srcs = [
            ("p1", "borrow a[2]; X[a[1]];"),
            ("p2", "borrow a[2]; X[a[2]];"),
            ("p3", "borrow a[2]; CNOT[a[1], a[2]];"),
            ("p4", "borrow a[3]; X[a[1]];"),
        ];
        for (name, src) in &srcs[..2] {
            let load = handle(
                &mut server,
                &Request::Load {
                    name: (*name).into(),
                    source: (*src).into(),
                    backend: None,
                }
                .to_line(),
            );
            assert!(ok(&load));
        }
        assert_eq!(server.loaded_sessions(), 2);

        // Third distinct program evicts the least-recently-used (p1).
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p3".into(),
                source: srcs[2].1.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        assert_eq!(server.loaded_sessions(), 2);
        assert_eq!(server.session_evictions(), 1);
        let gone = handle(
            &mut server,
            &Request::Verify {
                name: "p1".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&gone));
        assert_eq!(gone.get("code").and_then(Json::as_str), Some("not_loaded"));

        // Touch p2, then load p4: p3 is now the LRU victim, p2 survives.
        let v2 = handle(
            &mut server,
            &Request::Verify {
                name: "p2".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&v2));
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p4".into(),
                source: srcs[3].1.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let p3 = handle(
            &mut server,
            &Request::Verify {
                name: "p3".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&p3), "p3 was the least recently used");
        let p2 = handle(
            &mut server,
            &Request::Verify {
                name: "p2".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&p2), "recently touched p2 stays warm");

        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("max_sessions").and_then(Json::as_i64), Some(2));
        assert_eq!(
            status.get("session_evictions").and_then(Json::as_i64),
            Some(2)
        );
        assert!(status.get("resident_arena_nodes").and_then(Json::as_i64) > Some(0));
    }

    #[test]
    fn aliases_share_the_lru_slot_and_fall_together() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                max_sessions: Some(1),
                ..ServerLimits::default()
            },
        );
        // Two names, one structure: a single session, no eviction.
        handle(
            &mut server,
            &Request::Load {
                name: "a".into(),
                source: "borrow x[2]; X[x[1]]; X[x[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: "borrow y[2]; X[y[1]]; X[y[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(server.loaded_sessions(), 1);
        assert_eq!(server.session_evictions(), 0);

        // A structurally new load evicts the shared session and both
        // aliases with it.
        handle(
            &mut server,
            &Request::Load {
                name: "c".into(),
                source: "borrow z[2]; CNOT[z[1], z[2]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(server.loaded_sessions(), 1);
        for name in ["a", "b"] {
            let r = handle(
                &mut server,
                &Request::Verify {
                    name: name.into(),
                    targets: None,
                    deadline_ms: None,
                    trace: false,
                }
                .to_line(),
            );
            assert_eq!(r.get("code").and_then(Json::as_str), Some("not_loaded"));
        }
    }

    #[test]
    fn idle_sessions_are_swept() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                idle_timeout: Some(std::time::Duration::from_millis(25)),
                ..ServerLimits::default()
            },
        );
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: "borrow a[2]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        assert_eq!(server.loaded_sessions(), 1);

        // Still fresh: a status round-trip does not evict it.
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(1));

        std::thread::sleep(std::time::Duration::from_millis(40));
        // Any request triggers the sweep afterwards.
        let _ = handle(&mut server, &Request::Status.to_line());
        assert_eq!(server.loaded_sessions(), 0);
        assert_eq!(server.session_evictions(), 1);
        let gone = handle(
            &mut server,
            &Request::Verify {
                name: "p".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert_eq!(gone.get("code").and_then(Json::as_str), Some("not_loaded"));
    }

    #[test]
    fn shutdown_is_signalled() {
        let mut server = Server::new(VerifyOptions::default());
        let (resp, shutdown) = server.handle_line(&Request::Shutdown.to_line());
        assert!(shutdown);
        assert!(resp.contains("\"shutdown\":true"));
    }

    /// Failpoints are process-global; the tests that arm one (or could
    /// trip an armed one via an installed cancel token) serialise here.
    static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn expired_deadline_returns_unknowns_and_daemon_stays_responsive() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");

        // A zero budget is already expired at sweep entry: every target
        // must come back as a structured unknown, never a fake verdict.
        let bounded = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: Some(0),
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&bounded), "{bounded}");
        assert_eq!(bounded.get("all_safe").and_then(Json::as_bool), Some(false));
        let verdicts = bounded.get("verdicts").and_then(Json::as_arr).unwrap();
        assert!(!verdicts.is_empty());
        for v in verdicts {
            assert_eq!(v.get("verdict").and_then(Json::as_str), Some("unknown"));
            assert_eq!(v.get("safe").and_then(Json::as_bool), Some(false));
            assert!(v.get("reason").and_then(Json::as_str).is_some(), "{v}");
            assert!(v.get("witness").is_none(), "an unknown carries no witness");
        }
        assert_eq!(
            bounded.get("unknowns").and_then(Json::as_usize),
            Some(verdicts.len())
        );

        // The session survived the interruption: an unbounded re-verify
        // on the same warm session reaches the true verdict.
        let full = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&full), "{full}");
        assert_eq!(full.get("all_safe").and_then(Json::as_bool), Some(true));
        assert_eq!(full.get("unknowns").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                default_deadline: Some(Duration::ZERO),
                ..ServerLimits::default()
            },
        );
        handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        let bounded = handle(
            &mut server,
            &Request::Verify {
                name: "p".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&bounded), "{bounded}");
        assert!(bounded.get("unknowns").and_then(Json::as_usize) > Some(0));
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(
            status.get("default_deadline_ms").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn panicking_session_is_quarantined_and_rebuilt() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));

        // Arm a one-shot panic on the cancellation-injection site (it is
        // polled once per target when a token is installed, so a bounded
        // verify deterministically reaches it).
        qb_testutil::failpoints::arm(
            "spurious_cancel",
            qb_testutil::failpoints::Action::Panic,
            Some(1),
        );
        let poisoned = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: Some(60_000),
                trace: false,
            }
            .to_line(),
        );
        qb_testutil::failpoints::clear("spurious_cancel");
        assert!(!ok(&poisoned), "{poisoned}");
        assert_eq!(
            poisoned.get("code").and_then(Json::as_str),
            Some("internal_error")
        );
        assert_eq!(
            poisoned.get("quarantined").and_then(Json::as_str),
            Some("cccnot")
        );
        assert_eq!(poisoned.get("rebuilt").and_then(Json::as_bool), Some(true));
        assert_eq!(server.quarantined_sessions(), 1);

        // The rebuilt session answers correctly and the daemon never
        // stopped serving.
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qb-serve-{tag}-{}", std::process::id()))
    }

    #[test]
    fn snapshot_restores_programs_backends_and_auto_winners() {
        let dir = temp_state_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut first = Server::new(VerifyOptions::default());
        first.set_state_dir(Some(dir.clone()));
        let load = handle(
            &mut first,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: Some("auto".into()),
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        // Learn the auto winner, then edit to the broken source: the
        // snapshot must retain the *post-edit* program.
        let verify = handle(
            &mut first,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        let learned = verify
            .get("auto_preference")
            .and_then(Json::as_str)
            .map(String::from)
            .unwrap();
        let edit = handle(
            &mut first,
            &Request::Edit {
                name: "cccnot".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        drop(first); // crash stand-in: nothing flushed at drop

        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 1);
        let status = handle(&mut second, &Request::Status.to_line());
        let programs = status.get("programs").and_then(Json::as_arr).unwrap();
        assert_eq!(programs.len(), 1);
        assert_eq!(
            programs[0].get("name").and_then(Json::as_str),
            Some("cccnot")
        );
        assert_eq!(
            programs[0].get("backend").and_then(Json::as_str),
            Some("auto")
        );
        if learned != "undecided" {
            assert!(
                status.get("auto_winners_remembered").and_then(Json::as_i64) > Some(0),
                "learned winner {learned:?} survives the restart: {status}"
            );
        }
        // The restored session re-verifies the edited program to the
        // same verdict the pre-crash daemon held.
        let verify = handle(
            &mut second,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_snapshot_is_rejected_and_daemon_starts_cold() {
        let dir = temp_state_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let mut first = Server::new(VerifyOptions::default());
        first.set_state_dir(Some(dir.clone()));
        let load = handle(
            &mut first,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        drop(first);

        // Tear the snapshot mid-file, as a crash during a non-atomic
        // write would; the checksum (or the missing line) must reject it.
        let path = dir.join(STATE_FILE);
        let data = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();

        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 0);
        assert_eq!(second.loaded_sessions(), 0);
        // Cold but healthy: a fresh load and snapshot cycle works.
        let load = handle(
            &mut second,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let mut third = Server::new(VerifyOptions::default());
        third.set_state_dir(Some(dir.clone()));
        assert_eq!(third.restore_state(), 1, "the rewritten snapshot is whole");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_write_failure_is_not_fatal() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let dir = temp_state_dir("failpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = Server::new(VerifyOptions::default());
        server.set_state_dir(Some(dir.clone()));
        qb_testutil::failpoints::arm(
            "snapshot_write",
            qb_testutil::failpoints::Action::Error,
            Some(1),
        );
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        qb_testutil::failpoints::clear("snapshot_write");
        assert!(ok(&load), "a failed snapshot write must not fail the load");
        assert!(!dir.join(STATE_FILE).exists());
        // The state stayed dirty, so the very next request retries the
        // write — and this one succeeds.
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(
            status.get("snapshot_failures").and_then(Json::as_i64),
            Some(1)
        );
        assert!(dir.join(STATE_FILE).exists());
        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 1, "nothing was lost to the fault");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
