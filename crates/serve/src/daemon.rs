//! The verify-on-change daemon: warm per-program verification sessions
//! served concurrently to many clients.
//!
//! The daemon holds one [`qb_core::VerifySession`] per loaded program,
//! keyed by the *structural hash* of the elaborated circuit
//! ([`qb_lang::structural_hash`]) and its decision backend: client-chosen
//! names are aliases onto the keyed session table, so two editors looking
//! at structurally identical programs on the same backend share one warm
//! session.
//!
//! Each session lives in its own *actor*: an owned worker thread fed by a
//! bounded mailbox ([`crate::actor`]). This module is the transport
//! layer around the routing core ([`crate::router`]):
//!
//! * the accept loops (Unix socket, and optionally a u32-length-prefixed
//!   TCP framing behind [`ServeOptions::tcp`]) spawn one reader thread
//!   per connection;
//! * readers parse lines, route them ([`crate::router::route_line`]) and
//!   hand rendered replies to a per-connection writer thread, so a slow
//!   sweep for one client never blocks another client's warm edit —
//!   requests to the *same* session pipeline through its mailbox in
//!   order, requests to different sessions run in parallel;
//! * [`Server`] is the socket-free synchronous facade over the same
//!   router, used by tests and embedders.

use crate::json::Json;
use crate::protocol::coded_error_response;
#[cfg(test)]
use crate::protocol::Request;
#[cfg(test)]
use crate::router::STATE_FILE;
use crate::router::{
    graceful_shutdown, restore_state, route_line, spawn_sampler, spawn_snapshot_writer, Routed,
    Router, ShutdownGate,
};
use qb_core::VerifyOptions;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Memory and overload bounds of a long-lived daemon (see `README.md`,
/// "Memory behaviour of long-lived sessions" and "Overload behaviour").
/// Memory knobs default to unbounded / session defaults; the overload
/// knobs carry serving-grade defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// Upper bound on concurrently loaded (hash-distinct) sessions; the
    /// least-recently-used session (and every name aliasing it) is
    /// evicted past it. `None` = unbounded.
    pub max_sessions: Option<usize>,
    /// Sessions untouched for this long are evicted by the sweep that
    /// runs after every handled request. `None` = never.
    pub idle_timeout: Option<Duration>,
    /// Per-session formula-arena GC watermark floor handed to
    /// [`qb_core::VerifySession::set_memory_limits`]. `None` = session
    /// default.
    pub arena_gc_floor: Option<usize>,
    /// Per-session decision-cache capacity. `None` = session default.
    pub decision_cache_cap: Option<usize>,
    /// Wall-clock budget applied to every `verify` request that does not
    /// carry its own `deadline_ms`. `None` = unbounded.
    pub default_deadline: Option<Duration>,
    /// Daemon-wide queued-request budget driving the `ok → degraded →
    /// overloaded` health state (degraded from half the budget,
    /// overloaded at the full budget, with hysteresis on the way down).
    pub queue_budget: usize,
    /// Quarantine-rebuilds within the strike window that trip a
    /// session's circuit breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker fast-fails before admitting one
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_sessions: None,
            idle_timeout: None,
            arena_gc_floor: None,
            decision_cache_cap: None,
            default_deadline: None,
            queue_budget: 256,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Path of the Unix domain socket to listen on.
    pub socket: PathBuf,
    /// Additionally listen on this TCP address (e.g. `127.0.0.1:7691`)
    /// with u32-big-endian-length-prefixed JSON frames. `None` = Unix
    /// socket only.
    pub tcp: Option<String>,
    /// Verifier configuration shared by every session.
    pub verify: VerifyOptions,
    /// Print one line per handled request to stderr.
    pub log: bool,
    /// Memory bounds (session LRU, idle sweep, per-session GC knobs).
    pub limits: ServerLimits,
    /// Directory for crash-recovery snapshots: loaded sources, their
    /// backends and the learned auto-portfolio winners are persisted
    /// after every mutating request, and a restarted daemon replays them
    /// so it comes back warm. `None` = no persistence.
    pub state_dir: Option<PathBuf>,
    /// Append one JSON object per handled request (id, cmd, outcome,
    /// queue-wait and handle latency) to this file. `None` = no log.
    pub log_file: Option<PathBuf>,
    /// Directory exemplar traces are auto-written to (Chrome trace-event
    /// JSON, one file per promoted request). `None` = exemplars stay in
    /// the in-memory flight-recorder ring only.
    pub trace_dir: Option<PathBuf>,
    /// Retention cap for `trace_dir`: only the newest N exemplar files
    /// are kept.
    pub trace_retain: usize,
    /// Fixed slow-request threshold: a verify handled slower than this
    /// is promoted to an exemplar. `None` = promote above the rolling
    /// p99 of the request type instead.
    pub slow_threshold: Option<Duration>,
    /// Cadence of the metrics sampler feeding the `top` time-series
    /// ring.
    pub sample_interval: Duration,
}

impl ServeOptions {
    /// Options for `socket` with default verification settings.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeOptions {
            socket: socket.into(),
            tcp: None,
            verify: VerifyOptions::default(),
            log: false,
            limits: ServerLimits::default(),
            state_dir: None,
            log_file: None,
            trace_dir: None,
            trace_retain: 32,
            slow_threshold: None,
            sample_interval: Duration::from_secs(1),
        }
    }
}

/// The socket-free request handler: the same concurrent routing core the
/// socket transports drive ([`crate::router`]), behind a synchronous
/// line-in/line-out facade. Requests still execute on the per-session
/// actor threads; the facade blocks until the response is rendered, so
/// callers observe the single-threaded semantics the wire protocol
/// promises per connection.
pub struct Server {
    router: Arc<Router>,
}

impl Server {
    /// A server with unbounded limits.
    pub fn new(verify: VerifyOptions) -> Server {
        Server::with_limits(verify, ServerLimits::default())
    }

    /// A server with explicit memory bounds.
    pub fn with_limits(verify: VerifyOptions, limits: ServerLimits) -> Server {
        Server {
            router: Arc::new(Router::new(verify, limits)),
        }
    }

    /// Opens (appending) the JSONL request log.
    pub fn set_log_file(&mut self, path: &Path) -> std::io::Result<()> {
        self.router.set_log_file(path)
    }

    /// Sets (or clears) the crash-recovery snapshot directory. Snapshots
    /// are written after every mutating request once set.
    pub fn set_state_dir(&mut self, dir: Option<PathBuf>) {
        self.router.set_state_dir(dir);
    }

    /// Configures the exemplar-trace directory and its retention cap.
    pub fn set_trace_dir(&mut self, dir: PathBuf, retain: usize) {
        self.router.set_trace_dir(dir, retain);
    }

    /// Configures the fixed slow-request exemplar threshold (`None` =
    /// promote above the rolling p99 of the request type).
    pub fn set_slow_threshold(&mut self, threshold: Option<Duration>) {
        self.router.set_slow_threshold(threshold);
    }

    /// Appends one metrics snapshot to the `top` time-series ring. The
    /// facade has no sampler thread; tests and embedders beat it
    /// manually.
    pub fn sample_metrics(&mut self) {
        self.router.sample_tick();
    }

    /// Replays the snapshot in the configured state directory, if any.
    /// Returns the number of programs restored. Torn or corrupt
    /// snapshots are discarded (the daemon starts cold), never fatal.
    pub fn restore_state(&mut self) -> usize {
        restore_state(&self.router)
    }

    /// Handles one request line; returns the response line and whether a
    /// shutdown was requested.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        self.handle_line_queued(line, 0)
    }

    /// [`Server::handle_line`] with an externally measured queue wait
    /// (time the line spent buffered before handling), folded into the
    /// queue-wait histogram.
    pub fn handle_line_queued(&mut self, line: &str, queue_ns: u64) -> (String, bool) {
        let (tx, rx) = std::sync::mpsc::channel();
        let shutdown = match route_line(&self.router, line, queue_ns, &tx) {
            Routed::Done => false,
            Routed::Shutdown {
                request_id,
                started,
            } => {
                // The facade acknowledges without draining: its caller
                // owns the sessions' lifetime (and tests rely on drop
                // *not* flushing state, as a crash stand-in).
                self.router.finish_shutdown(request_id, started, &tx);
                true
            }
        };
        let response = rx.recv().expect("every routed request is answered");
        self.router.reply_flushed();
        // Persist synchronously: the facade has no snapshot-writer
        // thread, and callers expect state on disk when the call
        // returns (kill -9 determinism).
        self.router.persist_once();
        (response, shutdown)
    }

    /// Number of live (hash-distinct) sessions.
    pub fn loaded_sessions(&self) -> usize {
        self.router.loaded_sessions()
    }

    /// Total sessions evicted by the LRU bound or the idle sweep.
    pub fn session_evictions(&self) -> u64 {
        self.router.session_evictions()
    }

    /// Total sessions quarantined after a panic.
    pub fn quarantined_sessions(&self) -> u64 {
        self.router.quarantined_sessions()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Join the actor threads, but do *not* persist: dropping the
        // facade is the tests' crash stand-in, and the daemon path
        // persists explicitly before its router is dropped.
        self.router.drain_actors();
    }
}

/// Runs the daemon: binds `opts.socket` (and `opts.tcp`, when set),
/// serves connections concurrently until a `shutdown` request arrives,
/// then removes the socket file.
///
/// # Errors
///
/// Fails when a listener cannot be bound. Per-connection I/O errors are
/// logged and do not stop the daemon; failed `accept`s back off
/// exponentially (capped at 1s) and are counted in `status` under
/// `accept_errors`.
pub fn run(opts: &ServeOptions) -> std::io::Result<()> {
    if opts.socket.exists() {
        // Only reclaim the path if nothing is listening on it: unlinking
        // a live daemon's socket would strand it (and its warm sessions)
        // unreachable forever.
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("a daemon is already serving on {}", opts.socket.display()),
            ));
        }
        // A previous daemon crashed or was killed: reclaim the path.
        std::fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    let tcp_listener = match &opts.tcp {
        Some(addr) => Some(TcpListener::bind(addr)?),
        None => None,
    };
    if opts.log {
        let bound = match opts.limits.max_sessions {
            Some(n) => format!(", max {n} sessions"),
            None => String::new(),
        };
        let tcp = match &tcp_listener {
            Some(l) => match l.local_addr() {
                Ok(addr) => format!(" and tcp {addr}"),
                Err(_) => " and tcp".to_string(),
            },
            None => String::new(),
        };
        eprintln!(
            "qb-serve: listening on {}{tcp} (backend {}, {:?}{bound})",
            opts.socket.display(),
            opts.verify.backend,
            opts.verify.simplify
        );
    }
    let router = Arc::new(Router::new(opts.verify, opts.limits));
    if let Some(dir) = &opts.trace_dir {
        router.set_trace_dir(dir.clone(), opts.trace_retain);
    }
    router.set_slow_threshold(opts.slow_threshold);
    if let Some(path) = &opts.log_file {
        if let Err(e) = router.set_log_file(path) {
            eprintln!(
                "qb-serve: cannot open request log {} ({e}); continuing without one",
                path.display()
            );
        }
    }
    if let Some(dir) = &opts.state_dir {
        router.set_state_dir(Some(dir.clone()));
        let restored = restore_state(&router);
        if opts.log && restored > 0 {
            eprintln!(
                "qb-serve: restored {restored} program(s) from {}",
                dir.display()
            );
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    router.set_gate(ShutdownGate {
        stop: Arc::clone(&stop),
        socket: opts.socket.clone(),
        tcp: tcp_listener.as_ref().and_then(|l| l.local_addr().ok()),
    });
    let snapshot_writer = spawn_snapshot_writer(&router);
    let sampler = spawn_sampler(&router, opts.sample_interval);
    let tcp_thread = tcp_listener.map(|listener| {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let log = opts.log;
        std::thread::Builder::new()
            .name("qb-accept-tcp".into())
            .spawn(move || accept_loop(TcpAccept(listener), &router, &stop, log))
            .expect("spawn tcp accept loop")
    });
    accept_loop(UnixAccept(listener), &router, &stop, opts.log);
    if let Some(thread) = tcp_thread {
        let _ = thread.join();
    }
    // The shutdown acknowledgement (and any other in-flight response)
    // is flushed by a per-connection writer thread; don't let process
    // exit truncate it mid-write.
    router.wait_replies_flushed(Duration::from_secs(5));
    router.stop_snapshot_writer();
    let _ = snapshot_writer.join();
    router.stop_sampler();
    let _ = sampler.join();
    let _ = std::fs::remove_file(&opts.socket);
    if opts.log {
        eprintln!("qb-serve: shut down");
    }
    Ok(())
}

/// One transport's accept source: yields connections already wrapped in
/// a closure that serves them (the two transports differ in framing).
trait Accept {
    fn accept_and_serve(&self, router: &Arc<Router>, log: bool) -> std::io::Result<()>;
    fn transport(&self) -> &'static str;
}

struct UnixAccept(UnixListener);

impl Accept for UnixAccept {
    fn accept_and_serve(&self, router: &Arc<Router>, log: bool) -> std::io::Result<()> {
        let (stream, _) = self.0.accept()?;
        let router = Arc::clone(router);
        std::thread::Builder::new()
            .name("qb-conn-unix".into())
            .spawn(move || {
                if let Err(e) = serve_unix_connection(stream, &router, log) {
                    eprintln!("qb-serve: connection error: {e}");
                }
            })?;
        Ok(())
    }

    fn transport(&self) -> &'static str {
        "unix"
    }
}

struct TcpAccept(TcpListener);

impl Accept for TcpAccept {
    fn accept_and_serve(&self, router: &Arc<Router>, log: bool) -> std::io::Result<()> {
        let (stream, _) = self.0.accept()?;
        let router = Arc::clone(router);
        std::thread::Builder::new()
            .name("qb-conn-tcp".into())
            .spawn(move || {
                if let Err(e) = serve_tcp_connection(stream, &router, log) {
                    eprintln!("qb-serve: connection error: {e}");
                }
            })?;
        Ok(())
    }

    fn transport(&self) -> &'static str {
        "tcp"
    }
}

/// Accepts until the shutdown gate trips. A failed accept (EMFILE,
/// transient network errors) is counted and backed off exponentially —
/// 10ms doubling to a 1s cap, reset on the next success — instead of
/// spinning hot on a persistent error.
fn accept_loop(listener: impl Accept, router: &Arc<Router>, stop: &Arc<AtomicBool>, log: bool) {
    let floor = Duration::from_millis(10);
    let cap = Duration::from_secs(1);
    let mut backoff = floor;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept_and_serve(router, log) {
            Ok(()) => {
                backoff = floor;
                // The connection may be the shutdown gate's wake-up
                // poke; its reader sees EOF and exits on its own.
            }
            Err(e) => {
                router.note_accept_error();
                eprintln!(
                    "qb-serve: {} accept failed: {e}; retrying in {backoff:?}",
                    listener.transport()
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cap);
            }
        }
    }
}

/// Upper bound on one request line or frame (16 MiB). Program sources
/// are at most a few hundred KiB even at paper scale; anything larger is
/// a confused or malicious client, and buffering it unchecked would let
/// one connection exhaust the daemon's memory.
const MAX_REQUEST_LINE: u64 = 16 * 1024 * 1024;

/// Spawns the per-connection writer thread: responses are rendered on
/// whatever thread finished the request and arrive here via the reply
/// channel, in routing order for this connection. After a write error
/// the writer keeps draining (and acknowledging flushes — graceful
/// shutdown waits on that count) without touching the dead socket.
fn spawn_conn_writer<W: Write + Send + 'static>(
    mut writer: W,
    router: &Arc<Router>,
    frame: fn(&mut W, &str) -> std::io::Result<()>,
) -> (crate::actor::ReplySender, std::thread::JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let router = Arc::clone(router);
    let handle = std::thread::Builder::new()
        .name("qb-conn-writer".into())
        .spawn(move || {
            let mut healthy = true;
            for line in rx {
                if healthy {
                    healthy = frame(&mut writer, &line).is_ok();
                }
                router.reply_flushed();
            }
        })
        .expect("spawn connection writer");
    (tx, handle)
}

fn frame_newline<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn frame_length_prefixed<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(&(line.len() as u32).to_be_bytes())?;
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Routes one parsed-off-the-wire line, returning `true` when it was a
/// shutdown request (the connection stops reading afterwards).
fn route_one(
    router: &Arc<Router>,
    line: &str,
    queue_ns: u64,
    tx: &crate::actor::ReplySender,
    log: bool,
) -> bool {
    let t0 = Instant::now();
    let routed = route_line(router, line, queue_ns, tx);
    if log {
        let cmd = Json::parse(line)
            .ok()
            .and_then(|v| v.get("cmd").and_then(Json::as_str).map(String::from))
            .unwrap_or_else(|| "<malformed>".into());
        eprintln!("qb-serve: {cmd} routed in {:?}", t0.elapsed());
    }
    match routed {
        Routed::Done => false,
        Routed::Shutdown {
            request_id,
            started,
        } => {
            graceful_shutdown(router, request_id, started, tx);
            true
        }
    }
}

/// Serves one newline-JSON Unix-socket connection.
///
/// Malformed input never drops the connection: an oversized line is
/// drained and answered with an `"oversized"`-coded error, invalid UTF-8
/// with `"invalid_utf8"`, and the client can keep sending requests.
fn serve_unix_connection(
    stream: UnixStream,
    router: &Arc<Router>,
    log: bool,
) -> std::io::Result<()> {
    let writer = stream.try_clone()?;
    let (tx, writer_handle) = spawn_conn_writer(writer, router, frame_newline);
    let mut reader = BufReader::new(stream);
    // Stamp of the last routed request (or connection start): a request
    // that was already buffered when it was taken has been queuing since
    // then.
    let mut idle_since = Instant::now();
    let result = loop {
        let pipelined = !reader.buffer().is_empty();
        let mut buf: Vec<u8> = Vec::new();
        let n = match (&mut reader)
            .take(MAX_REQUEST_LINE + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(e) => break Err(e),
        };
        if n == 0 {
            break Ok(()); // client hung up
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() as u64 > MAX_REQUEST_LINE {
            // The cap truncated the line mid-way: discard the rest of it
            // so the stream resynchronises on the next newline.
            if let Err(e) = drain_to_newline(&mut reader) {
                break Err(e);
            }
            let response = coded_error_response(
                &format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                "oversized",
            );
            router.send_reply(&tx, response.to_string());
            continue;
        }
        let line = match String::from_utf8(buf) {
            Ok(s) => s,
            Err(_) => {
                let response =
                    coded_error_response("request line is not valid UTF-8", "invalid_utf8");
                router.send_reply(&tx, response.to_string());
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // A pipelined request sat in the read buffer while earlier ones
        // were routed; an idle connection's request waited ~nothing.
        let queue_ns = if pipelined {
            idle_since.elapsed().as_nanos() as u64
        } else {
            0
        };
        let shutdown = route_one(router, &line, queue_ns, &tx, log);
        idle_since = Instant::now();
        if shutdown {
            break Ok(());
        }
    };
    drop(tx); // close the reply channel so the writer drains and exits
    let _ = writer_handle.join();
    result
}

/// Serves one length-prefixed TCP connection: each request and each
/// response is a u32 big-endian byte length followed by that many bytes
/// of JSON. Oversized frames are skipped (the length prefix makes
/// resynchronisation exact) and answered with an `"oversized"` error.
fn serve_tcp_connection(stream: TcpStream, router: &Arc<Router>, log: bool) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let writer = stream.try_clone()?;
    let (tx, writer_handle) = spawn_conn_writer(writer, router, frame_length_prefixed);
    let mut reader = BufReader::new(stream);
    let mut idle_since = Instant::now();
    let result = loop {
        let pipelined = !reader.buffer().is_empty();
        let mut len_buf = [0u8; 4];
        match reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            // A clean EOF between frames is the client hanging up.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => break Err(e),
        }
        let len = u32::from_be_bytes(len_buf) as u64;
        if len > MAX_REQUEST_LINE {
            let drained = std::io::copy(&mut (&mut reader).take(len), &mut std::io::sink());
            if let Err(e) = drained {
                break Err(e);
            }
            let response = coded_error_response(
                &format!("request frame exceeds {MAX_REQUEST_LINE} bytes"),
                "oversized",
            );
            router.send_reply(&tx, response.to_string());
            continue;
        }
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = reader.read_exact(&mut payload) {
            break Err(e);
        }
        let line = match String::from_utf8(payload) {
            Ok(s) => s,
            Err(_) => {
                let response =
                    coded_error_response("request frame is not valid UTF-8", "invalid_utf8");
                router.send_reply(&tx, response.to_string());
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let queue_ns = if pipelined {
            idle_since.elapsed().as_nanos() as u64
        } else {
            0
        };
        let shutdown = route_one(router, &line, queue_ns, &tx, log);
        idle_since = Instant::now();
        if shutdown {
            break Ok(());
        }
    };
    drop(tx);
    let _ = writer_handle.join();
    result
}

/// Discards bytes up to and including the next newline (or EOF), in
/// bounded chunks so an adversarial endless line cannot pin memory.
fn drain_to_newline(reader: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let mut chunk: Vec<u8> = Vec::new();
        let n = reader
            .by_ref()
            .take(1 << 20)
            .read_until(b'\n', &mut chunk)?;
        if n == 0 || chunk.last() == Some(&b'\n') {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn handle(server: &mut Server, line: &str) -> Json {
        let (resp, _) = server.handle_line(line);
        Json::parse(&resp).unwrap()
    }

    const GOOD: &str = "borrow@ q[4]; borrow a; CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; \
                        CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; release a;";
    const BROKEN: &str = "borrow@ q[4]; borrow a; CCNOT[q[1], q[2], a]; CCNOT[a, q[3], q[4]]; \
                          CCNOT[q[1], q[2], a];";

    #[test]
    fn load_verify_edit_cycle() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        assert_eq!(load.get("qubits").unwrap().as_i64(), Some(5));
        assert_eq!(load.get("reused").unwrap().as_bool(), Some(false));

        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        assert_eq!(verify.get("all_safe").unwrap().as_bool(), Some(true));

        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "cccnot".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("incremental"));
        assert_eq!(edit.get("common_prefix").unwrap().as_i64(), Some(3));

        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        assert_eq!(verify.get("all_safe").unwrap().as_bool(), Some(false));
        assert_eq!(server.loaded_sessions(), 1, "edit rekeys, not duplicates");
    }

    #[test]
    fn responses_carry_monotonic_request_ids() {
        let mut server = Server::new(VerifyOptions::default());
        let first = handle(&mut server, &Request::Status.to_line());
        let second = handle(&mut server, &Request::Status.to_line());
        let id = |v: &Json| v.get("request_id").and_then(Json::as_i64).unwrap();
        assert_eq!(id(&second), id(&first) + 1);
        // Even malformed requests are metered and stamped.
        let bad = handle(&mut server, "not json");
        assert_eq!(id(&bad), id(&second) + 1);
    }

    #[test]
    fn metrics_request_returns_prometheus_text() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        let metrics = handle(&mut server, &Request::Metrics.to_line());
        assert!(ok(&metrics), "{metrics}");
        let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
        // Request latency histograms and solver-phase counters both
        // surface in the exposition (the registry is process-global, so
        // other tests only ever add to these series).
        assert!(
            text.contains("qb_request_handle_seconds_bucket"),
            "missing request-latency histogram:\n{text}"
        );
        assert!(
            text.contains("qb_solver_propagations_total"),
            "missing solver counters:\n{text}"
        );
        assert!(
            text.contains("qb_target_latency_seconds_count"),
            "missing session target-latency histogram:\n{text}"
        );
    }

    #[test]
    fn top_reports_rates_and_sessions_once_two_samples_exist() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");

        // No samples yet: the dashboard answers, but with null rates.
        let top = handle(&mut server, &Request::Top.to_line());
        assert!(ok(&top), "{top}");
        assert_eq!(top.get("samples").and_then(Json::as_i64), Some(0));
        assert!(matches!(
            top.get("rates").and_then(|r| r.get("req_per_s")),
            Some(Json::Null)
        ));

        server.sample_metrics();
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        std::thread::sleep(std::time::Duration::from_millis(2));
        server.sample_metrics();

        let top = handle(&mut server, &Request::Top.to_line());
        assert!(ok(&top), "{top}");
        assert!(top.get("samples").and_then(Json::as_i64).unwrap() >= 2);
        let verify_rate = top
            .get("rates")
            .and_then(|r| r.get("verify_per_s"))
            .and_then(Json::as_f64)
            .expect("verify rate should be computable from two samples");
        assert!(verify_rate > 0.0, "one verify between samples: {top}");
        let sessions = top.get("sessions").and_then(Json::as_arr).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(
            sessions[0].get("queue_depth").and_then(Json::as_i64),
            Some(0)
        );
        assert!(top.get("request_types").and_then(Json::as_arr).is_some());
        assert!(top.get("recorder").is_some(), "{top}");
    }

    #[test]
    fn trace_request_replays_a_recorded_verify() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        let rid = verify.get("request_id").and_then(Json::as_i64).unwrap();

        let fetched = handle(
            &mut server,
            &Request::Trace {
                request_id: rid as u64,
            }
            .to_line(),
        );
        assert!(ok(&fetched), "{fetched}");
        assert_eq!(
            fetched.get("trace_request_id").and_then(Json::as_i64),
            Some(rid)
        );
        assert_eq!(
            fetched.get("trace_cmd").and_then(Json::as_str),
            Some("verify")
        );
        let trace = fetched.get("trace").and_then(Json::as_str).unwrap();
        assert!(
            trace.contains("\"sweep\""),
            "verify spans captured: {trace}"
        );

        // Never-issued ids are a coded error, not a panic.
        let missing = handle(
            &mut server,
            &Request::Trace {
                request_id: 999_999,
            }
            .to_line(),
        );
        assert!(!ok(&missing));
        assert_eq!(
            missing.get("code").and_then(Json::as_str),
            Some("not_recorded")
        );
    }

    #[test]
    fn traced_verify_returns_balanced_chrome_trace() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: true,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        let trace = verify.get("trace").and_then(Json::as_str).unwrap();
        let parsed = Json::parse(trace).expect("trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "traced sweep recorded no spans");
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, ends, "unbalanced B/E events");
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("sweep")),
            "missing sweep span"
        );
        // The untraced latency fields ride along too.
        assert!(verify.get("target_p95_us").and_then(Json::as_i64).is_some());
    }

    #[test]
    fn request_log_appends_one_json_line_per_request() {
        let dir = std::env::temp_dir().join(format!("qb-reqlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut server = Server::new(VerifyOptions::default());
        server.set_log_file(&path).unwrap();
        handle(&mut server, &Request::Status.to_line());
        handle(&mut server, &Request::Metrics.to_line());
        let data = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = data.lines().collect();
        assert_eq!(lines.len(), 2, "{data}");
        for (line, cmd) in lines.iter().zip(["status", "metrics"]) {
            let v = Json::parse(line).expect("log line is JSON");
            assert_eq!(v.get("cmd").and_then(Json::as_str), Some(cmd));
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
            assert!(v.get("handle_ns").and_then(Json::as_i64).is_some());
            assert!(v.get("queue_ns").and_then(Json::as_i64).is_some());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn structurally_identical_loads_share_one_session() {
        let mut server = Server::new(VerifyOptions::default());
        let a = handle(
            &mut server,
            &Request::Load {
                name: "a".into(),
                source: "borrow x[2]; X[x[1]]; X[x[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        let b = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: "// same circuit, different name\nborrow y[2]; for i = 1 to 2 { X[y[1]]; }"
                    .into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&a) && ok(&b));
        assert_eq!(a.get("hash"), b.get("hash"));
        assert_eq!(b.get("reused").unwrap().as_bool(), Some(true));
        assert_eq!(server.loaded_sessions(), 1);

        // Editing one alias forks rather than corrupting the other.
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "b".into(),
                source: "borrow y[2]; X[y[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit));
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("reload"));
        assert_eq!(server.loaded_sessions(), 2);

        let unload = handle(&mut server, &Request::Unload { name: "a".into() }.to_line());
        assert!(ok(&unload));
        assert_eq!(server.loaded_sessions(), 1);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut server = Server::new(VerifyOptions::default());
        let (resp, shutdown) = server.handle_line("{\"cmd\":");
        assert!(!shutdown);
        assert!(resp.contains("malformed"));

        let bad = handle(
            &mut server,
            &Request::Load {
                name: "bad".into(),
                source: "borrow a; X[zzz];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(!ok(&bad));

        let missing = handle(
            &mut server,
            &Request::Verify {
                name: "ghost".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&missing));

        let edit_unloaded = handle(
            &mut server,
            &Request::Edit {
                name: "ghost".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(!ok(&edit_unloaded));

        // The server still works.
        let load = handle(
            &mut server,
            &Request::Load {
                name: "ok".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
    }

    #[test]
    fn edit_changing_layout_reloads() {
        let mut server = Server::new(VerifyOptions::default());
        handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: "borrow a[2]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "p".into(),
                source: "borrow a[3]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("reload"));
        assert_eq!(edit.get("qubits").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn backends_get_separate_sessions_and_status_reports_them() {
        let mut server = Server::new(VerifyOptions::default());
        for (name, backend) in [("s", None), ("b", Some("bdd")), ("a", Some("auto"))] {
            let load = handle(
                &mut server,
                &Request::Load {
                    name: name.into(),
                    source: GOOD.into(),
                    backend: backend.map(str::to_string),
                }
                .to_line(),
            );
            assert!(ok(&load), "{load}");
        }
        // Same structural hash, three backends: three warm sessions.
        assert_eq!(server.loaded_sessions(), 3);

        // Every backend agrees on the verdict; the BDD session reports
        // resident diagram nodes and no SAT state.
        for name in ["s", "b", "a"] {
            let verify = handle(
                &mut server,
                &Request::Verify {
                    name: name.into(),
                    targets: None,
                    deadline_ms: None,
                    trace: false,
                }
                .to_line(),
            );
            assert!(ok(&verify), "{verify}");
            assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));
        }
        let status = handle(&mut server, &Request::Status.to_line());
        let programs = status.get("programs").and_then(Json::as_arr).unwrap();
        let by_name = |n: &str| {
            programs
                .iter()
                .find(|p| p.get("name").and_then(Json::as_str) == Some(n))
                .unwrap()
        };
        assert_eq!(
            by_name("s").get("backend").and_then(Json::as_str),
            Some("sat")
        );
        assert_eq!(
            by_name("b").get("backend").and_then(Json::as_str),
            Some("bdd")
        );
        assert_eq!(
            by_name("a").get("backend").and_then(Json::as_str),
            Some("auto")
        );
        assert!(
            by_name("b")
                .get("bdd_resident_nodes")
                .and_then(Json::as_i64)
                > Some(0)
        );
        assert_eq!(
            by_name("b").get("solver_vars").and_then(Json::as_i64),
            Some(0)
        );
        assert_eq!(
            by_name("s")
                .get("bdd_resident_nodes")
                .and_then(Json::as_i64),
            Some(0)
        );
        assert!(status.get("resident_bdd_nodes").and_then(Json::as_i64) > Some(0));

        // A backend-less reload of an unchanged program is sticky: the
        // warm BDD session is re-used, not rebuilt on the daemon default.
        let reload = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&reload), "{reload}");
        assert_eq!(reload.get("reused").and_then(Json::as_bool), Some(true));
        assert_eq!(reload.get("backend").and_then(Json::as_str), Some("bdd"));
        assert_eq!(server.loaded_sessions(), 3);

        // ...and stickiness follows the name even when the source
        // changed: a backend-less load of an edited program stays on
        // the name's backend instead of reverting to the default.
        let changed = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: format!("{GOOD} X[q[1]]; X[q[1]];"),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&changed), "{changed}");
        assert_eq!(changed.get("backend").and_then(Json::as_str), Some("bdd"));
        // Restore the original source for the steps below.
        let restore = handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(restore.get("backend").and_then(Json::as_str), Some("bdd"));

        // Editing the BDD alias stays incremental on its own backend.
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "b".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        assert_eq!(edit.get("strategy").unwrap().as_str(), Some("incremental"));
        assert_eq!(edit.get("backend").unwrap().as_str(), Some("bdd"));
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "b".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));

        // An unknown backend is rejected with the valid list.
        let bad = handle(
            &mut server,
            &Request::Load {
                name: "x".into(),
                source: GOOD.into(),
                backend: Some("cvc5".into()),
            }
            .to_line(),
        );
        assert!(!ok(&bad));
        assert!(
            bad.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("sat, anf, bdd, auto"),
            "{bad}"
        );
    }

    #[test]
    fn lru_bound_evicts_least_recently_used_session() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                max_sessions: Some(2),
                ..ServerLimits::default()
            },
        );
        let srcs = [
            ("p1", "borrow a[2]; X[a[1]];"),
            ("p2", "borrow a[2]; X[a[2]];"),
            ("p3", "borrow a[2]; CNOT[a[1], a[2]];"),
            ("p4", "borrow a[3]; X[a[1]];"),
        ];
        for (name, src) in &srcs[..2] {
            let load = handle(
                &mut server,
                &Request::Load {
                    name: (*name).into(),
                    source: (*src).into(),
                    backend: None,
                }
                .to_line(),
            );
            assert!(ok(&load));
        }
        assert_eq!(server.loaded_sessions(), 2);

        // Third distinct program evicts the least-recently-used (p1).
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p3".into(),
                source: srcs[2].1.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        assert_eq!(server.loaded_sessions(), 2);
        assert_eq!(server.session_evictions(), 1);
        let gone = handle(
            &mut server,
            &Request::Verify {
                name: "p1".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&gone));
        assert_eq!(gone.get("code").and_then(Json::as_str), Some("not_loaded"));

        // Touch p2, then load p4: p3 is now the LRU victim, p2 survives.
        let v2 = handle(
            &mut server,
            &Request::Verify {
                name: "p2".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&v2));
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p4".into(),
                source: srcs[3].1.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let p3 = handle(
            &mut server,
            &Request::Verify {
                name: "p3".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(!ok(&p3), "p3 was the least recently used");
        let p2 = handle(
            &mut server,
            &Request::Verify {
                name: "p2".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&p2), "recently touched p2 stays warm");

        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("max_sessions").and_then(Json::as_i64), Some(2));
        assert_eq!(
            status.get("session_evictions").and_then(Json::as_i64),
            Some(2)
        );
        assert!(status.get("resident_arena_nodes").and_then(Json::as_i64) > Some(0));
    }

    #[test]
    fn aliases_share_the_lru_slot_and_fall_together() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                max_sessions: Some(1),
                ..ServerLimits::default()
            },
        );
        // Two names, one structure: a single session, no eviction.
        handle(
            &mut server,
            &Request::Load {
                name: "a".into(),
                source: "borrow x[2]; X[x[1]]; X[x[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        handle(
            &mut server,
            &Request::Load {
                name: "b".into(),
                source: "borrow y[2]; X[y[1]]; X[y[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(server.loaded_sessions(), 1);
        assert_eq!(server.session_evictions(), 0);

        // A structurally new load evicts the shared session and both
        // aliases with it.
        handle(
            &mut server,
            &Request::Load {
                name: "c".into(),
                source: "borrow z[2]; CNOT[z[1], z[2]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert_eq!(server.loaded_sessions(), 1);
        for name in ["a", "b"] {
            let r = handle(
                &mut server,
                &Request::Verify {
                    name: name.into(),
                    targets: None,
                    deadline_ms: None,
                    trace: false,
                }
                .to_line(),
            );
            assert_eq!(r.get("code").and_then(Json::as_str), Some("not_loaded"));
        }
    }

    #[test]
    fn idle_sessions_are_swept() {
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                idle_timeout: Some(std::time::Duration::from_millis(25)),
                ..ServerLimits::default()
            },
        );
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: "borrow a[2]; X[a[1]];".into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        assert_eq!(server.loaded_sessions(), 1);

        // Still fresh: a status round-trip does not evict it.
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("sessions").and_then(Json::as_i64), Some(1));

        std::thread::sleep(std::time::Duration::from_millis(40));
        // Any request triggers the sweep afterwards.
        let _ = handle(&mut server, &Request::Status.to_line());
        assert_eq!(server.loaded_sessions(), 0);
        assert_eq!(server.session_evictions(), 1);
        let gone = handle(
            &mut server,
            &Request::Verify {
                name: "p".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert_eq!(gone.get("code").and_then(Json::as_str), Some("not_loaded"));
    }

    #[test]
    fn shutdown_is_signalled() {
        let mut server = Server::new(VerifyOptions::default());
        let (resp, shutdown) = server.handle_line(&Request::Shutdown.to_line());
        assert!(shutdown);
        assert!(resp.contains("\"shutdown\":true"));
    }

    /// Failpoints are process-global; the tests that arm one (or could
    /// trip an armed one via an installed cancel token) serialise here.
    static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn expired_deadline_returns_unknowns_and_daemon_stays_responsive() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");

        // A zero budget is already expired at sweep entry: every target
        // must come back as a structured unknown, never a fake verdict.
        let bounded = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: Some(0),
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&bounded), "{bounded}");
        assert_eq!(bounded.get("all_safe").and_then(Json::as_bool), Some(false));
        let verdicts = bounded.get("verdicts").and_then(Json::as_arr).unwrap();
        assert!(!verdicts.is_empty());
        for v in verdicts {
            assert_eq!(v.get("verdict").and_then(Json::as_str), Some("unknown"));
            assert_eq!(v.get("safe").and_then(Json::as_bool), Some(false));
            assert!(v.get("reason").and_then(Json::as_str).is_some(), "{v}");
            assert!(v.get("witness").is_none(), "an unknown carries no witness");
        }
        assert_eq!(
            bounded.get("unknowns").and_then(Json::as_usize),
            Some(verdicts.len())
        );

        // The session survived the interruption: an unbounded re-verify
        // on the same warm session reaches the true verdict.
        let full = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&full), "{full}");
        assert_eq!(full.get("all_safe").and_then(Json::as_bool), Some(true));
        assert_eq!(full.get("unknowns").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::with_limits(
            VerifyOptions::default(),
            ServerLimits {
                default_deadline: Some(Duration::ZERO),
                ..ServerLimits::default()
            },
        );
        handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        let bounded = handle(
            &mut server,
            &Request::Verify {
                name: "p".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&bounded), "{bounded}");
        assert!(bounded.get("unknowns").and_then(Json::as_usize) > Some(0));
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(
            status.get("default_deadline_ms").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn panicking_session_is_quarantined_and_rebuilt() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));

        // Arm a one-shot panic on the cancellation-injection site (it is
        // polled once per target when a token is installed, so a bounded
        // verify deterministically reaches it).
        qb_testutil::failpoints::arm(
            "spurious_cancel",
            qb_testutil::failpoints::Action::Panic,
            Some(1),
        );
        let poisoned = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: Some(60_000),
                trace: false,
            }
            .to_line(),
        );
        qb_testutil::failpoints::clear("spurious_cancel");
        assert!(!ok(&poisoned), "{poisoned}");
        assert_eq!(
            poisoned.get("code").and_then(Json::as_str),
            Some("internal_error")
        );
        assert_eq!(
            poisoned.get("quarantined").and_then(Json::as_str),
            Some("cccnot")
        );
        assert_eq!(poisoned.get("rebuilt").and_then(Json::as_bool), Some(true));
        assert_eq!(server.quarantined_sessions(), 1);

        // The rebuilt session answers correctly and the daemon never
        // stopped serving.
        let verify = handle(
            &mut server,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn status_surfaces_health_and_shed_counters() {
        let mut server = Server::new(VerifyOptions::default());
        let status = handle(&mut server, &Request::Status.to_line());
        assert!(ok(&status), "{status}");
        assert_eq!(status.get("health").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            status.get("queued_requests").and_then(Json::as_i64),
            Some(0)
        );
        assert_eq!(status.get("queue_budget").and_then(Json::as_i64), Some(256));
        assert_eq!(status.get("sheds_total").and_then(Json::as_i64), Some(0));
        assert_eq!(status.get("breakers_open").and_then(Json::as_i64), Some(0));
        // Every shed reason is pre-listed at zero so dashboards see a
        // stable key set.
        let sheds = status.get("sheds").expect("sheds object");
        for reason in ["mailbox_full", "deadline", "brownout", "breaker"] {
            assert_eq!(
                sheds.get(reason).and_then(Json::as_i64),
                Some(0),
                "{reason}"
            );
        }
    }

    #[test]
    fn circuit_breaker_trips_fast_fails_and_recovers_via_probe() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let limits = ServerLimits {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            ..ServerLimits::default()
        };
        let mut server = Server::with_limits(VerifyOptions::default(), limits);
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let verify_line = Request::Verify {
            name: "cccnot".into(),
            targets: None,
            deadline_ms: Some(60_000),
            trace: false,
        }
        .to_line();

        // Two crashing verifies: each panics inside the session and is
        // quarantine-rebuilt; the second strike trips the breaker.
        for _ in 0..2 {
            qb_testutil::failpoints::arm(
                "spurious_cancel",
                qb_testutil::failpoints::Action::Panic,
                Some(1),
            );
            let poisoned = handle(&mut server, &verify_line);
            assert_eq!(
                poisoned.get("code").and_then(Json::as_str),
                Some("internal_error"),
                "{poisoned}"
            );
        }
        qb_testutil::failpoints::clear("spurious_cancel");

        // Open breaker: verifies fast-fail `unavailable` with a sane
        // retry hint, without touching the session.
        let shed = handle(&mut server, &verify_line);
        assert_eq!(
            shed.get("code").and_then(Json::as_str),
            Some("unavailable"),
            "{shed}"
        );
        let retry = shed
            .get("retry_after_ms")
            .and_then(Json::as_i64)
            .unwrap_or(-1);
        assert!((1..=60_000).contains(&retry), "{shed}");

        // The shed is visible in status: breaker counter and open count.
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("breakers_open").and_then(Json::as_i64), Some(1));
        assert!(
            status
                .get("sheds")
                .and_then(|s| s.get("breaker"))
                .and_then(Json::as_i64)
                .unwrap_or(0)
                >= 1,
            "{status}"
        );

        // After the cooldown one half-open probe is admitted; a probe
        // that crashes re-opens the breaker immediately.
        std::thread::sleep(Duration::from_millis(60));
        qb_testutil::failpoints::arm(
            "spurious_cancel",
            qb_testutil::failpoints::Action::Panic,
            Some(1),
        );
        let failed_probe = handle(&mut server, &verify_line);
        qb_testutil::failpoints::clear("spurious_cancel");
        assert_eq!(
            failed_probe.get("code").and_then(Json::as_str),
            Some("internal_error"),
            "{failed_probe}"
        );
        let shed_again = handle(&mut server, &verify_line);
        assert_eq!(
            shed_again.get("code").and_then(Json::as_str),
            Some("unavailable"),
            "{shed_again}"
        );

        // A clean probe after the next cooldown closes the breaker for
        // good.
        std::thread::sleep(Duration::from_millis(60));
        let probe = handle(&mut server, &verify_line);
        assert!(ok(&probe), "{probe}");
        let verify = handle(&mut server, &verify_line);
        assert!(ok(&verify), "{verify}");
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(status.get("breakers_open").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn edit_closes_an_open_breaker() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let limits = ServerLimits {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(3600),
            ..ServerLimits::default()
        };
        let mut server = Server::with_limits(VerifyOptions::default(), limits);
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let verify_line = Request::Verify {
            name: "cccnot".into(),
            targets: None,
            deadline_ms: Some(60_000),
            trace: false,
        }
        .to_line();
        qb_testutil::failpoints::arm(
            "spurious_cancel",
            qb_testutil::failpoints::Action::Panic,
            Some(1),
        );
        let poisoned = handle(&mut server, &verify_line);
        qb_testutil::failpoints::clear("spurious_cancel");
        assert_eq!(
            poisoned.get("code").and_then(Json::as_str),
            Some("internal_error")
        );
        let shed = handle(&mut server, &verify_line);
        assert_eq!(shed.get("code").and_then(Json::as_str), Some("unavailable"));

        // Edits pass the breaker — replacing the program is the likely
        // fix for a crashing session — and a clean edit closes it with
        // no cooldown wait (the cooldown above is an hour).
        let edit = handle(
            &mut server,
            &Request::Edit {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        let verify = handle(&mut server, &verify_line);
        assert!(ok(&verify), "{verify}");
    }

    #[test]
    fn responses_carry_daemon_health() {
        let mut server = Server::new(VerifyOptions::default());
        let load = handle(
            &mut server,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        // Every response is stamped with the daemon health so clients
        // (notably `watch`) can back off without a status round-trip.
        assert_eq!(load.get("health").and_then(Json::as_str), Some("ok"));
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qb-serve-{tag}-{}", std::process::id()))
    }

    #[test]
    fn snapshot_restores_programs_backends_and_auto_winners() {
        let dir = temp_state_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut first = Server::new(VerifyOptions::default());
        first.set_state_dir(Some(dir.clone()));
        let load = handle(
            &mut first,
            &Request::Load {
                name: "cccnot".into(),
                source: GOOD.into(),
                backend: Some("auto".into()),
            }
            .to_line(),
        );
        assert!(ok(&load), "{load}");
        // Learn the auto winner, then edit to the broken source: the
        // snapshot must retain the *post-edit* program.
        let verify = handle(
            &mut first,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify));
        let learned = verify
            .get("auto_preference")
            .and_then(Json::as_str)
            .map(String::from)
            .unwrap();
        let edit = handle(
            &mut first,
            &Request::Edit {
                name: "cccnot".into(),
                source: BROKEN.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&edit), "{edit}");
        drop(first); // crash stand-in: nothing flushed at drop

        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 1);
        let status = handle(&mut second, &Request::Status.to_line());
        let programs = status.get("programs").and_then(Json::as_arr).unwrap();
        assert_eq!(programs.len(), 1);
        assert_eq!(
            programs[0].get("name").and_then(Json::as_str),
            Some("cccnot")
        );
        assert_eq!(
            programs[0].get("backend").and_then(Json::as_str),
            Some("auto")
        );
        if learned != "undecided" {
            assert!(
                status.get("auto_winners_remembered").and_then(Json::as_i64) > Some(0),
                "learned winner {learned:?} survives the restart: {status}"
            );
        }
        // The restored session re-verifies the edited program to the
        // same verdict the pre-crash daemon held.
        let verify = handle(
            &mut second,
            &Request::Verify {
                name: "cccnot".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            }
            .to_line(),
        );
        assert!(ok(&verify), "{verify}");
        assert_eq!(verify.get("all_safe").and_then(Json::as_bool), Some(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_snapshot_is_rejected_and_daemon_starts_cold() {
        let dir = temp_state_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let mut first = Server::new(VerifyOptions::default());
        first.set_state_dir(Some(dir.clone()));
        let load = handle(
            &mut first,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        drop(first);

        // Tear the snapshot mid-file, as a crash during a non-atomic
        // write would; the checksum (or the missing line) must reject it.
        let path = dir.join(STATE_FILE);
        let data = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();

        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 0);
        assert_eq!(second.loaded_sessions(), 0);
        // Cold but healthy: a fresh load and snapshot cycle works.
        let load = handle(
            &mut second,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        assert!(ok(&load));
        let mut third = Server::new(VerifyOptions::default());
        third.set_state_dir(Some(dir.clone()));
        assert_eq!(third.restore_state(), 1, "the rewritten snapshot is whole");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_write_failure_is_not_fatal() {
        let _guard = FAILPOINT_LOCK.lock().unwrap();
        let dir = temp_state_dir("failpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let mut server = Server::new(VerifyOptions::default());
        server.set_state_dir(Some(dir.clone()));
        qb_testutil::failpoints::arm(
            "snapshot_write",
            qb_testutil::failpoints::Action::Error,
            Some(1),
        );
        let load = handle(
            &mut server,
            &Request::Load {
                name: "p".into(),
                source: GOOD.into(),
                backend: None,
            }
            .to_line(),
        );
        qb_testutil::failpoints::clear("snapshot_write");
        assert!(ok(&load), "a failed snapshot write must not fail the load");
        assert!(!dir.join(STATE_FILE).exists());
        // The state stayed dirty, so the very next request retries the
        // write — and this one succeeds.
        let status = handle(&mut server, &Request::Status.to_line());
        assert_eq!(
            status.get("snapshot_failures").and_then(Json::as_i64),
            Some(1)
        );
        assert!(dir.join(STATE_FILE).exists());
        let mut second = Server::new(VerifyOptions::default());
        second.set_state_dir(Some(dir.clone()));
        assert_eq!(second.restore_state(), 1, "nothing was lost to the fault");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
