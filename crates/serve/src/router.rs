//! The concurrent routing core: name → actor resolution, the keyed
//! session table, and everything that must outlive any single session
//! (auto-portfolio winners, crash-recovery snapshots, request metering,
//! graceful shutdown).
//!
//! The router owns no verification state. Each loaded program lives in
//! its own actor thread ([`crate::actor`]); the router's table maps
//! client names and `(structural hash, backend)` keys onto actor
//! mailboxes. Reader threads call [`route_line`] concurrently; the
//! table lock is held only for map lookups and rebinds — never across
//! an elaboration, a session build, or a solve — so routing for one
//! client never serializes behind another client's sweep.
//!
//! Lock order (outermost first): an actor's `send_lock`, then `table`,
//! then `auto_winners`. `persist_lock`, `snap_stop` and the reply
//! counter are leaves taken while holding none of the above (except
//! `mark_dirty`, which takes `snap_stop` alone).

use crate::actor::{
    bounce, spawn_actor, ActorMsg, ActorShared, ReplySender, RequestCtx, MAILBOX_CAP,
};
use crate::daemon::ServerLimits;
use crate::json::Json;
use crate::protocol::{
    coded_error_response, error_response, overloaded_response, unavailable_response, Request,
};
use qb_core::{AutoPreference, BackendKind, InitialValue, VerifyOptions, VerifySession};
use qb_lang::{elaborate, gate_diff, parse, structural_hash, ElaboratedProgram, QubitKind};
use qb_obs::{FlightRecorder, RecordedRequest, SpanEvent, TimeSeries};
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Key of a warm session: programs are shared by structural hash *per
/// decision backend*, so `--backend bdd` and the daemon default each get
/// their own warm state for the same circuit.
pub(crate) type SessionKey = (u64, BackendKind);

/// Stable identity of one actor (one worker thread). Keys can be
/// rekeyed by edits; the id never changes for the life of the thread.
pub(crate) type ActorId = u64;

/// Remembered auto-portfolio winners kept across session eviction,
/// least-recently-touched entries evicted beyond this.
const AUTO_WINNERS_CAP: usize = 1024;

/// Snapshot file name inside the state directory.
pub(crate) const STATE_FILE: &str = "state.json";

/// Sampler-ring capacity: ten minutes of history at the default 1s
/// cadence.
const TIMESERIES_CAP: usize = 600;

/// The trailing window `top` computes its rates and percentiles over.
const TOP_WINDOW_NS: u64 = 60_000_000_000;

/// Daemon health states, ordered by severity. The numeric values are
/// what the `qb_health` gauge exports.
pub(crate) const HEALTH_OK: u8 = 0;
pub(crate) const HEALTH_DEGRADED: u8 = 1;
pub(crate) const HEALTH_OVERLOADED: u8 = 2;

pub(crate) fn health_name(health: u8) -> &'static str {
    match health {
        HEALTH_OK => "ok",
        HEALTH_DEGRADED => "degraded",
        _ => "overloaded",
    }
}

/// Every reason a request can be shed, the label space of
/// `qb_shed_total`: the mailbox was full, the deadline could not beat
/// the drain estimate, brownout shed an unbounded verify, or the
/// session's circuit breaker was open.
pub(crate) const SHED_REASONS: [&str; 4] = ["mailbox_full", "deadline", "brownout", "breaker"];

/// Floor/ceiling for the `retry_after_ms` hint: even an instantly-
/// draining queue deserves a breather, and no estimate should park a
/// client for more than a few seconds.
fn retry_after_ms(queue_est_ms: u64) -> u64 {
    queue_est_ms.clamp(25, 5_000)
}

/// Exemplar file name for a request id. Zero-padded so lexicographic
/// directory order is chronological (retention deletes the oldest).
pub(crate) fn exemplar_file_name(request_id: u64) -> String {
    format!("req-{request_id:012}.trace.json")
}

pub(crate) fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// An `ok:false` response carrying the machine-readable `not_loaded`
/// code, so clients (notably `qborrow watch` across a daemon restart)
/// can fall back to a fresh `load` instead of failing forever.
pub(crate) fn not_loaded_response(name: &str) -> Json {
    coded_error_response(&format!("program {name:?} is not loaded"), "not_loaded")
}

pub(crate) fn elaborate_source(source: &str) -> Result<ElaboratedProgram, String> {
    let ast = parse(source).map_err(|e| e.to_string())?;
    elaborate(&ast).map_err(|e| e.to_string())
}

pub(crate) fn initial_values(program: &ElaboratedProgram) -> Vec<InitialValue> {
    (0..program.num_qubits())
        .map(|q| match program.qubit_kinds[q] {
            QubitKind::Clean => InitialValue::Zero,
            QubitKind::BorrowedDirty | QubitKind::TrustedDirty => InitialValue::Free,
        })
        .collect()
}

/// The request's wire command name, the label requests are metered
/// under.
fn request_cmd(request: &Request) -> &'static str {
    match request {
        Request::Load { .. } => "load",
        Request::Verify { .. } => "verify",
        Request::Edit { .. } => "edit",
        Request::Status => "status",
        Request::Metrics => "metrics",
        Request::Top => "top",
        Request::Trace { .. } => "trace",
        Request::Unload { .. } => "unload",
        Request::Shutdown => "shutdown",
    }
}

/// FNV-1a 64-bit, the snapshot checksum: torn or bit-flipped state files
/// are detected and discarded on restore instead of resurrecting a
/// corrupt session table.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Atomically replaces the snapshot: payload line + checksum line to a
/// temp file, fsync'd, then renamed over the live name — a crash at any
/// instant leaves either the old complete snapshot or the new one.
pub(crate) fn write_snapshot(dir: &Path, payload: &str) -> std::io::Result<()> {
    if qb_testutil::failpoints::should_fail("snapshot_write") {
        return Err(std::io::Error::other("injected snapshot_write failure"));
    }
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join("state.json.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(payload.as_bytes())?;
        file.write_all(b"\n")?;
        file.write_all(format!("{:016x}\n", fnv1a64(payload.as_bytes())).as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(STATE_FILE))
}

/// One live actor as the router sees it: its mailbox, shared state, the
/// key it currently serves, and LRU/idle stamps.
pub(crate) struct ActorEntry {
    tx: SyncSender<ActorMsg>,
    shared: Arc<ActorShared>,
    key: SessionKey,
    /// Request-counter stamp of the last touch (LRU eviction order).
    last_used: u64,
    /// Wall-clock time of the last touch (idle eviction).
    last_used_at: Instant,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Everything behind the table lock: actors by id, key → actor, client
/// names aliasing actors, and the retained sources the snapshot payload
/// and fork-path diffs read.
#[derive(Default)]
struct Table {
    actors: HashMap<ActorId, ActorEntry>,
    keys: HashMap<SessionKey, ActorId>,
    names: HashMap<String, ActorId>,
    /// name → (backend, retained source). A mirror kept on the router
    /// side so snapshots never queue behind a mailbox.
    sources: BTreeMap<String, (BackendKind, String)>,
    next_actor: ActorId,
    session_evictions: u64,
}

/// Removes `aid` and everything referencing it. Does not count an
/// eviction; callers that evict do that themselves.
fn remove_actor(t: &mut Table, aid: ActorId) -> bool {
    let Some(entry) = t.actors.remove(&aid) else {
        return false;
    };
    if t.keys.get(&entry.key) == Some(&aid) {
        t.keys.remove(&entry.key);
    }
    let dropped: Vec<String> = t
        .names
        .iter()
        .filter(|(_, &a)| a == aid)
        .map(|(n, _)| n.clone())
        .collect();
    for name in dropped {
        t.names.remove(&name);
        t.sources.remove(&name);
    }
    // Dropping the entry closes the mailbox; the worker drains what is
    // queued (answering each message) and exits.
    drop(entry);
    true
}

fn evict(t: &mut Table, aid: ActorId) {
    if remove_actor(t, aid) {
        t.session_evictions += 1;
    }
}

/// Drops `aid` if no client name aliases it any more.
fn drop_if_unaliased(t: &mut Table, aid: ActorId) {
    if !t.names.values().any(|&a| a == aid) {
        remove_actor(t, aid);
    }
}

/// Enforces the LRU bound, never evicting `protect` (the actor the
/// current request just created or touched).
fn evict_over_capacity(t: &mut Table, max: Option<usize>, protect: ActorId) {
    let Some(max) = max else {
        return;
    };
    let max = max.max(1);
    while t.actors.len() > max {
        let victim = t
            .actors
            .iter()
            .filter(|(&a, _)| a != protect)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&a, _)| a);
        match victim {
            Some(a) => evict(t, a),
            None => return,
        }
    }
}

/// Evicts every actor idle past the configured timeout. Returns whether
/// anything was evicted (the caller marks the snapshot dirty).
fn sweep_idle(t: &mut Table, timeout: Option<Duration>) -> bool {
    let Some(timeout) = timeout else {
        return false;
    };
    let stale: Vec<ActorId> = t
        .actors
        .iter()
        .filter(|(_, e)| e.last_used_at.elapsed() >= timeout)
        .map(|(&a, _)| a)
        .collect();
    let any = !stale.is_empty();
    for aid in stale {
        evict(t, aid);
    }
    any
}

/// Binds `name` to `aid`, retaining the source for snapshots and
/// dropping the previously bound actor if this name was its last alias.
fn bind_name(t: &mut Table, name: &str, aid: ActorId, backend: BackendKind, source: &str) {
    t.sources
        .insert(name.to_string(), (backend, source.to_string()));
    if let Some(old) = t.names.insert(name.to_string(), aid) {
        if old != aid {
            drop_if_unaliased(t, old);
        }
    }
}

fn touch(t: &mut Table, aid: ActorId, stamp: u64) {
    if let Some(entry) = t.actors.get_mut(&aid) {
        entry.last_used = stamp;
        entry.last_used_at = Instant::now();
    }
}

/// Self-heals a dangling name→actor alias (a broken internal
/// invariant): the alias is dropped and the client told to reload,
/// instead of killing the daemon — and every other loaded program —
/// with an `expect` panic. Caller must `mark_dirty` after unlocking.
fn desync(t: &mut Table, name: &str) -> Json {
    t.names.remove(name);
    t.sources.remove(name);
    coded_error_response(
        &format!("session table desynchronised for {name:?}; alias dropped, please reload"),
        "internal_error",
    )
}

/// What [`route_line`] tells the caller to do next: keep serving, or
/// run the graceful-shutdown sequence (the reply is deferred until the
/// drain completes).
pub(crate) enum Routed {
    Done,
    Shutdown { request_id: u64, started: Instant },
}

/// How a shutdown request reaches the accept loops: flip `stop`, then
/// poke each listener with a dummy connection so blocked `accept`s
/// return and observe the flag.
#[derive(Clone)]
pub(crate) struct ShutdownGate {
    pub stop: Arc<AtomicBool>,
    pub socket: PathBuf,
    pub tcp: Option<std::net::SocketAddr>,
}

/// The concurrent daemon core. All state is internally synchronised;
/// reader threads share one `Arc<Router>`.
pub(crate) struct Router {
    verify: VerifyOptions,
    limits: ServerLimits,
    table: Mutex<Table>,
    /// Per-circuit auto-portfolio memory: which backend won, keyed by
    /// structural hash. Survives session eviction and unload, so a
    /// reloaded circuit skips the losing backend attempt immediately.
    /// LRU-bounded ([`AUTO_WINNERS_CAP`]) like every other piece of
    /// per-circuit daemon state.
    auto_winners: Mutex<HashMap<u64, (AutoPreference, u64)>>,
    requests: AtomicU64,
    quarantines: AtomicU64,
    accept_errors: AtomicU64,
    snapshot_failures: AtomicU64,
    /// Sum of every mailbox's depth: the daemon-wide queue pressure the
    /// health state machine runs on. Maintained by [`Router::note_enqueue`]
    /// / [`Router::note_dequeue`] around every mailbox send/recv.
    total_queued: AtomicUsize,
    /// Current health state ([`HEALTH_OK`]/[`HEALTH_DEGRADED`]/
    /// [`HEALTH_OVERLOADED`]), driven by `total_queued` against the
    /// queue budget with hysteresis so it cannot flap.
    health: AtomicU8,
    /// Cumulative shed counts by reason (the `status` mirror of the
    /// `qb_shed_total` counter). Leaf lock.
    sheds: Mutex<BTreeMap<&'static str, u64>>,
    state_dir: Mutex<Option<PathBuf>>,
    /// Set by mutating requests; cleared when a snapshot is written.
    state_dirty: AtomicBool,
    /// Serialises snapshot writes (the dedicated writer thread vs the
    /// synchronous flush `status` and shutdown perform).
    persist_lock: Mutex<()>,
    /// Signal for the snapshot writer thread: `true` = exit.
    snap_stop: Mutex<bool>,
    snap_cvar: Condvar,
    log_sink: Mutex<Option<std::fs::File>>,
    /// Always-on flight recorder: the bounded ring of recently
    /// completed request traces and the tail-sampling exemplar policy.
    recorder: FlightRecorder,
    /// Span trees actors deposited under their request id, claimed by
    /// [`Router::finish`] when the response funnels through.
    pending_spans: Mutex<HashMap<u64, Vec<SpanEvent>>>,
    /// The sampler thread's ring of periodic metrics snapshots; `top`
    /// computes its rates from this.
    timeseries: Mutex<TimeSeries>,
    /// Where exemplar traces are written, with the retention cap
    /// (newest N kept). `None` keeps exemplars in memory only.
    trace_dir: Mutex<Option<(PathBuf, usize)>>,
    /// Signal for the sampler thread: `true` = exit.
    sampler_stop: Mutex<bool>,
    sampler_cvar: Condvar,
    shutting_down: AtomicBool,
    /// Responses handed to writer threads but not yet flushed to their
    /// sockets; graceful shutdown waits for this to reach zero so no
    /// in-flight request gets a torn response.
    pending_replies: Mutex<usize>,
    replies_cvar: Condvar,
    gate: Mutex<Option<ShutdownGate>>,
}

// ---- request entry points (free functions: they clone the Arc into
// ---- newly spawned actor threads) -------------------------------------

/// Parses and routes one request line. Replies are delivered through
/// `reply` (possibly from another thread, after this returns);
/// `queue_ns` is how long the line sat received-but-unrouted.
pub(crate) fn route_line(
    router: &Arc<Router>,
    line: &str,
    queue_ns: u64,
    reply: &ReplySender,
) -> Routed {
    let request_id = router.requests.fetch_add(1, Ordering::SeqCst) + 1;
    let started = Instant::now();
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            router.finish(
                request_id,
                "malformed",
                error_response(&e),
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
            return Routed::Done;
        }
    };
    if router.shutting_down.load(Ordering::SeqCst)
        && !matches!(request, Request::Status | Request::Shutdown)
    {
        router.finish(
            request_id,
            request_cmd(&request),
            coded_error_response("daemon is shutting down", "shutting_down"),
            queue_ns,
            started.elapsed().as_nanos() as u64,
            reply,
        );
        return Routed::Done;
    }
    // The mailbox-wait clock starts when the line was *received*: fold
    // the connection-buffer wait into the enqueue instant so queue-wait
    // and mailbox-wait agree about when queueing began.
    let enqueued = started
        .checked_sub(Duration::from_nanos(queue_ns))
        .unwrap_or(started);
    let ctx = |cmd: &'static str| RequestCtx {
        request_id,
        cmd,
        enqueued,
        reply: reply.clone(),
    };
    match request {
        Request::Load {
            name,
            source,
            backend,
        } => route_load(router, name, &source, &backend, ctx("load")),
        Request::Verify {
            name,
            targets,
            deadline_ms,
            trace,
        } => match router.resolve(&name) {
            Err(response) => router.finish(
                request_id,
                "verify",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            ),
            Ok(pair) => router.dispatch(
                pair,
                ActorMsg::Verify {
                    name,
                    targets,
                    deadline_ms,
                    trace,
                    ctx: ctx("verify"),
                },
            ),
        },
        Request::Edit {
            name,
            source,
            backend,
        } => route_edit(router, name, &source, &backend, ctx("edit")),
        Request::Status => {
            // `status` flushes any pending snapshot synchronously first,
            // so state read over the socket is already on disk if the
            // process dies right after (kill -9 determinism for the
            // crash-recovery tests).
            router.persist_once();
            let response = router.status();
            router.finish(
                request_id,
                "status",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
        }
        Request::Metrics => {
            let response = router.metrics();
            router.finish(
                request_id,
                "metrics",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
        }
        Request::Top => {
            let response = router.top();
            router.finish(
                request_id,
                "top",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
        }
        Request::Trace { request_id: traced } => {
            let response = router.trace_of(traced);
            router.finish(
                request_id,
                "trace",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
        }
        Request::Unload { name } => {
            let response = router.unload(&name);
            router.finish(
                request_id,
                "unload",
                response,
                queue_ns,
                started.elapsed().as_nanos() as u64,
                reply,
            );
        }
        Request::Shutdown => {
            // The reply is deferred: the caller drains and persists
            // first, so a shutdown acknowledgement means the final
            // snapshot is on disk.
            return Routed::Shutdown {
                request_id,
                started,
            };
        }
    }
    router.after_request();
    Routed::Done
}

fn route_load(
    router: &Arc<Router>,
    name: String,
    source: &str,
    requested: &Option<String>,
    ctx: RequestCtx,
) {
    let program = match elaborate_source(source) {
        Ok(p) => p,
        Err(e) => return router.finish_direct(ctx, error_response(&e)),
    };
    let hash = structural_hash(&program);
    // Backend selection is sticky: a backend-less load of a name that
    // already holds a session keeps that session's backend, so a plain
    // `client verify` after a `--backend bdd` one stays on BDD instead
    // of silently rebuilding on the daemon default.
    let backend = match requested {
        Some(_) => match router.resolve_backend(requested) {
            Ok(b) => b,
            Err(e) => return router.finish_direct(ctx, error_response(&e)),
        },
        None => {
            let t = router.table.lock().unwrap();
            t.names
                .get(&name)
                .and_then(|aid| t.actors.get(aid))
                .map(|e| e.key.1)
                .unwrap_or(router.verify.backend)
        }
    };
    let key = (hash, backend);
    // Fast path: the key is already warm — re-alias without building a
    // session.
    if let Some(pair) = router.try_alias_load(&name, key, source) {
        router.mark_dirty();
        return router.dispatch(
            pair,
            ActorMsg::Describe {
                name,
                extra: vec![("ok", Json::Bool(true)), ("reused", Json::Bool(true))],
                ctx,
            },
        );
    }
    // Build the session outside every lock: this is the expensive part
    // (full encode of the circuit) and must not serialize other
    // clients' routing.
    let session = match router.new_session(&program, hash, backend) {
        Ok(s) => s,
        Err(e) => return router.finish_direct(ctx, error_response(&e)),
    };
    let (pair, reused) = {
        let mut t = router.table.lock().unwrap();
        if let Some(&aid) = t.keys.get(&key) {
            // Lost a race: an identical load landed first. Alias to it
            // and drop our freshly built session.
            bind_name(&mut t, &name, aid, backend, source);
            touch(&mut t, aid, router.requests.load(Ordering::SeqCst));
            evict_over_capacity(&mut t, router.limits.max_sessions, aid);
            let e = &t.actors[&aid];
            ((e.tx.clone(), Arc::clone(&e.shared)), true)
        } else {
            let aid = t.next_actor;
            t.next_actor += 1;
            let (tx, shared, handle) = spawn_actor(
                Arc::clone(router),
                aid,
                key,
                program,
                session,
                source.to_string(),
            );
            t.actors.insert(
                aid,
                ActorEntry {
                    tx: tx.clone(),
                    shared: Arc::clone(&shared),
                    key,
                    last_used: router.requests.load(Ordering::SeqCst),
                    last_used_at: Instant::now(),
                    handle: Some(handle),
                },
            );
            t.keys.insert(key, aid);
            bind_name(&mut t, &name, aid, backend, source);
            touch(&mut t, aid, router.requests.load(Ordering::SeqCst));
            evict_over_capacity(&mut t, router.limits.max_sessions, aid);
            ((tx, shared), false)
        }
    };
    router.mark_dirty();
    router.dispatch(
        pair,
        ActorMsg::Describe {
            name,
            extra: vec![("ok", Json::Bool(true)), ("reused", Json::Bool(reused))],
            ctx,
        },
    );
}

/// What an edit should do, decided under the table lock. The exclusive
/// path must take the actor's send lock *first* (lock order), so the
/// decision is revalidated after reacquiring in order — a concurrent
/// rebind between the two locks sends us around the loop again.
enum EditDecision {
    Send(
        (SyncSender<ActorMsg>, Arc<ActorShared>),
        Vec<(&'static str, Json)>,
    ),
    ExclusiveEdit {
        aid: ActorId,
        old_key: SessionKey,
        new_key: SessionKey,
        shared: Arc<ActorShared>,
        tx: SyncSender<ActorMsg>,
    },
    Fork {
        backend: BackendKind,
        old_source: Option<String>,
    },
}

fn route_edit(
    router: &Arc<Router>,
    name: String,
    source: &str,
    requested: &Option<String>,
    ctx: RequestCtx,
) {
    let program = match elaborate_source(source) {
        Ok(p) => p,
        Err(e) => return router.finish_direct(ctx, error_response(&e)),
    };
    let new_hash = structural_hash(&program);
    let requested_backend = match requested {
        None => None,
        Some(_) => match router.resolve_backend(requested) {
            Ok(b) => Some(b),
            Err(e) => return router.finish_direct(ctx, error_response(&e)),
        },
    };
    // `program` is consumed by the mailbox message on the exclusive
    // path; held as an Option so the retry loop can keep it.
    let mut program = Some(program);
    for _attempt in 0..8 {
        let decision = {
            let mut t = router.table.lock().unwrap();
            let Some(&aid) = t.names.get(&name) else {
                return router.finish_direct(ctx, not_loaded_response(&name));
            };
            let Some(entry) = t.actors.get(&aid) else {
                let response = desync(&mut t, &name);
                drop(t);
                router.mark_dirty();
                return router.finish_direct(ctx, response);
            };
            let old_key = entry.key;
            // An edit keeps its session's backend unless one is
            // requested.
            let backend = requested_backend.unwrap_or(old_key.1);
            let new_key = (new_hash, backend);
            if new_key == old_key {
                touch(&mut t, aid, router.requests.load(Ordering::SeqCst));
                let e = &t.actors[&aid];
                EditDecision::Send(
                    (e.tx.clone(), Arc::clone(&e.shared)),
                    vec![
                        ("ok", Json::Bool(true)),
                        ("changed", Json::Bool(false)),
                        ("strategy", Json::Str("identical".into())),
                    ],
                )
            } else if let Some(&other) = t.keys.get(&new_key) {
                // An identical program is already warm under another
                // name (or backend): just re-alias.
                bind_name(&mut t, &name, other, backend, source);
                touch(&mut t, other, router.requests.load(Ordering::SeqCst));
                let e = &t.actors[&other];
                EditDecision::Send(
                    (e.tx.clone(), Arc::clone(&e.shared)),
                    vec![
                        ("ok", Json::Bool(true)),
                        ("changed", Json::Bool(true)),
                        ("strategy", Json::Str("aliased".into())),
                    ],
                )
            } else {
                let aliased = t.names.values().filter(|&&a| a == aid).count() > 1;
                if !aliased && backend == old_key.1 {
                    let e = &t.actors[&aid];
                    EditDecision::ExclusiveEdit {
                        aid,
                        old_key,
                        new_key,
                        shared: Arc::clone(&e.shared),
                        tx: e.tx.clone(),
                    }
                } else {
                    EditDecision::Fork {
                        backend,
                        old_source: t.sources.get(&name).map(|(_, s)| s.clone()),
                    }
                }
            }
        };
        match decision {
            EditDecision::Send(pair, extra) => {
                let aliased = extra
                    .iter()
                    .any(|(k, v)| *k == "strategy" && *v == Json::Str("aliased".into()));
                if aliased {
                    router.mark_dirty();
                }
                return router.dispatch(pair, ActorMsg::Describe { name, extra, ctx });
            }
            EditDecision::ExclusiveEdit {
                aid,
                old_key,
                new_key,
                shared,
                tx,
            } => {
                // Rekey-then-send must be atomic with respect to other
                // senders to this mailbox: take the actor's send lock
                // first (lock order), then revalidate the table —
                // another thread may have rebound the name between the
                // two lock acquisitions.
                let guard = shared.send_lock.lock().unwrap();
                // Capacity check before the rekey (exact under the send
                // lock): a full mailbox sheds the edit with nothing to
                // roll back, instead of the old blocking send.
                let depth = shared.queue_depth.load(Ordering::SeqCst);
                if depth >= MAILBOX_CAP {
                    drop(guard);
                    let est = router.drain_estimate_ms(&shared, depth);
                    router.note_shed("mailbox_full");
                    return router.finish_direct(
                        ctx,
                        overloaded_response(
                            "session mailbox is full",
                            retry_after_ms(est),
                            depth,
                            est,
                        ),
                    );
                }
                let valid = {
                    let mut t = router.table.lock().unwrap();
                    let still_bound = t.names.get(&name) == Some(&aid)
                        && t.actors.get(&aid).map(|e| e.key) == Some(old_key)
                        && t.names.values().filter(|&&a| a == aid).count() == 1
                        && !t.keys.contains_key(&new_key);
                    if still_bound {
                        t.keys.remove(&old_key);
                        t.keys.insert(new_key, aid);
                        if let Some(e) = t.actors.get_mut(&aid) {
                            e.key = new_key;
                        }
                        touch(&mut t, aid, router.requests.load(Ordering::SeqCst));
                        t.sources
                            .insert(name.clone(), (new_key.1, source.to_string()));
                    }
                    still_bound
                };
                if !valid {
                    drop(guard);
                    continue; // decide again under the current table
                }
                router.mark_dirty();
                shared.queue_depth.fetch_add(1, Ordering::SeqCst);
                router.note_enqueue();
                let msg = ActorMsg::Edit {
                    name: name.clone(),
                    program: program.take().expect("edit program consumed once"),
                    source: source.to_string(),
                    ctx,
                };
                if let Err(err) = tx.try_send(msg) {
                    shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    router.note_dequeue();
                    drop(guard);
                    // The actor died between resolve and send (`Full` is
                    // unreachable: the depth check above ran under the
                    // send lock): heal the dangling rekey so a later
                    // load of this program does not alias a dead
                    // mailbox.
                    {
                        let mut t = router.table.lock().unwrap();
                        if t.keys.get(&new_key) == Some(&aid) {
                            t.keys.remove(&new_key);
                        }
                    }
                    let msg = match err {
                        TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
                    };
                    let (bounced_name, ctx) = bounce(msg);
                    let queue_ns = ctx.enqueued.elapsed().as_nanos() as u64;
                    router.finish(
                        ctx.request_id,
                        ctx.cmd,
                        not_loaded_response(&bounced_name),
                        queue_ns,
                        0,
                        &ctx.reply,
                    );
                }
                return;
            }
            EditDecision::Fork {
                backend,
                old_source,
            } => {
                // Aliased (or backend-changing) edit: other names keep
                // the old session; this name gets a fresh one. Built
                // outside every lock, like a load.
                let forked = program.take().expect("edit program consumed once");
                let session = match router.new_session(&forked, new_hash, backend) {
                    Ok(s) => s,
                    Err(e) => return router.finish_direct(ctx, error_response(&e)),
                };
                // The single-threaded daemon reported the gate diff
                // against the replaced program; recover it from the
                // retained source (skipped if it no longer elaborates).
                let mut extra = vec![
                    ("ok", Json::Bool(true)),
                    ("changed", Json::Bool(true)),
                    ("strategy", Json::Str("reload".into())),
                ];
                if let Some(old_program) =
                    old_source.as_deref().and_then(|s| elaborate_source(s).ok())
                {
                    let diff = gate_diff(old_program.circuit.gates(), forked.circuit.gates());
                    extra.push(("common_prefix", Json::Int(diff.common_prefix as i64)));
                    extra.push(("removed_gates", Json::Int(diff.removed as i64)));
                    extra.push(("added_gates", Json::Int(diff.added as i64)));
                }
                let new_key = (new_hash, backend);
                let pair = {
                    let mut t = router.table.lock().unwrap();
                    if let Some(&other) = t.keys.get(&new_key) {
                        bind_name(&mut t, &name, other, backend, source);
                        touch(&mut t, other, router.requests.load(Ordering::SeqCst));
                        let e = &t.actors[&other];
                        (e.tx.clone(), Arc::clone(&e.shared))
                    } else {
                        let aid = t.next_actor;
                        t.next_actor += 1;
                        let (tx, shared, handle) = spawn_actor(
                            Arc::clone(router),
                            aid,
                            new_key,
                            forked,
                            session,
                            source.to_string(),
                        );
                        t.actors.insert(
                            aid,
                            ActorEntry {
                                tx: tx.clone(),
                                shared: Arc::clone(&shared),
                                key: new_key,
                                last_used: router.requests.load(Ordering::SeqCst),
                                last_used_at: Instant::now(),
                                handle: Some(handle),
                            },
                        );
                        t.keys.insert(new_key, aid);
                        bind_name(&mut t, &name, aid, backend, source);
                        touch(&mut t, aid, router.requests.load(Ordering::SeqCst));
                        evict_over_capacity(&mut t, router.limits.max_sessions, aid);
                        (tx, shared)
                    }
                };
                router.mark_dirty();
                return router.dispatch(pair, ActorMsg::Describe { name, extra, ctx });
            }
        }
    }
    router.finish_direct(
        ctx,
        coded_error_response(
            &format!("edit of {name:?} kept racing concurrent rebinds; please retry"),
            "retry",
        ),
    );
}

/// Replays the snapshot in the configured state directory, if any:
/// seeds the auto-portfolio winners, then re-loads every program under
/// its name and backend. Returns the number of programs restored. A
/// missing, torn or checksum-failing snapshot starts cold (logged,
/// never fatal).
pub(crate) fn restore_state(router: &Arc<Router>) -> usize {
    let Some(dir) = router.state_dir.lock().unwrap().clone() else {
        return 0;
    };
    let path = dir.join(STATE_FILE);
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(_) => return 0,
    };
    let mut lines = data.lines();
    let (payload, checksum) = match (lines.next(), lines.next()) {
        (Some(p), Some(c)) => (p, c),
        _ => {
            eprintln!(
                "qb-serve: snapshot {} is truncated; starting cold",
                path.display()
            );
            return 0;
        }
    };
    if checksum.trim() != format!("{:016x}", fnv1a64(payload.as_bytes())) {
        eprintln!(
            "qb-serve: snapshot {} fails its checksum; starting cold",
            path.display()
        );
        return 0;
    }
    let Ok(state) = Json::parse(payload) else {
        eprintln!(
            "qb-serve: snapshot {} is not valid JSON; starting cold",
            path.display()
        );
        return 0;
    };
    // Winners first, so the replayed loads seed their auto sessions
    // with the learned preference instead of re-learning it.
    if let Some(winners) = state.get("auto_winners").and_then(Json::as_arr) {
        let stamp = router.requests.load(Ordering::SeqCst);
        let mut map = router.auto_winners.lock().unwrap();
        for winner in winners {
            let Some(pair) = winner.as_arr() else {
                continue;
            };
            let (Some(hash), Some(pref)) = (
                pair.first().and_then(Json::as_str),
                pair.get(1).and_then(Json::as_str),
            ) else {
                continue;
            };
            if let (Ok(hash), Some(pref)) =
                (u64::from_str_radix(hash, 16), AutoPreference::parse(pref))
            {
                map.insert(hash, (pref, stamp));
            }
        }
    }
    let mut restored = 0;
    if let Some(programs) = state.get("programs").and_then(Json::as_arr) {
        for program in programs {
            let (Some(name), Some(source)) = (
                program.get("name").and_then(Json::as_str),
                program.get("source").and_then(Json::as_str),
            ) else {
                continue;
            };
            let backend = program
                .get("backend")
                .and_then(Json::as_str)
                .map(String::from);
            // Replays route like live loads (same code path, same
            // verdicts) but meter as "restore" so traffic counters only
            // reflect client requests.
            let (tx, rx) = std::sync::mpsc::channel();
            let ctx = RequestCtx {
                request_id: router.requests.fetch_add(1, Ordering::SeqCst) + 1,
                cmd: "restore",
                enqueued: Instant::now(),
                reply: tx,
            };
            route_load(router, name.to_string(), source, &backend, ctx);
            let line = rx.recv().unwrap_or_default();
            router.reply_flushed();
            let ok = Json::parse(&line)
                .ok()
                .and_then(|r| r.get("ok").and_then(Json::as_bool))
                == Some(true);
            if ok {
                restored += 1;
            } else {
                eprintln!("qb-serve: snapshot replay of {name:?} failed: {line}");
            }
        }
    }
    // Replaying loads marked the state dirty; the snapshot on disk
    // already says exactly this, so suppress the rewrite.
    router.state_dirty.store(false, Ordering::SeqCst);
    restored
}

/// The full graceful-shutdown sequence for a socket-served daemon:
/// refuse new work, drain every mailbox, wait for in-flight replies to
/// flush, write the final snapshot, acknowledge, unblock accepts.
pub(crate) fn graceful_shutdown(
    router: &Arc<Router>,
    request_id: u64,
    started: Instant,
    reply: &ReplySender,
) {
    if !router.shutting_down.swap(true, Ordering::SeqCst) {
        router.drain_actors();
        let grace = router
            .limits
            .default_deadline
            .unwrap_or(Duration::from_secs(10))
            .max(Duration::from_millis(100));
        router.wait_replies_flushed(grace);
        router.persist_once();
    }
    router.finish_shutdown(request_id, started, reply);
    router.trigger_gate();
}

impl Router {
    pub(crate) fn new(verify: VerifyOptions, limits: ServerLimits) -> Router {
        Router {
            verify,
            limits,
            table: Mutex::new(Table::default()),
            auto_winners: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            total_queued: AtomicUsize::new(0),
            health: AtomicU8::new(HEALTH_OK),
            sheds: Mutex::new(BTreeMap::new()),
            state_dir: Mutex::new(None),
            state_dirty: AtomicBool::new(false),
            persist_lock: Mutex::new(()),
            snap_stop: Mutex::new(false),
            snap_cvar: Condvar::new(),
            log_sink: Mutex::new(None),
            recorder: FlightRecorder::new(qb_obs::DEFAULT_RECORDER_CAPACITY),
            pending_spans: Mutex::new(HashMap::new()),
            timeseries: Mutex::new(TimeSeries::new(TIMESERIES_CAP)),
            trace_dir: Mutex::new(None),
            sampler_stop: Mutex::new(false),
            sampler_cvar: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            pending_replies: Mutex::new(0),
            replies_cvar: Condvar::new(),
            gate: Mutex::new(None),
        }
    }

    /// Post-request housekeeping: the idle sweep (the request just
    /// handled refreshed its own session's stamps, so only genuinely
    /// idle sessions are reaped).
    fn after_request(&self) {
        let evicted = {
            let mut t = self.table.lock().unwrap();
            sweep_idle(&mut t, self.limits.idle_timeout)
        };
        if evicted {
            self.mark_dirty();
        }
    }

    /// Load fast path: under one table lock, re-alias `name` onto an
    /// already-warm key. Returns the mailbox to describe through.
    fn try_alias_load(
        &self,
        name: &str,
        key: SessionKey,
        source: &str,
    ) -> Option<(SyncSender<ActorMsg>, Arc<ActorShared>)> {
        let mut t = self.table.lock().unwrap();
        let &aid = t.keys.get(&key)?;
        bind_name(&mut t, name, aid, key.1, source);
        touch(&mut t, aid, self.requests.load(Ordering::SeqCst));
        evict_over_capacity(&mut t, self.limits.max_sessions, aid);
        let e = t.actors.get(&aid)?;
        Some((e.tx.clone(), Arc::clone(&e.shared)))
    }

    // ---- resolution and dispatch ---------------------------------------

    /// Resolves `name` to its actor's mailbox, touching its LRU stamp.
    fn resolve(&self, name: &str) -> Result<(SyncSender<ActorMsg>, Arc<ActorShared>), Json> {
        let mut t = self.table.lock().unwrap();
        let Some(&aid) = t.names.get(name) else {
            return Err(not_loaded_response(name));
        };
        touch(&mut t, aid, self.requests.load(Ordering::SeqCst));
        let Some(entry) = t.actors.get(&aid) else {
            let response = desync(&mut t, name);
            drop(t);
            self.mark_dirty();
            return Err(response);
        };
        Ok((entry.tx.clone(), Arc::clone(&entry.shared)))
    }

    /// Enqueues `msg`, answering `not_loaded` directly if the actor died
    /// between resolution and send, and shedding (`overloaded` /
    /// `unavailable`) instead of ever blocking on a full mailbox. The
    /// send lock is taken *after* every table lock is released (lock
    /// order) and keeps rekeying edits from interleaving between our
    /// resolve and our enqueue; because every sender serialises on it
    /// and increments `queue_depth` before sending, a depth check under
    /// the lock is exact — an admitted message always finds a slot.
    fn dispatch(&self, pair: (SyncSender<ActorMsg>, Arc<ActorShared>), msg: ActorMsg) {
        let (tx, shared) = pair;
        let guard = shared.send_lock.lock().unwrap();
        if let Some(response) = self.admission_check(&shared, &msg) {
            drop(guard);
            let (_, ctx) = bounce(msg);
            let queue_ns = ctx.enqueued.elapsed().as_nanos() as u64;
            self.finish(ctx.request_id, ctx.cmd, response, queue_ns, 0, &ctx.reply);
            return;
        }
        shared.queue_depth.fetch_add(1, Ordering::SeqCst);
        self.note_enqueue();
        if let Err(err) = tx.try_send(msg) {
            shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
            self.note_dequeue();
            drop(guard);
            match err {
                // Unreachable given the admission check above, kept as
                // a defensive mirror: shed rather than lose the reply.
                TrySendError::Full(msg) => {
                    self.note_shed("mailbox_full");
                    let depth = shared.queue_depth.load(Ordering::SeqCst);
                    let est = self.drain_estimate_ms(&shared, depth);
                    let (_, ctx) = bounce(msg);
                    let queue_ns = ctx.enqueued.elapsed().as_nanos() as u64;
                    self.finish(
                        ctx.request_id,
                        ctx.cmd,
                        overloaded_response(
                            "session mailbox is full",
                            retry_after_ms(est),
                            depth,
                            est,
                        ),
                        queue_ns,
                        0,
                        &ctx.reply,
                    );
                }
                TrySendError::Disconnected(msg) => {
                    let (name, ctx) = bounce(msg);
                    let queue_ns = ctx.enqueued.elapsed().as_nanos() as u64;
                    self.finish(
                        ctx.request_id,
                        ctx.cmd,
                        not_loaded_response(&name),
                        queue_ns,
                        0,
                        &ctx.reply,
                    );
                }
            }
        }
    }

    /// The admission decision for one message about to enter a mailbox,
    /// made under the actor's send lock. Returns the shed response, or
    /// `None` to admit. Order matters: capacity first (full is full for
    /// everyone), then the deadline/brownout rules (verifies only), and
    /// the breaker last — its half-open probe admission mutates breaker
    /// state, so it must only run when nothing else can still reject.
    fn admission_check(&self, shared: &ActorShared, msg: &ActorMsg) -> Option<Json> {
        let depth = shared.queue_depth.load(Ordering::SeqCst);
        if depth >= MAILBOX_CAP {
            let est = self.drain_estimate_ms(shared, depth);
            self.note_shed("mailbox_full");
            return Some(overloaded_response(
                "session mailbox is full",
                retry_after_ms(est),
                depth,
                est,
            ));
        }
        let ActorMsg::Verify { deadline_ms, .. } = msg else {
            // Edits, loads and describes stay fast in every health
            // state: they are cheap, and edits are how a poisoned or
            // overloaded program gets fixed.
            return None;
        };
        match self.effective_deadline(*deadline_ms) {
            // An unbounded verify can hold its worker for an arbitrary
            // time; in degraded/overloaded those are exactly the
            // requests brownout sheds.
            None => {
                if self.health.load(Ordering::SeqCst) != HEALTH_OK {
                    let est = self.drain_estimate_ms(shared, depth);
                    self.note_shed("brownout");
                    return Some(overloaded_response(
                        "daemon is under load and shedding verifies without a deadline; \
                         retry with --deadline-ms or after the queue drains",
                        retry_after_ms(est),
                        depth,
                        est,
                    ));
                }
            }
            // A deadline the queued work already outlasts is dead on
            // arrival: reject now instead of queueing it to fail.
            Some(deadline) => {
                if depth > 0 {
                    let est = self.drain_estimate_ms(shared, depth);
                    if est > deadline.as_millis() as u64 {
                        self.note_shed("deadline");
                        return Some(overloaded_response(
                            "queued work cannot drain before the request deadline",
                            retry_after_ms(est),
                            depth,
                            est,
                        ));
                    }
                }
            }
        }
        if let Ok(mut breaker) = shared.breaker.lock() {
            if let Err(retry_ms) = breaker.admit(self.limits.breaker_cooldown, Instant::now()) {
                self.note_shed("breaker");
                return Some(unavailable_response(
                    "session circuit breaker is open after repeated crashes; \
                     retry after the cooldown or edit the program",
                    retry_ms,
                ));
            }
        }
        None
    }

    /// Estimated milliseconds for `depth` queued messages to drain:
    /// depth × the windowed per-verify handle-time p95 (from the
    /// sampler ring), plus this session's mailbox-wait p95. Both are
    /// leaf locks, safe under the send lock.
    fn drain_estimate_ms(&self, shared: &ActorShared, depth: usize) -> u64 {
        let handle_p95_ns = self
            .timeseries
            .lock()
            .unwrap()
            .histogram_delta("request_handle", "verify", TOP_WINDOW_NS)
            .filter(|h| h.count() > 0)
            .map(|h| h.p95())
            .unwrap_or(0);
        let wait_p95_ns = shared.mailbox_wait.lock().map(|h| h.p95()).unwrap_or(0);
        (depth as u64)
            .saturating_mul(handle_p95_ns)
            .saturating_add(wait_p95_ns)
            / 1_000_000
    }

    /// One message entered a mailbox: track daemon-wide pressure and
    /// re-evaluate health.
    pub(crate) fn note_enqueue(&self) {
        self.total_queued.fetch_add(1, Ordering::SeqCst);
        self.eval_health();
    }

    /// One message left a mailbox (dequeued by its actor, or backed out
    /// after a failed send).
    pub(crate) fn note_dequeue(&self) {
        // Saturating: a drained actor's bounced messages must never
        // wrap the gauge.
        let _ = self
            .total_queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                Some(n.saturating_sub(1))
            });
        self.eval_health();
    }

    /// Advances the health state machine one step against the queue
    /// budget `B`. Hysteresis: up-transitions happen at `B/2` (ok →
    /// degraded) and `B` (→ overloaded), down-transitions only at `B/2`
    /// (overloaded → degraded) and `B/4` (degraded → ok), so a queue
    /// hovering near a boundary cannot flap the state every request.
    fn eval_health(&self) {
        let depth = self.total_queued.load(Ordering::SeqCst);
        let budget = self.limits.queue_budget.max(4);
        loop {
            let cur = self.health.load(Ordering::SeqCst);
            let next = match cur {
                HEALTH_OK => {
                    if depth >= budget {
                        HEALTH_OVERLOADED
                    } else if depth >= budget / 2 {
                        HEALTH_DEGRADED
                    } else {
                        HEALTH_OK
                    }
                }
                HEALTH_DEGRADED => {
                    if depth >= budget {
                        HEALTH_OVERLOADED
                    } else if depth <= budget / 4 {
                        HEALTH_OK
                    } else {
                        HEALTH_DEGRADED
                    }
                }
                _ => {
                    if depth <= budget / 4 {
                        HEALTH_OK
                    } else if depth <= budget / 2 {
                        HEALTH_DEGRADED
                    } else {
                        HEALTH_OVERLOADED
                    }
                }
            };
            if next == cur {
                return;
            }
            if self
                .health
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                qb_obs::gauge_set("health", "daemon", next as i64);
                return;
            }
        }
    }

    /// Counts one shed request under `reason` (a [`SHED_REASONS`]
    /// label), in both the metrics registry (`qb_shed_total`) and the
    /// `status` mirror.
    fn note_shed(&self, reason: &'static str) {
        qb_obs::counter_add("shed", reason, 1);
        *self.sheds.lock().unwrap().entry(reason).or_insert(0) += 1;
    }

    /// Answers a request that never reached a mailbox.
    fn finish_direct(&self, ctx: RequestCtx, response: Json) {
        let queue_ns = ctx.enqueued.elapsed().as_nanos() as u64;
        self.finish(ctx.request_id, ctx.cmd, response, queue_ns, 0, &ctx.reply);
    }

    /// Meters, stamps, logs and delivers one finished response. The
    /// single exit point every request funnels through, on whatever
    /// thread finished the work.
    pub(crate) fn finish(
        &self,
        request_id: u64,
        cmd: &str,
        mut response: Json,
        queue_ns: u64,
        handle_ns: u64,
        reply: &ReplySender,
    ) {
        qb_obs::counter_add("requests", cmd, 1);
        qb_obs::observe_ns("request_handle", cmd, handle_ns);
        qb_obs::observe_ns("request_queue_wait", cmd, queue_ns);
        self.record_request(request_id, cmd, &response, queue_ns, handle_ns);
        if let Json::Obj(members) = &mut response {
            members.insert("request_id".into(), Json::Int(request_id as i64));
            // The daemon-side time split, so clients (notably `watch`)
            // can tell mailbox contention from slow solves.
            members.insert("queue_ns".into(), Json::Int(queue_ns as i64));
            members.insert("handle_ns".into(), Json::Int(handle_ns as i64));
            // Every response carries the daemon health, so any client
            // (notably `watch`) can back off while it is non-`ok`
            // without a separate status round-trip.
            members.insert(
                "health".into(),
                Json::Str(health_name(self.health.load(Ordering::SeqCst)).to_string()),
            );
        }
        self.log_request(request_id, cmd, &response, queue_ns, handle_ns);
        self.send_reply(reply, response.to_string());
    }

    /// Feeds one finished request to the flight recorder, claiming the
    /// span tree its actor stashed, and writes the exemplar file when
    /// the tail-sampling policy promotes it.
    fn record_request(
        &self,
        request_id: u64,
        cmd: &str,
        response: &Json,
        queue_ns: u64,
        handle_ns: u64,
    ) {
        let spans = self
            .pending_spans
            .lock()
            .unwrap()
            .remove(&request_id)
            .unwrap_or_default();
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        let unknowns = response
            .get("unknowns")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            .max(0) as u64;
        let quarantined = response.get("quarantined").is_some();
        let reason = self.recorder.record(RecordedRequest {
            request_id,
            cmd: cmd.to_string(),
            ok,
            unknowns,
            quarantined,
            queue_ns,
            handle_ns,
            spans,
            exemplar: None,
        });
        if let Some(reason) = reason {
            qb_obs::counter_add("exemplars", reason.name(), 1);
            self.write_exemplar(request_id);
        }
    }

    /// Writes a promoted request's trace to the exemplar directory and
    /// enforces the retention cap (newest N by file name, which is
    /// chronological by construction). Failures are counted, never
    /// fatal.
    fn write_exemplar(&self, request_id: u64) {
        let Some((dir, retain)) = self.trace_dir.lock().unwrap().clone() else {
            return;
        };
        let Some(rec) = self.recorder.get(request_id) else {
            return;
        };
        let path = dir.join(exemplar_file_name(request_id));
        let trace = qb_obs::chrome_trace(&rec.spans);
        if std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, trace))
            .is_err()
        {
            qb_obs::counter_add("exemplar_write_failures", "io", 1);
            return;
        }
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("req-") && n.ends_with(".trace.json"))
            })
            .collect();
        if files.len() > retain {
            files.sort();
            let excess = files.len() - retain;
            for old in files.into_iter().take(excess) {
                let _ = std::fs::remove_file(old);
            }
        }
    }

    /// Appends one request record to the JSONL log, if one is open.
    /// Write failures are silently dropped: logging must never take the
    /// daemon down.
    fn log_request(&self, id: u64, cmd: &str, response: &Json, queue_ns: u64, handle_ns: u64) {
        let mut sink = self.log_sink.lock().unwrap();
        let Some(sink) = sink.as_mut() else {
            return;
        };
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        let record = Json::obj(vec![
            ("ts_ms", Json::Int(ts_ms)),
            ("request_id", Json::Int(id as i64)),
            ("cmd", Json::Str(cmd.to_string())),
            (
                "ok",
                Json::Bool(response.get("ok").and_then(Json::as_bool) == Some(true)),
            ),
            ("queue_ns", Json::Int(queue_ns as i64)),
            ("handle_ns", Json::Int(handle_ns as i64)),
        ]);
        let _ = writeln!(sink, "{record}");
    }

    // ---- reply accounting (graceful shutdown's torn-response guard) ----

    /// Hands a rendered line to a reply channel, counting it as pending
    /// until the owning writer calls [`Router::reply_flushed`].
    pub(crate) fn send_reply(&self, reply: &ReplySender, line: String) {
        *self.pending_replies.lock().unwrap() += 1;
        if reply.send(line).is_err() {
            // The connection's writer is gone; nothing will flush it.
            self.reply_flushed();
        }
    }

    /// A writer thread (or the synchronous facade) flushed one line.
    pub(crate) fn reply_flushed(&self) {
        let mut pending = self.pending_replies.lock().unwrap();
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.replies_cvar.notify_all();
        }
    }

    /// Blocks until every handed-out reply was flushed (or `timeout`).
    pub(crate) fn wait_replies_flushed(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut pending = self.pending_replies.lock().unwrap();
        while *pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (p, _) = self
                .replies_cvar
                .wait_timeout(pending, deadline - now)
                .unwrap();
            pending = p;
        }
    }

    // ---- control-lane rendering ----------------------------------------

    fn status(&self) -> Json {
        let t = self.table.lock().unwrap();
        let mut names: Vec<&String> = t.names.keys().collect();
        names.sort();
        let programs: Vec<Json> = names
            .iter()
            .filter_map(|name| {
                let aid = t.names[*name];
                let entry = t.actors.get(&aid)?;
                let mut pairs = vec![
                    ("name", Json::Str((*name).clone())),
                    (
                        "idle_ms",
                        Json::Int(entry.last_used_at.elapsed().as_millis() as i64),
                    ),
                    (
                        "queue_depth",
                        Json::Int(entry.shared.queue_depth.load(Ordering::SeqCst) as i64),
                    ),
                    (
                        "worker_alive",
                        Json::Bool(entry.shared.alive.load(Ordering::SeqCst)),
                    ),
                ];
                if let Ok(wait) = entry.shared.mailbox_wait.lock() {
                    pairs.push((
                        "mailbox_wait_p50_us",
                        Json::Int((wait.p50() / 1_000) as i64),
                    ));
                    pairs.push((
                        "mailbox_wait_p95_us",
                        Json::Int((wait.p95() / 1_000) as i64),
                    ));
                }
                let published = entry.shared.published.lock().ok()?;
                pairs.extend(published.pairs.clone());
                Some(Json::obj(pairs))
            })
            .collect();
        let mut resident_nodes = 0usize;
        let mut resident_bdd = 0usize;
        let mut breakers_open = 0usize;
        for entry in t.actors.values() {
            if let Ok(published) = entry.shared.published.lock() {
                resident_nodes += published.arena_nodes;
                resident_bdd += published.bdd_resident_nodes;
            }
            if let Ok(breaker) = entry.shared.breaker.lock() {
                if breaker.is_open() {
                    breakers_open += 1;
                }
            }
        }
        let sessions = t.actors.len();
        let evictions = t.session_evictions;
        drop(t);
        let sheds = self.sheds.lock().unwrap().clone();
        let sheds_total: u64 = sheds.values().sum();
        let shed_pairs: Vec<(&'static str, Json)> = SHED_REASONS
            .iter()
            .map(|&reason| (reason, Json::Int(*sheds.get(reason).unwrap_or(&0) as i64)))
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "health",
                Json::Str(health_name(self.health.load(Ordering::SeqCst)).to_string()),
            ),
            (
                "queued_requests",
                Json::Int(self.total_queued.load(Ordering::SeqCst) as i64),
            ),
            ("queue_budget", Json::Int(self.limits.queue_budget as i64)),
            ("sheds_total", Json::Int(sheds_total as i64)),
            ("sheds", Json::obj(shed_pairs)),
            ("breakers_open", Json::Int(breakers_open as i64)),
            ("programs", Json::Arr(programs)),
            ("sessions", Json::Int(sessions as i64)),
            (
                "max_sessions",
                match self.limits.max_sessions {
                    Some(n) => Json::Int(n as i64),
                    None => Json::Null,
                },
            ),
            ("session_evictions", Json::Int(evictions as i64)),
            ("resident_arena_nodes", Json::Int(resident_nodes as i64)),
            ("resident_bdd_nodes", Json::Int(resident_bdd as i64)),
            (
                "auto_winners_remembered",
                Json::Int(self.auto_winners.lock().unwrap().len() as i64),
            ),
            (
                "quarantines",
                Json::Int(self.quarantines.load(Ordering::SeqCst) as i64),
            ),
            (
                "accept_errors",
                Json::Int(self.accept_errors.load(Ordering::SeqCst) as i64),
            ),
            (
                "snapshot_failures",
                Json::Int(self.snapshot_failures.load(Ordering::SeqCst) as i64),
            ),
            (
                "state_persisted",
                Json::Bool(self.state_dir.lock().unwrap().is_some()),
            ),
            (
                "default_deadline_ms",
                match self.limits.default_deadline {
                    Some(d) => Json::Int(d.as_millis() as i64),
                    None => Json::Null,
                },
            ),
            (
                "requests",
                Json::Int(self.requests.load(Ordering::SeqCst) as i64),
            ),
            ("dropped_spans", Json::Int(qb_obs::dropped_spans() as i64)),
            (
                "recorder_recorded",
                Json::Int(self.recorder.recorded() as i64),
            ),
            (
                "recorder_overflow",
                Json::Int(self.recorder.overflowed() as i64),
            ),
            ("exemplars", Json::Int(self.recorder.exemplars() as i64)),
        ])
    }

    /// Renders the process metrics registry — request counters and
    /// latency histograms, solver-phase counters, backend cache rates —
    /// in the Prometheus text exposition format, folding in every warm
    /// session's per-target, per-root and mailbox-wait histograms and
    /// publishing per-session queue-depth gauges.
    fn metrics(&self) -> Json {
        let mut target = qb_obs::Histogram::new();
        let mut root = qb_obs::Histogram::new();
        let mut wait = qb_obs::Histogram::new();
        let (sessions, requests) = {
            let t = self.table.lock().unwrap();
            for entry in t.actors.values() {
                if let Ok(published) = entry.shared.published.lock() {
                    target.merge(&published.target_latency);
                    root.merge(&published.root_latency);
                }
                if let Ok(h) = entry.shared.mailbox_wait.lock() {
                    wait.merge(&h);
                }
                qb_obs::gauge_set(
                    "session_queue_depth",
                    &format!("{}/{}", hash_hex(entry.key.0), entry.key.1),
                    entry.shared.queue_depth.load(Ordering::SeqCst) as i64,
                );
            }
            (t.actors.len(), self.requests.load(Ordering::SeqCst))
        };
        // Health and daemon-wide queue pressure ride in the scrape too:
        // `qb_health` is 0 ok / 1 degraded / 2 overloaded.
        qb_obs::gauge_set(
            "health",
            "daemon",
            self.health.load(Ordering::SeqCst) as i64,
        );
        qb_obs::gauge_set(
            "queued_requests",
            "daemon",
            self.total_queued.load(Ordering::SeqCst) as i64,
        );
        // Observability of the observability: monotone gauges exposing
        // span loss and flight-recorder ring overflow in the scrape.
        qb_obs::gauge_set("obs_dropped_spans", "all", qb_obs::dropped_spans() as i64);
        qb_obs::gauge_set(
            "recorder_overflow",
            "all",
            self.recorder.overflowed() as i64,
        );
        qb_obs::gauge_set("recorder_recorded", "all", self.recorder.recorded() as i64);
        let text = qb_obs::prometheus_text(
            &qb_obs::metrics_snapshot(),
            &[
                ("target_latency", "all", target),
                ("root_latency", "all", root),
                ("session_mailbox_wait", "all", wait),
            ],
        );
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("metrics", Json::Str(text)),
            ("sessions", Json::Int(sessions as i64)),
            ("requests", Json::Int(requests as i64)),
        ])
    }

    /// Renders the live dashboard snapshot: windowed rates from the
    /// sampler ring, per-request-type latency over the trailing window,
    /// and per-session gauges. Everything a scraping `client top` needs
    /// in one compact object.
    fn top(&self) -> Json {
        // Per-session facts come from the live table first; the ring is
        // locked afterwards so the two locks never nest.
        struct SessionRow {
            label: String,
            queue_depth: i64,
            wait_p50_us: i64,
            wait_p95_us: i64,
            arena_nodes: i64,
            bdd_resident_nodes: i64,
        }
        let (mut rows, resident_arena, resident_bdd, sessions_count) = {
            let t = self.table.lock().unwrap();
            let mut rows = Vec::with_capacity(t.actors.len());
            let mut arena = 0i64;
            let mut bdd = 0i64;
            for entry in t.actors.values() {
                let (wait_p50_us, wait_p95_us) = entry
                    .shared
                    .mailbox_wait
                    .lock()
                    .map(|h| ((h.p50() / 1_000) as i64, (h.p95() / 1_000) as i64))
                    .unwrap_or((0, 0));
                let (arena_nodes, bdd_resident_nodes) = entry
                    .shared
                    .published
                    .lock()
                    .map(|p| (p.arena_nodes as i64, p.bdd_resident_nodes as i64))
                    .unwrap_or((0, 0));
                arena += arena_nodes;
                bdd += bdd_resident_nodes;
                rows.push(SessionRow {
                    label: format!("{}/{}", hash_hex(entry.key.0), entry.key.1),
                    queue_depth: entry.shared.queue_depth.load(Ordering::SeqCst) as i64,
                    wait_p50_us,
                    wait_p95_us,
                    arena_nodes,
                    bdd_resident_nodes,
                });
            }
            rows.sort_by(|a, b| a.label.cmp(&b.label));
            (rows, arena, bdd, t.actors.len())
        };
        let ts = self.timeseries.lock().unwrap();
        let float_or_null = |v: Option<f64>| match v {
            Some(v) => Json::Float(v),
            None => Json::Null,
        };
        let rates = Json::obj(vec![
            (
                "req_per_s",
                float_or_null(ts.counter_rate("requests", TOP_WINDOW_NS)),
            ),
            (
                "verify_per_s",
                float_or_null(ts.counter_rate_for("requests", "verify", TOP_WINDOW_NS)),
            ),
            (
                "conflicts_per_s",
                float_or_null(ts.counter_rate("solver_conflicts", TOP_WINDOW_NS)),
            ),
            (
                "propagations_per_s",
                float_or_null(ts.counter_rate("solver_propagations", TOP_WINDOW_NS)),
            ),
        ]);
        // Windowed shed rates, total and by reason, so a dashboard
        // shows *why* load is being turned away, not just that it is.
        let shed_rates = {
            let mut pairs: Vec<(&str, Json)> = vec![(
                "per_s",
                float_or_null(ts.counter_rate("shed", TOP_WINDOW_NS)),
            )];
            for &reason in &SHED_REASONS {
                pairs.push((
                    reason,
                    float_or_null(ts.counter_rate_for("shed", reason, TOP_WINDOW_NS)),
                ));
            }
            Json::obj(pairs)
        };
        // One row per request type seen by the newest snapshot: its
        // windowed rate and the latency percentiles of just the window.
        let request_types: Vec<Json> = {
            let mut cmds: Vec<String> = ts
                .latest()
                .map(|p| {
                    p.snapshot
                        .counters
                        .iter()
                        .filter(|(n, _, _)| n == "requests")
                        .map(|(_, l, _)| l.clone())
                        .collect()
                })
                .unwrap_or_default();
            cmds.sort();
            cmds.dedup();
            cmds.into_iter()
                .map(|cmd| {
                    let mut pairs = vec![
                        ("cmd", Json::Str(cmd.clone())),
                        (
                            "rate_per_s",
                            float_or_null(ts.counter_rate_for("requests", &cmd, TOP_WINDOW_NS)),
                        ),
                    ];
                    match ts.histogram_delta("request_handle", &cmd, TOP_WINDOW_NS) {
                        Some(h) if h.count() > 0 => {
                            pairs.push(("p50_us", Json::Int((h.p50() / 1_000) as i64)));
                            pairs.push(("p95_us", Json::Int((h.p95() / 1_000) as i64)));
                        }
                        _ => {
                            pairs.push(("p50_us", Json::Null));
                            pairs.push(("p95_us", Json::Null));
                        }
                    }
                    Json::obj(pairs)
                })
                .collect()
        };
        let sessions: Vec<Json> = rows
            .drain(..)
            .map(|row| {
                let depth_max = ts
                    .gauge_max("session_queue_depth", &row.label, TOP_WINDOW_NS)
                    .map_or(Json::Null, Json::Int);
                Json::obj(vec![
                    ("session", Json::Str(row.label)),
                    ("queue_depth", Json::Int(row.queue_depth)),
                    ("queue_depth_max", depth_max),
                    ("mailbox_wait_p50_us", Json::Int(row.wait_p50_us)),
                    ("mailbox_wait_p95_us", Json::Int(row.wait_p95_us)),
                    ("arena_nodes", Json::Int(row.arena_nodes)),
                    ("bdd_resident_nodes", Json::Int(row.bdd_resident_nodes)),
                ])
            })
            .collect();
        let samples = ts.len();
        let window_ms = ts.span_ns().min(TOP_WINDOW_NS) / 1_000_000;
        drop(ts);
        let sheds_total: u64 = self.sheds.lock().unwrap().values().sum();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("samples", Json::Int(samples as i64)),
            ("window_ms", Json::Int(window_ms as i64)),
            (
                "health",
                Json::Str(health_name(self.health.load(Ordering::SeqCst)).to_string()),
            ),
            (
                "queued_requests",
                Json::Int(self.total_queued.load(Ordering::SeqCst) as i64),
            ),
            ("shed", shed_rates),
            ("sheds_total", Json::Int(sheds_total as i64)),
            ("rates", rates),
            ("request_types", Json::Arr(request_types)),
            ("sessions", Json::Arr(sessions)),
            ("sessions_count", Json::Int(sessions_count as i64)),
            ("resident_arena_nodes", Json::Int(resident_arena)),
            ("resident_bdd_nodes", Json::Int(resident_bdd)),
            (
                "requests",
                Json::Int(self.requests.load(Ordering::SeqCst) as i64),
            ),
            ("dropped_spans", Json::Int(qb_obs::dropped_spans() as i64)),
            (
                "recorder",
                Json::obj(vec![
                    ("recorded", Json::Int(self.recorder.recorded() as i64)),
                    ("retained", Json::Int(self.recorder.len() as i64)),
                    ("overflow", Json::Int(self.recorder.overflowed() as i64)),
                    ("exemplars", Json::Int(self.recorder.exemplars() as i64)),
                ]),
            ),
        ])
    }

    /// Fetches a retained request trace: from the flight-recorder ring
    /// if it is still there, else from the exemplar directory. The
    /// traced request's own facts use `trace_`-prefixed keys so they
    /// never collide with the members [`Router::finish`] stamps onto
    /// this (the fetching) request's response.
    fn trace_of(&self, traced: u64) -> Json {
        if let Some(rec) = self.recorder.get(traced) {
            return Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("trace_request_id", Json::Int(traced as i64)),
                ("trace_cmd", Json::Str(rec.cmd.clone())),
                ("trace_ok", Json::Bool(rec.ok)),
                (
                    "exemplar",
                    rec.exemplar
                        .map_or(Json::Null, |r| Json::Str(r.name().to_string())),
                ),
                ("trace_queue_ns", Json::Int(rec.queue_ns as i64)),
                ("trace_handle_ns", Json::Int(rec.handle_ns as i64)),
                ("spans", Json::Int(rec.spans.len() as i64)),
                ("trace", Json::Str(qb_obs::chrome_trace(&rec.spans))),
            ]);
        }
        // Ring-evicted, but a promoted request may survive on disk.
        if let Some((dir, _)) = self.trace_dir.lock().unwrap().clone() {
            let path = dir.join(exemplar_file_name(traced));
            if let Ok(contents) = std::fs::read_to_string(&path) {
                return Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("trace_request_id", Json::Int(traced as i64)),
                    ("source", Json::Str("exemplar_file".into())),
                    ("trace", Json::Str(contents)),
                ]);
            }
        }
        coded_error_response(
            &format!("request {traced} is not retained by the flight recorder"),
            "not_recorded",
        )
    }

    fn unload(&self, name: &str) -> Json {
        let sessions = {
            let mut t = self.table.lock().unwrap();
            let Some(aid) = t.names.remove(name) else {
                return not_loaded_response(name);
            };
            t.sources.remove(name);
            drop_if_unaliased(&mut t, aid);
            t.actors.len()
        };
        self.mark_dirty();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("unloaded", Json::Str(name.to_string())),
            ("sessions", Json::Int(sessions as i64)),
        ])
    }

    // ---- flight recorder and sampler -----------------------------------

    /// Deposits a request's captured span tree for [`Router::finish`]
    /// to claim. Called from actor threads right after a capture ends.
    pub(crate) fn stash_spans(&self, request_id: u64, spans: Vec<SpanEvent>) {
        self.pending_spans.lock().unwrap().insert(request_id, spans);
    }

    /// Configures the exemplar directory and retention cap.
    pub(crate) fn set_trace_dir(&self, dir: PathBuf, retain: usize) {
        *self.trace_dir.lock().unwrap() = Some((dir, retain.max(1)));
    }

    /// Configures the fixed slow-request threshold (otherwise the
    /// recorder's rolling p99 rule applies).
    pub(crate) fn set_slow_threshold(&self, threshold: Option<Duration>) {
        self.recorder.set_slow_threshold(threshold);
    }

    /// One sampler beat: refresh the per-session gauges, then append
    /// the cumulative metrics snapshot to the ring.
    pub(crate) fn sample_tick(&self) {
        {
            let t = self.table.lock().unwrap();
            for entry in t.actors.values() {
                qb_obs::gauge_set(
                    "session_queue_depth",
                    &format!("{}/{}", hash_hex(entry.key.0), entry.key.1),
                    entry.shared.queue_depth.load(Ordering::SeqCst) as i64,
                );
            }
        }
        // Health is re-evaluated on a timer too, not only on queue
        // traffic: a daemon that went quiet after a storm still decays
        // back to `ok` and the gauge tracks the current state.
        self.eval_health();
        qb_obs::gauge_set(
            "health",
            "daemon",
            self.health.load(Ordering::SeqCst) as i64,
        );
        qb_obs::gauge_set(
            "queued_requests",
            "daemon",
            self.total_queued.load(Ordering::SeqCst) as i64,
        );
        self.timeseries
            .lock()
            .unwrap()
            .tick(qb_obs::now_ns(), qb_obs::metrics_snapshot());
    }

    /// Tells the sampler thread to exit.
    pub(crate) fn stop_sampler(&self) {
        let mut stop = self.sampler_stop.lock().unwrap();
        *stop = true;
        self.sampler_cvar.notify_all();
    }

    // ---- actor-facing services -----------------------------------------

    /// Builds a session for `program` on `backend`, applying the
    /// configured per-session memory bounds and seeding the auto
    /// portfolio with the backend this circuit's structural hash is
    /// remembered to prefer. Takes no table lock: safe from actors.
    pub(crate) fn new_session(
        &self,
        program: &ElaboratedProgram,
        hash: u64,
        backend: BackendKind,
    ) -> Result<VerifySession, String> {
        let opts = VerifyOptions {
            backend,
            ..self.verify
        };
        let mut session = VerifySession::new(&program.circuit, &initial_values(program), &opts)
            .map_err(|e| e.to_string())?;
        if self.limits.arena_gc_floor.is_some() || self.limits.decision_cache_cap.is_some() {
            session.set_memory_limits(self.limits.arena_gc_floor, self.limits.decision_cache_cap);
        }
        if backend == BackendKind::Auto {
            if let Some(&(pref, _)) = self.auto_winners.lock().unwrap().get(&hash) {
                session.set_auto_preference(pref);
            }
        }
        Ok(session)
    }

    /// Resolves a request's optional backend name (`None` = the daemon
    /// default), rejecting unknown names with the valid list.
    fn resolve_backend(&self, requested: &Option<String>) -> Result<BackendKind, String> {
        match requested {
            None => Ok(self.verify.backend),
            Some(name) => BackendKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown backend {name:?} (valid backends: {})",
                    BackendKind::valid_names()
                )
            }),
        }
    }

    /// A request's effective deadline: its own, or the daemon default —
    /// which brownout halves while health is non-`ok`, so defaulted
    /// verifies finish (or give a structured `unknown`) twice as fast
    /// exactly when queues need draining. An explicit client deadline
    /// is honoured as given.
    pub(crate) fn effective_deadline(&self, deadline_ms: Option<u64>) -> Option<Duration> {
        if let Some(ms) = deadline_ms {
            return Some(Duration::from_millis(ms));
        }
        let default = self.limits.default_deadline?;
        if self.health.load(Ordering::SeqCst) != HEALTH_OK {
            Some(default / 2)
        } else {
            Some(default)
        }
    }

    /// Quarantine strikes within the window that trip a session's
    /// circuit breaker open.
    pub(crate) fn breaker_threshold(&self) -> u32 {
        self.limits.breaker_threshold
    }

    /// Records what the auto portfolio learned about a circuit, so the
    /// next session over the same structural hash skips the losing
    /// backend attempt.
    pub(crate) fn remember_auto(&self, key: SessionKey, pref: AutoPreference) {
        if self.remember_auto_inner(key, pref) {
            self.mark_dirty();
        }
    }

    /// [`Router::remember_auto`] without the dirty mark, for the
    /// persist-time fold (which is already writing a snapshot). Returns
    /// whether the winner map changed.
    fn remember_auto_inner(&self, key: SessionKey, pref: AutoPreference) -> bool {
        if key.1 != BackendKind::Auto || pref == AutoPreference::Undecided {
            return false;
        }
        let stamp = self.requests.load(Ordering::SeqCst);
        let mut winners = self.auto_winners.lock().unwrap();
        // A newly learned (or changed) winner is worth a snapshot; mere
        // stamp refreshes are not.
        let changed = winners.get(&key.0).map(|&(p, _)| p) != Some(pref);
        winners.insert(key.0, (pref, stamp));
        qb_formula::lru_evict_batch(
            &mut winners,
            AUTO_WINNERS_CAP,
            |&(_, stamp)| stamp,
            |_, _| {},
        );
        changed
    }

    /// Drops `id` from the table (quarantine-rebuild failure, or an edit
    /// whose fresh session could not be built): every alias falls, so
    /// clients see `not_loaded` and re-`load`.
    pub(crate) fn deregister(&self, id: ActorId) {
        {
            let mut t = self.table.lock().unwrap();
            remove_actor(&mut t, id);
        }
        self.mark_dirty();
    }

    pub(crate) fn note_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::SeqCst);
        self.mark_dirty();
    }

    /// Restores `id`'s table binding to `key` after an in-actor edit
    /// failed *after* the router had already rekeyed the table: the
    /// session still holds the old program, so the table must say so.
    pub(crate) fn restore_binding(&self, id: ActorId, key: SessionKey, name: &str, source: String) {
        let mut t = self.table.lock().unwrap();
        let Some(entry) = t.actors.get(&id) else {
            return;
        };
        let wrong = entry.key;
        if wrong != key && t.keys.get(&wrong) == Some(&id) {
            t.keys.remove(&wrong);
        }
        match t.keys.get(&key) {
            None => {
                t.keys.insert(key, id);
            }
            Some(&aid) if aid == id => {}
            Some(_) => return, // another actor now owns the key; leave it
        }
        if let Some(entry) = t.actors.get_mut(&id) {
            entry.key = key;
        }
        t.sources.insert(name.to_string(), (key.1, source));
    }

    // ---- snapshots -----------------------------------------------------

    pub(crate) fn set_log_file(&self, path: &Path) -> std::io::Result<()> {
        let sink = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)?;
        *self.log_sink.lock().unwrap() = Some(sink);
        Ok(())
    }

    pub(crate) fn set_state_dir(&self, dir: Option<PathBuf>) {
        *self.state_dir.lock().unwrap() = dir;
    }

    /// Flags the snapshot stale and wakes the writer thread. Holding
    /// `snap_stop` across the store+notify closes the lost-wakeup window
    /// (the writer re-checks the flag under the same lock).
    pub(crate) fn mark_dirty(&self) {
        let _guard = self.snap_stop.lock().unwrap();
        self.state_dirty.store(true, Ordering::SeqCst);
        self.snap_cvar.notify_all();
    }

    /// Writes the snapshot if one is due. Failures are counted and
    /// logged, never fatal: a daemon that cannot persist still serves.
    /// Callable from any thread; concurrent callers serialise on the
    /// persist lock and the loser sees a clean flag.
    pub(crate) fn persist_once(&self) {
        let Some(dir) = self.state_dir.lock().unwrap().clone() else {
            return;
        };
        if !self.state_dirty.load(Ordering::SeqCst) {
            return;
        }
        let _guard = self.persist_lock.lock().unwrap();
        if !self.state_dirty.swap(false, Ordering::SeqCst) {
            return;
        }
        // Fold what live auto sessions have learned into the winner map
        // before serialising, so a crash right after this write already
        // knows the preference.
        let learned: Vec<(SessionKey, AutoPreference)> = {
            let t = self.table.lock().unwrap();
            t.actors
                .values()
                .filter_map(|e| {
                    let published = e.shared.published.lock().ok()?;
                    Some((e.key, published.auto_preference))
                })
                .collect()
        };
        for (key, pref) in learned {
            self.remember_auto_inner(key, pref);
        }
        let payload = self.state_payload().to_string();
        if let Err(e) = write_snapshot(&dir, &payload) {
            // Still dirty on failure: the next handled request retries.
            self.state_dirty.store(true, Ordering::SeqCst);
            self.snapshot_failures.fetch_add(1, Ordering::SeqCst);
            eprintln!("qb-serve: snapshot write failed ({e}); will retry after next request");
        }
    }

    /// The snapshot payload: every name with its retained source and
    /// backend (sorted for a deterministic file), plus the learned
    /// auto-portfolio winners. Sessions are *not* serialised — solver
    /// state is rebuilt by replaying the loads, which provably reaches
    /// the same verdicts (it is the same code path a cold client takes).
    fn state_payload(&self) -> Json {
        let programs: Vec<Json> = {
            let t = self.table.lock().unwrap();
            t.sources
                .iter()
                .map(|(name, (backend, source))| {
                    Json::obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("backend", Json::Str(backend.to_string())),
                        ("source", Json::Str(source.clone())),
                    ])
                })
                .collect()
        };
        let winners = {
            let winners = self.auto_winners.lock().unwrap();
            let mut sorted: Vec<(u64, AutoPreference)> =
                winners.iter().map(|(&h, &(p, _))| (h, p)).collect();
            sorted.sort_by_key(|&(hash, _)| hash);
            sorted
                .into_iter()
                .map(|(hash, pref)| {
                    Json::Arr(vec![
                        Json::Str(hash_hex(hash)),
                        Json::Str(pref.name().to_string()),
                    ])
                })
                .collect::<Vec<Json>>()
        };
        Json::obj(vec![
            ("auto_winners", Json::Arr(winners)),
            ("programs", Json::Arr(programs)),
        ])
    }

    // ---- shutdown ------------------------------------------------------

    /// Acknowledges a shutdown request (after whatever draining the
    /// caller chose to do).
    pub(crate) fn finish_shutdown(&self, request_id: u64, started: Instant, reply: &ReplySender) {
        self.finish(
            request_id,
            "shutdown",
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("shutdown", Json::Bool(true)),
            ]),
            0,
            started.elapsed().as_nanos() as u64,
            reply,
        );
    }

    /// Closes every mailbox and joins every worker: queued requests are
    /// answered, then the threads exit (folding their auto-portfolio
    /// learning on the way out). The sources mirror survives so the
    /// final snapshot still lists every program.
    pub(crate) fn drain_actors(&self) {
        let entries: Vec<ActorEntry> = {
            let mut t = self.table.lock().unwrap();
            t.keys.clear();
            t.names.clear();
            std::mem::take(&mut t.actors).into_values().collect()
        };
        let mut handles = Vec::new();
        for entry in entries {
            let ActorEntry { tx, handle, .. } = entry;
            drop(tx); // closes the mailbox; the worker drains and exits
            if let Some(handle) = handle {
                handles.push(handle);
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
    }

    pub(crate) fn set_gate(&self, gate: ShutdownGate) {
        *self.gate.lock().unwrap() = Some(gate);
    }

    /// Unblocks the accept loops: flip the stop flag, then poke each
    /// listener with a throwaway connection so a blocked `accept`
    /// returns and sees it.
    fn trigger_gate(&self) {
        let Some(gate) = self.gate.lock().unwrap().clone() else {
            return;
        };
        gate.stop.store(true, Ordering::SeqCst);
        let _ = std::os::unix::net::UnixStream::connect(&gate.socket);
        if let Some(addr) = gate.tcp {
            let _ = std::net::TcpStream::connect(addr);
        }
    }

    /// Counts one failed `accept` (status + metrics surface this so a
    /// daemon spinning on EMFILE is visible).
    pub(crate) fn note_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::SeqCst);
        qb_obs::counter_add("accept_errors", "accept", 1);
    }

    /// Tells the snapshot writer thread to exit.
    pub(crate) fn stop_snapshot_writer(&self) {
        let mut stop = self.snap_stop.lock().unwrap();
        *stop = true;
        self.snap_cvar.notify_all();
    }

    // ---- accessors -----------------------------------------------------

    pub(crate) fn loaded_sessions(&self) -> usize {
        self.table.lock().unwrap().actors.len()
    }

    pub(crate) fn session_evictions(&self) -> u64 {
        self.table.lock().unwrap().session_evictions
    }

    pub(crate) fn quarantined_sessions(&self) -> u64 {
        self.quarantines.load(Ordering::SeqCst)
    }
}

/// The metrics sampler: appends one cumulative snapshot to the
/// `TimeSeries` ring every `interval` (first beat immediately, so `top`
/// has a baseline as soon as the daemon is up), until
/// [`Router::stop_sampler`].
pub(crate) fn spawn_sampler(
    router: &Arc<Router>,
    interval: Duration,
) -> std::thread::JoinHandle<()> {
    let router = Arc::clone(router);
    std::thread::Builder::new()
        .name("qb-sampler".into())
        .spawn(move || loop {
            router.sample_tick();
            let stop = router.sampler_stop.lock().unwrap();
            if *stop {
                return;
            }
            let (stop, _) = router.sampler_cvar.wait_timeout(stop, interval).unwrap();
            if *stop {
                return;
            }
        })
        .expect("spawn metrics sampler")
}

/// The dedicated snapshot writer: wakes on [`Router::mark_dirty`],
/// persists outside every request path (so a mutating request never
/// blocks on fsync), retries failed writes on a timer.
pub(crate) fn spawn_snapshot_writer(router: &Arc<Router>) -> std::thread::JoinHandle<()> {
    let router = Arc::clone(router);
    std::thread::Builder::new()
        .name("qb-snap".into())
        .spawn(move || loop {
            {
                let mut stop = router.snap_stop.lock().unwrap();
                loop {
                    if *stop {
                        return;
                    }
                    if router.state_dirty.load(Ordering::SeqCst) {
                        break;
                    }
                    stop = router.snap_cvar.wait(stop).unwrap();
                }
            }
            router.persist_once();
            if router.state_dirty.load(Ordering::SeqCst) {
                // The write failed (still dirty): pace the retries.
                let stop = router.snap_stop.lock().unwrap();
                if *stop {
                    return;
                }
                let _ = router
                    .snap_cvar
                    .wait_timeout(stop, Duration::from_millis(200))
                    .unwrap();
            }
        })
        .expect("spawn snapshot writer")
}
