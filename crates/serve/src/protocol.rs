//! The `qb-serve` wire protocol: JSON-lines request/response over a Unix
//! domain socket.
//!
//! Every request is one JSON object on one line with a `"cmd"` member;
//! every response is one JSON object on one line with an `"ok"` boolean.
//! Program sources travel as JSON strings (newlines escaped), so the
//! framing stays trivially line-based.
//!
//! | cmd | members | effect |
//! |-----|---------|--------|
//! | `load` | `name`, `source`, optional `backend` | elaborate + create/reuse a warm session |
//! | `verify` | `name`, optional `targets`, optional `deadline_ms`, optional `trace` | decide conditions on the warm session |
//! | `edit` | `name`, `source`, optional `backend` | diff against the cached circuit, re-verify incrementally |
//! | `status` | — | list loaded programs and session statistics |
//! | `metrics` | — | Prometheus text exposition of daemon metrics |
//! | `top` | — | windowed rates and per-session gauges from the sampler ring |
//! | `trace` | `request_id` | fetch a retained request trace from the flight recorder |
//! | `unload` | `name` | drop a program (and its session if unaliased) |
//! | `shutdown` | — | stop the daemon |
//!
//! The optional `backend` member (`"sat"`, `"anf"`, `"bdd"`, `"auto"`)
//! selects the decision backend for the named program's session.
//! Absent, the choice is sticky: a name already holding a session for
//! the same program keeps that session's backend, and fresh loads use
//! the daemon's default. Sessions are keyed by (structural hash,
//! backend), so the same program loaded under two backends gets two
//! independent warm sessions.

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load (or re-use) a program under a client-chosen name.
    Load {
        /// Client-side identifier (usually the file path).
        name: String,
        /// QBorrow surface source.
        source: String,
        /// Decision backend name (`None` = the daemon's default).
        backend: Option<String>,
    },
    /// Verify targets of a loaded program (`None` = all `borrow` qubits).
    Verify {
        /// Program name from a prior `load`.
        name: String,
        /// Optional explicit target qubits.
        targets: Option<Vec<usize>>,
        /// Wall-clock budget for the sweep in milliseconds (`None` = the
        /// daemon's default deadline, unbounded unless configured).
        /// Targets the budget does not reach come back with
        /// `"verdict":"unknown"` instead of stalling the daemon.
        deadline_ms: Option<u64>,
        /// Capture a span trace of the sweep: the response gains a
        /// `"trace"` member holding Chrome trace-event JSON.
        trace: bool,
    },
    /// Re-submit an edited source for incremental re-verification.
    Edit {
        /// Program name from a prior `load`.
        name: String,
        /// The edited source.
        source: String,
        /// Decision backend name (`None` = keep the session's backend).
        backend: Option<String>,
    },
    /// Report loaded programs and session statistics.
    Status,
    /// Report daemon metrics in the Prometheus text exposition format
    /// (the response's `"metrics"` member).
    Metrics,
    /// Report windowed request rates and per-session gauges computed
    /// from the daemon's `TimeSeries` sampler ring, as compact JSON.
    Top,
    /// Fetch a retained request trace (span tree as Chrome trace-event
    /// JSON) from the flight recorder — or from the exemplar directory
    /// if the ring has already evicted it.
    Trace {
        /// The `request_id` a prior response reported.
        request_id: u64,
    },
    /// Unload one program.
    Unload {
        /// Program name from a prior `load`.
        name: String,
    },
    /// Stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the first syntactic or structural problem; the daemon
    /// reports it in an `ok:false` response without dropping the
    /// connection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string member \"cmd\"")?;
        let name = |v: &Json| -> Result<String, String> {
            Ok(v.get("name")
                .and_then(Json::as_str)
                .ok_or("missing string member \"name\"")?
                .to_string())
        };
        let source = |v: &Json| -> Result<String, String> {
            Ok(v.get("source")
                .and_then(Json::as_str)
                .ok_or("missing string member \"source\"")?
                .to_string())
        };
        let backend = |v: &Json| -> Result<Option<String>, String> {
            match v.get("backend") {
                None | Some(Json::Null) => Ok(None),
                Some(b) => Ok(Some(
                    b.as_str()
                        .ok_or("\"backend\" must be a string")?
                        .to_string(),
                )),
            }
        };
        match cmd {
            "load" => Ok(Request::Load {
                name: name(&v)?,
                source: source(&v)?,
                backend: backend(&v)?,
            }),
            "verify" => {
                let targets = match v.get("targets") {
                    None | Some(Json::Null) => None,
                    Some(arr) => {
                        let items = arr.as_arr().ok_or("\"targets\" must be an array")?;
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            out.push(
                                item.as_usize()
                                    .ok_or("\"targets\" entries must be non-negative integers")?,
                            );
                        }
                        Some(out)
                    }
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(d) => Some(
                        d.as_usize()
                            .ok_or("\"deadline_ms\" must be a non-negative integer")?
                            as u64,
                    ),
                };
                let trace = match v.get("trace") {
                    None | Some(Json::Null) => false,
                    Some(t) => t.as_bool().ok_or("\"trace\" must be a boolean")?,
                };
                Ok(Request::Verify {
                    name: name(&v)?,
                    targets,
                    deadline_ms,
                    trace,
                })
            }
            "edit" => Ok(Request::Edit {
                name: name(&v)?,
                source: source(&v)?,
                backend: backend(&v)?,
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "top" => Ok(Request::Top),
            "trace" => {
                let request_id = v
                    .get("request_id")
                    .and_then(Json::as_usize)
                    .ok_or("\"request_id\" must be a non-negative integer")?
                    as u64;
                Ok(Request::Trace { request_id })
            }
            "unload" => Ok(Request::Unload { name: name(&v)? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    /// Serialises the request to its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Load {
                name,
                source,
                backend,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::Str("load".into())),
                    ("name", Json::Str(name.clone())),
                    ("source", Json::Str(source.clone())),
                ];
                if let Some(b) = backend {
                    pairs.push(("backend", Json::Str(b.clone())));
                }
                Json::obj(pairs)
            }
            Request::Verify {
                name,
                targets,
                deadline_ms,
                trace,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::Str("verify".into())),
                    ("name", Json::Str(name.clone())),
                ];
                if let Some(targets) = targets {
                    pairs.push((
                        "targets",
                        Json::Arr(targets.iter().map(|&t| Json::Int(t as i64)).collect()),
                    ));
                }
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", Json::Int(*ms as i64)));
                }
                if *trace {
                    pairs.push(("trace", Json::Bool(true)));
                }
                Json::obj(pairs)
            }
            Request::Edit {
                name,
                source,
                backend,
            } => {
                let mut pairs = vec![
                    ("cmd", Json::Str("edit".into())),
                    ("name", Json::Str(name.clone())),
                    ("source", Json::Str(source.clone())),
                ];
                if let Some(b) = backend {
                    pairs.push(("backend", Json::Str(b.clone())));
                }
                Json::obj(pairs)
            }
            Request::Status => Json::obj(vec![("cmd", Json::Str("status".into()))]),
            Request::Metrics => Json::obj(vec![("cmd", Json::Str("metrics".into()))]),
            Request::Top => Json::obj(vec![("cmd", Json::Str("top".into()))]),
            Request::Trace { request_id } => Json::obj(vec![
                ("cmd", Json::Str("trace".into())),
                ("request_id", Json::Int(*request_id as i64)),
            ]),
            Request::Unload { name } => Json::obj(vec![
                ("cmd", Json::Str("unload".into())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Shutdown => Json::obj(vec![("cmd", Json::Str("shutdown".into()))]),
        };
        v.to_string()
    }
}

/// Builds an `ok:false` response line.
pub fn error_response(message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// Builds an `ok:false` response carrying a machine-readable `code`
/// (`"not_loaded"`, `"oversized"`, `"invalid_utf8"`, `"internal_error"`,
/// `"overloaded"`, `"unavailable"`) so clients can branch on the
/// failure class instead of matching message text.
pub fn coded_error_response(message: &str, code: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
        ("code", Json::Str(code.to_string())),
    ])
}

/// Builds the structured load-shed refusal: `code:"overloaded"` plus
/// `retry_after_ms` (when the client should try again) and the queue
/// estimate that justified the shed (`queue_depth` slots ahead,
/// `queue_est_ms` estimated drain time). Sheds are decided at
/// admission, so clients see this in microseconds, never after
/// queueing behind work that would outlive their deadline.
pub fn overloaded_response(
    message: &str,
    retry_after_ms: u64,
    queue_depth: usize,
    queue_est_ms: u64,
) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
        ("code", Json::Str("overloaded".to_string())),
        ("retry_after_ms", Json::Int(retry_after_ms as i64)),
        ("queue_depth", Json::Int(queue_depth as i64)),
        ("queue_est_ms", Json::Int(queue_est_ms as i64)),
    ])
}

/// Builds the circuit-breaker refusal: `code:"unavailable"` plus
/// `retry_after_ms` (the breaker's remaining cooldown). A session whose
/// worker keeps quarantine-rebuilding answers this instead of burning
/// CPU on another doomed rebuild.
pub fn unavailable_response(message: &str, retry_after_ms: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
        ("code", Json::Str("unavailable".to_string())),
        ("retry_after_ms", Json::Int(retry_after_ms as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Load {
                name: "adder".into(),
                source: "borrow a;\nX[a];\n".into(),
                backend: None,
            },
            Request::Load {
                name: "adder".into(),
                source: "borrow a;\nX[a];\n".into(),
                backend: Some("bdd".into()),
            },
            Request::Verify {
                name: "adder".into(),
                targets: None,
                deadline_ms: None,
                trace: false,
            },
            Request::Verify {
                name: "adder".into(),
                targets: Some(vec![3, 1, 4]),
                deadline_ms: None,
                trace: false,
            },
            Request::Verify {
                name: "adder".into(),
                targets: None,
                deadline_ms: Some(250),
                trace: false,
            },
            Request::Verify {
                name: "adder".into(),
                targets: None,
                deadline_ms: Some(250),
                trace: true,
            },
            Request::Edit {
                name: "adder".into(),
                source: "// v2\nborrow a;".into(),
                backend: None,
            },
            Request::Edit {
                name: "adder".into(),
                source: "// v2\nborrow a;".into(),
                backend: Some("auto".into()),
            },
            Request::Status,
            Request::Metrics,
            Request::Top,
            Request::Trace { request_id: 42 },
            Request::Unload {
                name: "adder".into(),
            },
            Request::Shutdown,
        ];
        for r in requests {
            let line = r.to_line();
            assert!(!line.contains('\n'), "one line per request: {line:?}");
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn parse_rejects_structural_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse(r#"{"cmd":"load","name":"x"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"verify","name":"x","targets":[-1]}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"verify","name":"x","targets":"all"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"verify","name":"x","deadline_ms":"fast"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"verify","name":"x","deadline_ms":-5}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"verify","name":"x","trace":"yes"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"load","name":"x","source":"","backend":7}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"trace"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"trace","request_id":-1}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"trace","request_id":"7"}"#).is_err());
    }
}
