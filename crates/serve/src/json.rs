//! A minimal JSON value type, parser and writer.
//!
//! The daemon protocol is JSON-lines over a Unix socket; the workspace is
//! dependency-free by policy, so this module implements the small JSON
//! subset the protocol needs: objects, arrays, strings (with full escape
//! handling — program sources travel as single-line JSON strings),
//! numbers, booleans and null. Numbers are kept as `f64` plus an exact
//! `i64` fast path, which comfortably covers qubit indices, gate counts
//! and nanosecond timings.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed as an exact 64-bit integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys for deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A non-negative integer payload.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// The numeric payload as a float (integers widen losslessly enough
    /// for display purposes).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Json::Int(i));
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // BMP only — surrogate pairs are not needed by
                        // the protocol (sources are plain text).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"cmd":"load","n":3,"neg":-7,"pi":3.5,"ok":true,"targets":[1,2,3],"nested":{"a":null,"s":"x\ny\"z\\w"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("load"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("pi"), Some(&Json::Float(3.5)));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("targets").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("nested").unwrap().get("s").unwrap().as_str(),
            Some("x\ny\"z\\w")
        );
        // Serialise and reparse: fixpoint.
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = Json::Str("a\nb\t\"c\"\\d\u{1}".to_string());
        let text = v.to_string();
        assert!(!text.contains('\n'), "JSON-lines values must be one line");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "01x",
            "{}extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("\"q⊕a → café\"").unwrap();
        assert_eq!(v.as_str(), Some("q⊕a → café"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
