//! A thin synchronous client for the `qb-serve` daemon.
//!
//! One request per call, one JSON message each way — newline-framed
//! over the Unix socket, u32-big-endian-length-prefixed over TCP. The
//! CLI (`qborrow client …`, `qborrow watch …`) and the protocol tests
//! both drive the daemon through this type.

use crate::json::Json;
use crate::protocol::Request;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// One connected transport; the framing follows the transport.
enum Conn {
    Unix {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    },
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
}

/// A connected daemon client.
pub struct Client {
    conn: Conn,
}

/// A token-bucket retry budget for shed (`overloaded`/`unavailable`)
/// responses: every retry spends a whole token, every success earns a
/// tenth of one back (capped at the initial size). Under a sustained
/// overload the bucket drains and retries stop — the client backs off
/// to first-attempt traffic only, so a fleet of retrying clients cannot
/// amplify an overload into a retry storm.
pub struct RetryBudget {
    /// Tokens in integer tenths, so ten successes earn exactly one
    /// whole token (no floating-point drift).
    tenths: u64,
    cap_tenths: u64,
}

impl RetryBudget {
    /// A full bucket of `cap` retry tokens (minimum 1).
    pub fn new(cap: u32) -> RetryBudget {
        let cap_tenths = u64::from(cap.max(1)) * 10;
        RetryBudget {
            tenths: cap_tenths,
            cap_tenths,
        }
    }

    /// Spends one token if available.
    fn try_spend(&mut self) -> bool {
        if self.tenths >= 10 {
            self.tenths -= 10;
            true
        } else {
            false
        }
    }

    /// A request succeeded: earn back a tenth of a token.
    fn earn(&mut self) {
        self.tenths = (self.tenths + 1).min(self.cap_tenths);
    }

    /// Whether the bucket is too empty to fund another retry.
    pub fn exhausted(&self) -> bool {
        self.tenths < 10
    }
}

/// The server-suggested retry delay of a shed response, or `None` when
/// the response was not shed. Sheds carry `code` `"overloaded"` (queue
/// pressure) or `"unavailable"` (open circuit breaker).
pub fn shed_retry_after(response: &Json) -> Option<u64> {
    match response.get("code").and_then(Json::as_str) {
        Some("overloaded") | Some("unavailable") => Some(
            response
                .get("retry_after_ms")
                .and_then(Json::as_i64)
                .map_or(50, |ms| ms.clamp(1, 60_000) as u64),
        ),
        _ => None,
    }
}

/// Shared retry shape of [`Client::connect_with_retry`] and
/// [`Client::connect_tcp_with_retry`].
fn retry_connect(
    mut connect: impl FnMut() -> io::Result<Client>,
    attempts: u32,
    base_delay: Duration,
) -> io::Result<Client> {
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        match connect() {
            Ok(client) => return Ok(client),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts {
            let backoff = base_delay
                .saturating_mul(1u32 << attempt.min(16))
                .min(Duration::from_secs(2));
            // Half fixed, half jittered: concurrent clients spread
            // out instead of reconnecting in lockstep.
            std::thread::sleep(backoff / 2 + jitter(backoff / 2));
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no connection attempts")))
}

impl Client {
    /// Connects to a daemon listening on the Unix socket `socket`.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure (typically: no daemon running).
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(socket.as_ref())?;
        let writer = stream.try_clone()?;
        Ok(Client {
            conn: Conn::Unix {
                reader: BufReader::new(stream),
                writer,
            },
        })
    }

    /// Connects to a daemon's TCP listener (`serve --tcp <addr>`):
    /// length-prefixed frames instead of newline-delimited lines.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            conn: Conn::Tcp {
                reader: BufReader::new(stream),
                writer,
            },
        })
    }

    /// Connects, retrying up to `attempts` times with exponential
    /// backoff (doubling from `base_delay`, capped at 2 s) plus jitter.
    /// This is how `qborrow watch` and `qborrow client` survive a daemon
    /// restart: the socket vanishes for the restart window, then a retry
    /// lands on the fresh listener.
    ///
    /// # Errors
    ///
    /// The last connection failure, once every attempt is exhausted.
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<Client> {
        let socket = socket.as_ref();
        retry_connect(|| Client::connect(socket), attempts, base_delay)
    }

    /// [`Client::connect_with_retry`] over TCP.
    ///
    /// # Errors
    ///
    /// The last connection failure, once every attempt is exhausted.
    pub fn connect_tcp_with_retry(
        addr: &str,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<Client> {
        retry_connect(|| Client::connect_tcp(addr), attempts, base_delay)
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    ///
    /// I/O failures, connection loss, or an unparseable response.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        let line = request.to_line();
        let response = match &mut self.conn {
            Conn::Unix { reader, writer } => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                let mut line = String::new();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    ));
                }
                line.trim_end().to_string()
            }
            Conn::Tcp { reader, writer } => {
                writer.write_all(&(line.len() as u32).to_be_bytes())?;
                writer.write_all(line.as_bytes())?;
                writer.flush()?;
                let mut len_buf = [0u8; 4];
                reader.read_exact(&mut len_buf).map_err(|e| {
                    if e.kind() == io::ErrorKind::UnexpectedEof {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
                    } else {
                        e
                    }
                })?;
                let mut payload = vec![0u8; u32::from_be_bytes(len_buf) as usize];
                reader.read_exact(&mut payload)?;
                String::from_utf8(payload).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "daemon response is not valid UTF-8",
                    )
                })?
            }
        };
        Json::parse(&response).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable daemon response: {e}"),
            )
        })
    }

    /// [`Client::request`] with shed-aware retries: a response coded
    /// `overloaded` or `unavailable` is retried up to `max_retries`
    /// times, each retry funded by a token from `budget` and delayed by
    /// the server's `retry_after_ms` hint plus jitter. The last
    /// response (shed or not) is returned once retries run out; a
    /// successful response earns budget back.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        budget: &mut RetryBudget,
        max_retries: u32,
    ) -> io::Result<Json> {
        let mut response = self.request(request)?;
        for _ in 0..max_retries {
            let Some(retry_after) = shed_retry_after(&response) else {
                break;
            };
            if !budget.try_spend() {
                break;
            }
            let base = Duration::from_millis(retry_after);
            std::thread::sleep(base + jitter(base / 2));
            response = self.request(request)?;
        }
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            budget.earn();
        }
        Ok(response)
    }

    /// Loads `source` under `name` on the daemon's default backend.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load(&mut self, name: &str, source: &str) -> io::Result<Json> {
        self.load_with(name, source, None)
    }

    /// Loads `source` under `name`, optionally selecting the decision
    /// backend (`"sat"`, `"anf"`, `"bdd"`, `"auto"`) for its session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load_with(
        &mut self,
        name: &str,
        source: &str,
        backend: Option<&str>,
    ) -> io::Result<Json> {
        self.request(&Request::Load {
            name: name.to_string(),
            source: source.to_string(),
            backend: backend.map(str::to_string),
        })
    }

    /// Verifies a loaded program (all `borrow` qubits when `targets` is
    /// `None`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify(&mut self, name: &str, targets: Option<Vec<usize>>) -> io::Result<Json> {
        self.verify_with_deadline(name, targets, None)
    }

    /// Verifies under a wall-clock budget in milliseconds: targets the
    /// budget does not reach come back with `"verdict":"unknown"`
    /// instead of stalling the daemon (`None` = the daemon's default
    /// deadline).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify_with_deadline(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        self.verify_traced(name, targets, deadline_ms, false)
    }

    /// [`Client::verify_with_deadline`] with span tracing: when `trace`
    /// is set the daemon records the sweep and the response carries a
    /// `"trace"` member holding Chrome trace-event JSON.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify_traced(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
        trace: bool,
    ) -> io::Result<Json> {
        self.request(&Request::Verify {
            name: name.to_string(),
            targets,
            deadline_ms,
            trace,
        })
    }

    /// Submits an edited source for incremental re-verification.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn edit(&mut self, name: &str, source: &str) -> io::Result<Json> {
        self.edit_with(name, source, None)
    }

    /// Submits an edited source, optionally moving the session to a
    /// different decision backend (which reloads instead of editing
    /// incrementally).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn edit_with(
        &mut self,
        name: &str,
        source: &str,
        backend: Option<&str>,
    ) -> io::Result<Json> {
        self.request(&Request::Edit {
            name: name.to_string(),
            source: source.to_string(),
            backend: backend.map(str::to_string),
        })
    }

    /// Queries daemon status.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self) -> io::Result<Json> {
        self.request(&Request::Status)
    }

    /// Fetches daemon metrics; the response's `"metrics"` member holds
    /// the Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> io::Result<Json> {
        self.request(&Request::Metrics)
    }

    /// Fetches the live dashboard snapshot: windowed request rates and
    /// per-session gauges computed from the daemon's sampler ring.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn top(&mut self) -> io::Result<Json> {
        self.request(&Request::Top)
    }

    /// Fetches a retained request trace by the `request_id` a prior
    /// response reported; the response's `"trace"` member holds Chrome
    /// trace-event JSON.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn trace(&mut self, request_id: u64) -> io::Result<Json> {
        self.request(&Request::Trace { request_id })
    }

    /// Unloads one program.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn unload(&mut self, name: &str) -> io::Result<Json> {
        self.request(&Request::Unload {
            name: name.to_string(),
        })
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Request::Shutdown)
    }
}

/// A uniform delay in `[0, upper)`, seeded from the standard library's
/// per-process `RandomState` (the workspace builds offline, so no `rand`
/// crate).
fn jitter(upper: Duration) -> Duration {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    if upper.is_zero() {
        return Duration::ZERO;
    }
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(0x6a69_7474_6572); // "jitter"
    upper.mul_f64((hasher.finish() % 1024) as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_budget_drains_and_earns_back() {
        let mut budget = RetryBudget::new(2);
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "bucket is empty");
        assert!(budget.exhausted());
        // Ten successes earn one whole token back, capped at the size.
        for _ in 0..10 {
            budget.earn();
        }
        assert!(!budget.exhausted());
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
    }

    #[test]
    fn shed_retry_after_reads_only_shed_codes() {
        let shed = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("code", Json::Str("overloaded".into())),
            ("retry_after_ms", Json::Int(120)),
        ]);
        assert_eq!(shed_retry_after(&shed), Some(120));
        let open = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("code", Json::Str("unavailable".into())),
        ]);
        assert_eq!(shed_retry_after(&open), Some(50), "default hint");
        let other = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("code", Json::Str("not_loaded".into())),
        ]);
        assert_eq!(shed_retry_after(&other), None);
    }
}
