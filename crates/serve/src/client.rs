//! A thin synchronous client for the `qb-serve` daemon.
//!
//! One request per call, one JSON line each way. The CLI (`qborrow
//! client …`, `qborrow watch …`) and the protocol tests both drive the
//! daemon through this type.

use crate::json::Json;
use crate::protocol::Request;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// A connected daemon client.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon listening on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure (typically: no daemon running).
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(socket.as_ref())?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects, retrying up to `attempts` times with exponential
    /// backoff (doubling from `base_delay`, capped at 2 s) plus jitter.
    /// This is how `qborrow watch` and `qborrow client` survive a daemon
    /// restart: the socket vanishes for the restart window, then a retry
    /// lands on the fresh listener.
    ///
    /// # Errors
    ///
    /// The last connection failure, once every attempt is exhausted.
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<Client> {
        let socket = socket.as_ref();
        let mut last_err = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 < attempts {
                let backoff = base_delay
                    .saturating_mul(1u32 << attempt.min(16))
                    .min(Duration::from_secs(2));
                // Half fixed, half jittered: concurrent clients spread
                // out instead of reconnecting in lockstep.
                std::thread::sleep(backoff / 2 + jitter(backoff / 2));
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no connection attempts")))
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    ///
    /// I/O failures, connection loss, or an unparseable response line.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Json::parse(line.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable daemon response: {e}"),
            )
        })
    }

    /// Loads `source` under `name` on the daemon's default backend.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load(&mut self, name: &str, source: &str) -> io::Result<Json> {
        self.load_with(name, source, None)
    }

    /// Loads `source` under `name`, optionally selecting the decision
    /// backend (`"sat"`, `"anf"`, `"bdd"`, `"auto"`) for its session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load_with(
        &mut self,
        name: &str,
        source: &str,
        backend: Option<&str>,
    ) -> io::Result<Json> {
        self.request(&Request::Load {
            name: name.to_string(),
            source: source.to_string(),
            backend: backend.map(str::to_string),
        })
    }

    /// Verifies a loaded program (all `borrow` qubits when `targets` is
    /// `None`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify(&mut self, name: &str, targets: Option<Vec<usize>>) -> io::Result<Json> {
        self.verify_with_deadline(name, targets, None)
    }

    /// Verifies under a wall-clock budget in milliseconds: targets the
    /// budget does not reach come back with `"verdict":"unknown"`
    /// instead of stalling the daemon (`None` = the daemon's default
    /// deadline).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify_with_deadline(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        self.verify_traced(name, targets, deadline_ms, false)
    }

    /// [`Client::verify_with_deadline`] with span tracing: when `trace`
    /// is set the daemon records the sweep and the response carries a
    /// `"trace"` member holding Chrome trace-event JSON.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify_traced(
        &mut self,
        name: &str,
        targets: Option<Vec<usize>>,
        deadline_ms: Option<u64>,
        trace: bool,
    ) -> io::Result<Json> {
        self.request(&Request::Verify {
            name: name.to_string(),
            targets,
            deadline_ms,
            trace,
        })
    }

    /// Submits an edited source for incremental re-verification.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn edit(&mut self, name: &str, source: &str) -> io::Result<Json> {
        self.edit_with(name, source, None)
    }

    /// Submits an edited source, optionally moving the session to a
    /// different decision backend (which reloads instead of editing
    /// incrementally).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn edit_with(
        &mut self,
        name: &str,
        source: &str,
        backend: Option<&str>,
    ) -> io::Result<Json> {
        self.request(&Request::Edit {
            name: name.to_string(),
            source: source.to_string(),
            backend: backend.map(str::to_string),
        })
    }

    /// Queries daemon status.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self) -> io::Result<Json> {
        self.request(&Request::Status)
    }

    /// Fetches daemon metrics; the response's `"metrics"` member holds
    /// the Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> io::Result<Json> {
        self.request(&Request::Metrics)
    }

    /// Unloads one program.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn unload(&mut self, name: &str) -> io::Result<Json> {
        self.request(&Request::Unload {
            name: name.to_string(),
        })
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&Request::Shutdown)
    }
}

/// A uniform delay in `[0, upper)`, seeded from the standard library's
/// per-process `RandomState` (the workspace builds offline, so no `rand`
/// crate).
fn jitter(upper: Duration) -> Duration {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    if upper.is_zero() {
        return Duration::ZERO;
    }
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(0x6a69_7474_6572); // "jitter"
    upper.mul_f64((hasher.finish() % 1024) as f64 / 1024.0)
}
