//! Named failpoints for fault-injection testing.
//!
//! Production code marks the places where real deployments fail —
//! snapshot writes, arena GC, solver compaction, cancellation checks —
//! with [`hit`] calls naming the site. In normal operation a hit is a
//! single relaxed atomic load (the registry is disarmed, nothing else
//! runs). Tests arm sites programmatically ([`arm`]) or via the
//! `QB_FAILPOINTS` environment variable, choosing what happens there:
//! panic (exercising `catch_unwind` isolation), report an injected
//! error, or fire a cancellation.
//!
//! Env syntax, for driving real binaries in kill-and-restart tests:
//!
//! ```text
//! QB_FAILPOINTS="snapshot_write=error;arena_gc=panic:1"
//! ```
//!
//! `name=action[:count]` entries separated by `;`. Actions are `panic`,
//! `error`, `cancel` and `delay-<ms>` (sleep that many milliseconds at
//! the site — artificial slowness for overload tests); an optional
//! `:count` limits how many hits trigger before the site disarms
//! itself (absent = every hit).
//!
//! # Examples
//!
//! ```
//! use qb_testutil::failpoints;
//!
//! assert!(!failpoints::should_fail("demo_site"));
//! failpoints::arm("demo_site", failpoints::Action::Error, Some(1));
//! assert!(failpoints::should_fail("demo_site")); // fires once...
//! assert!(!failpoints::should_fail("demo_site")); // ...then disarms
//! failpoints::clear_all();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed failpoint does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the site (tests of `catch_unwind` isolation).
    Panic,
    /// Report failure to the caller ([`should_fail`] returns `true`).
    Error,
    /// Report a spurious cancellation ([`should_cancel`] returns
    /// `true`).
    Cancel,
    /// Sleep this many milliseconds at the site (artificial slowness
    /// for overload and backpressure tests). Every hook form honours
    /// it, so any instrumented site can be slowed down.
    Delay(u64),
}

struct Entry {
    action: Action,
    /// Remaining hits before self-disarm; `None` = unlimited.
    remaining: Option<u32>,
}

/// Fast-path gate, one relaxed load per hit. It starts [`UNKNOWN`] (not
/// [`DISARMED`]) so the very first hit in a process initialises the
/// registry — and thereby parses `QB_FAILPOINTS` — before deciding;
/// otherwise an env-only arming would never be seen by a binary that
/// never calls [`arm`].
static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);
/// `QB_FAILPOINTS` not examined yet.
const UNKNOWN: u8 = 0;
/// No site armed: hits are free.
const DISARMED: u8 = 1;
/// At least one site armed: hits consult the registry.
const ARMED: u8 = 2;

/// Lazily parsed `QB_FAILPOINTS` + programmatic arms.
static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("QB_FAILPOINTS") {
            for (name, entry) in parse_spec(&spec) {
                map.insert(name, entry);
            }
        }
        STATE.store(
            if map.is_empty() { DISARMED } else { ARMED },
            Ordering::Release,
        );
        Mutex::new(map)
    })
}

fn parse_spec(spec: &str) -> Vec<(String, Entry)> {
    let mut out = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((name, rest)) = part.split_once('=') else {
            continue;
        };
        let (action, count) = match rest.split_once(':') {
            Some((a, n)) => (a, n.parse::<u32>().ok()),
            None => (rest, None),
        };
        let action = match action.trim() {
            "panic" => Action::Panic,
            "error" => Action::Error,
            "cancel" => Action::Cancel,
            a => match a
                .strip_prefix("delay-")
                .and_then(|ms| ms.parse::<u64>().ok())
            {
                Some(ms) => Action::Delay(ms),
                None => continue,
            },
        };
        out.push((
            name.trim().to_string(),
            Entry {
                action,
                remaining: count,
            },
        ));
    }
    out
}

/// Arms failpoint `name` with `action`, triggering at most `count`
/// times (`None` = every hit until cleared).
pub fn arm(name: &str, action: Action, count: Option<u32>) {
    let mut map = registry().lock().unwrap();
    map.insert(
        name.to_string(),
        Entry {
            action,
            remaining: count,
        },
    );
    STATE.store(ARMED, Ordering::Release);
}

/// Disarms failpoint `name`.
pub fn clear(name: &str) {
    let mut map = registry().lock().unwrap();
    map.remove(name);
    if map.is_empty() {
        STATE.store(DISARMED, Ordering::Release);
    }
}

/// Disarms every failpoint.
pub fn clear_all() {
    let mut map = registry().lock().unwrap();
    map.clear();
    STATE.store(DISARMED, Ordering::Release);
}

/// Consumes one hit of `name` if armed, returning its action.
fn consume(name: &str) -> Option<Action> {
    if STATE.load(Ordering::Relaxed) == DISARMED {
        return None;
    }
    let mut map = registry().lock().unwrap();
    let entry = map.get_mut(name)?;
    let action = entry.action;
    if let Some(n) = &mut entry.remaining {
        if *n == 0 {
            map.remove(name);
            return None;
        }
        *n -= 1;
        if *n == 0 {
            map.remove(name);
        }
    }
    if map.is_empty() {
        // The last counted site just exhausted itself: restore the
        // one-load fast path for the rest of the process.
        STATE.store(DISARMED, Ordering::Release);
    }
    action.into()
}

/// Honours [`Action::Delay`] by sleeping at the site; every public hook
/// routes its consumed action through here so any instrumented site can
/// be slowed down regardless of which hook form it uses.
fn react(name: &str, action: Option<Action>) -> Option<Action> {
    match action {
        Some(Action::Panic) => panic!("failpoint {name} triggered"),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        other => other,
    }
}

/// The production-side hook: call at a failure site. Panics if the site
/// is armed with [`Action::Panic`], sleeps on [`Action::Delay`];
/// otherwise a no-op (sites that only ever panic or stall can ignore
/// the other actions).
pub fn hit(name: &str) {
    react(name, consume(name));
}

/// Like [`hit`], but for sites with an error path: returns `true` when
/// armed with [`Action::Error`] (the caller reports an injected
/// failure), panics on [`Action::Panic`], sleeps on [`Action::Delay`].
pub fn should_fail(name: &str) -> bool {
    matches!(react(name, consume(name)), Some(Action::Error))
}

/// For cancellation-injection sites: returns `true` when armed with
/// [`Action::Cancel`] (the caller trips its cancellation token), panics
/// on [`Action::Panic`], sleeps on [`Action::Delay`].
pub fn should_cancel(name: &str) -> bool {
    matches!(react(name, consume(name)), Some(Action::Cancel))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests use distinct site
    // names and restore the disarmed state.

    #[test]
    fn disarmed_sites_do_nothing() {
        assert!(!should_fail("fp_t1"));
        assert!(!should_cancel("fp_t1"));
        hit("fp_t1");
    }

    #[test]
    fn counted_arm_self_disarms() {
        arm("fp_t2", Action::Error, Some(2));
        assert!(should_fail("fp_t2"));
        assert!(should_fail("fp_t2"));
        assert!(!should_fail("fp_t2"));
        clear("fp_t2");
    }

    #[test]
    fn panic_action_panics_on_hit() {
        arm("fp_t3", Action::Panic, Some(1));
        let result = std::panic::catch_unwind(|| hit("fp_t3"));
        assert!(result.is_err());
        assert!(!should_fail("fp_t3"), "count exhausted by the panic");
        clear("fp_t3");
    }

    #[test]
    fn cancel_action_reports_only_to_should_cancel() {
        arm("fp_t4", Action::Cancel, None);
        assert!(should_cancel("fp_t4"));
        assert!(!should_fail("fp_t4"), "cancel is not an error");
        clear("fp_t4");
    }

    #[test]
    fn spec_parsing_accepts_the_documented_syntax() {
        let parsed =
            parse_spec("snapshot_write=error;arena_gc=panic:1; bad ;x=nope;slow_solve=delay-40:2");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "snapshot_write");
        assert_eq!(parsed[0].1.action, Action::Error);
        assert_eq!(parsed[0].1.remaining, None);
        assert_eq!(parsed[1].0, "arena_gc");
        assert_eq!(parsed[1].1.action, Action::Panic);
        assert_eq!(parsed[1].1.remaining, Some(1));
        assert_eq!(parsed[2].0, "slow_solve");
        assert_eq!(parsed[2].1.action, Action::Delay(40));
        assert_eq!(parsed[2].1.remaining, Some(2));
    }

    #[test]
    fn delay_action_sleeps_at_the_site() {
        arm("fp_t5", Action::Delay(30), Some(1));
        let t0 = std::time::Instant::now();
        hit("fp_t5");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        let t0 = std::time::Instant::now();
        hit("fp_t5");
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(20),
            "self-disarmed"
        );
        clear("fp_t5");
    }
}
