//! # qb-testutil
//!
//! A tiny, dependency-free pseudo-random generator for the workspace's
//! randomized tests and benches. The repository builds in fully offline
//! environments, so external crates like `rand`/`proptest` are not
//! available; this crate provides the deterministic subset those tests
//! need: a seedable 64-bit generator with ranges, bools and floats.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! single 64-bit state advanced by a Weyl sequence and finalized with a
//! variance-maximising mixer. It passes BigCrush when used as a stream
//! and, critically for tests, is trivially reproducible from its seed.
//!
//! # Examples
//!
//! ```
//! use qb_testutil::Rng;
//! let mut rng = Rng::new(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! assert_eq!(Rng::new(42).next_u64(), a); // reproducible
//! ```

pub mod failpoints;

/// A seedable SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * bound,
        // negligible for test-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.gen_below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Picks two *distinct* indices below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 2`.
    pub fn gen_distinct2(&mut self, bound: usize) -> (usize, usize) {
        assert!(bound >= 2, "need at least two values");
        let a = self.gen_below(bound);
        let mut b = self.gen_below(bound - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    /// Picks three pairwise-distinct indices below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 3`.
    pub fn gen_distinct3(&mut self, bound: usize) -> (usize, usize, usize) {
        assert!(bound >= 3, "need at least three values");
        loop {
            let a = self.gen_below(bound);
            let b = self.gen_below(bound);
            let c = self.gen_below(bound);
            if a != b && b != c && a != c {
                return (a, b, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(2), |r, _| Some(r.next_u64()))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3, 9);
            assert!((3..9).contains(&x));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_f64_range(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&g));
        }
    }

    #[test]
    fn distinct_helpers_are_distinct() {
        let mut rng = Rng::new(13);
        for _ in 0..500 {
            let (a, b) = rng.gen_distinct2(5);
            assert_ne!(a, b);
            let (x, y, z) = rng.gen_distinct3(4);
            assert!(x != y && y != z && x != z);
        }
    }

    #[test]
    fn bools_hit_both_values() {
        let mut rng = Rng::new(3);
        let trues = (0..256).filter(|_| rng.gen_bool()).count();
        assert!(trues > 64 && trues < 192, "suspicious bias: {trues}");
    }
}
