//! Density operators (mixed states) and the partial trace.
//!
//! The paper's semantics works with *partial* density operators — positive
//! semidefinite operators with trace at most one, where the trace deficit
//! encodes non-termination probability (§2). [`DensityMatrix`] follows that
//! convention: it validates positivity only in debug assertions and allows
//! any trace in `[0, 1]`.

use crate::state::{bit_of, StateVector};
use qb_linalg::{Complex, Matrix};

/// A (partial) density operator on `n` qubits.
///
/// # Examples
///
/// ```
/// use qb_sim::{DensityMatrix, StateVector};
/// use qb_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let rho = DensityMatrix::from_pure(&StateVector::zero(2).run(&bell));
/// // The reduced state of either qubit is maximally mixed.
/// let reduced = rho.partial_trace(&[0]);
/// assert!((reduced.purity() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    mat: Matrix,
}

impl DensityMatrix {
    /// The projector onto a pure state.
    pub fn from_pure(psi: &StateVector) -> Self {
        let dim = psi.amplitudes().len();
        let mut mat = Matrix::zeros(dim, dim);
        for (i, &a) in psi.amplitudes().iter().enumerate() {
            if a.is_zero(0.0) {
                continue;
            }
            for (j, &b) in psi.amplitudes().iter().enumerate() {
                mat[(i, j)] = a * b.conj();
            }
        }
        DensityMatrix {
            n: psi.num_qubits(),
            mat,
        }
    }

    /// Wraps a raw matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square with dimension `2^n`.
    pub fn from_matrix(n: usize, mat: Matrix) -> Self {
        assert_eq!(mat.rows(), 1 << n, "dimension mismatch");
        assert!(mat.is_square(), "density operators are square");
        DensityMatrix { n, mat }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n: usize) -> Self {
        let dim = 1 << n;
        DensityMatrix {
            n,
            mat: Matrix::identity(dim).scale(Complex::real(1.0 / dim as f64)),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// Trace (1 for normalised states, less for partial states).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `Tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        self.mat.mul_mat(&self.mat).trace().re
    }

    /// Tensor product `self ⊗ other` (self's qubits first).
    #[must_use]
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        DensityMatrix {
            n: self.n + other.n,
            mat: self.mat.kron(&other.mat),
        }
    }

    /// Normalises to unit trace.
    ///
    /// # Panics
    ///
    /// Panics when the trace is (numerically) zero.
    #[must_use]
    pub fn normalized(&self) -> DensityMatrix {
        let t = self.trace();
        assert!(t.abs() > 1e-300, "cannot normalise a zero-trace state");
        DensityMatrix {
            n: self.n,
            mat: self.mat.scale(Complex::real(1.0 / t)),
        }
    }

    /// Traces out every qubit *not* in `keep`, returning the reduced state
    /// of the kept qubits (in ascending original order).
    ///
    /// This is the `ρ|_q` operation used throughout §5 of the paper.
    ///
    /// # Panics
    ///
    /// Panics when `keep` contains duplicates or out-of-range indices.
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        let mut keep = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        assert!(keep.iter().all(|&q| q < self.n), "qubit out of range");
        let k = keep.len();
        let traced: Vec<usize> = (0..self.n).filter(|q| !keep.contains(q)).collect();
        let dim_keep = 1usize << k;
        let dim_traced = 1usize << traced.len();
        let mut out = Matrix::zeros(dim_keep, dim_keep);

        // Compose a full index from kept sub-index and traced sub-index.
        let compose = |kept_bits: usize, traced_bits: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                if kept_bits >> (k - 1 - pos) & 1 == 1 {
                    idx |= 1 << (self.n - 1 - q);
                }
            }
            for (pos, &q) in traced.iter().enumerate() {
                if traced_bits >> (traced.len() - 1 - pos) & 1 == 1 {
                    idx |= 1 << (self.n - 1 - q);
                }
            }
            idx
        };

        for i in 0..dim_keep {
            for j in 0..dim_keep {
                let mut acc = Complex::ZERO;
                for e in 0..dim_traced {
                    acc += self.mat[(compose(i, e), compose(j, e))];
                }
                out[(i, j)] = acc;
            }
        }
        DensityMatrix { n: k, mat: out }
    }

    /// The normalised reduced state of a single qubit — `ρ|_q` in the
    /// paper's notation (Theorem 5.3).
    ///
    /// # Panics
    ///
    /// Panics when the state has zero trace.
    pub fn reduced_qubit(&self, q: usize) -> Matrix {
        let reduced = self.partial_trace(&[q]).normalized();
        reduced.mat
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &DensityMatrix, tol: f64) -> bool {
        self.n == other.n && self.mat.approx_eq(&other.mat, tol)
    }

    /// Fidelity with a pure state: `⟨ψ|ρ|ψ⟩`.
    pub fn fidelity_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.n, psi.num_qubits(), "dimension mismatch");
        let v = self.mat.mul_vec(psi.amplitudes());
        psi.amplitudes()
            .iter()
            .zip(&v)
            .map(|(a, b)| (a.conj() * *b).re)
            .sum()
    }

    /// Probability that measuring `qubit` in the computational basis
    /// yields 1.
    pub fn probability_of_one(&self, qubit: usize) -> f64 {
        (0..self.mat.rows())
            .filter(|&i| bit_of(i, qubit, self.n))
            .map(|i| self.mat[(i, i)].re)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_circuit::Circuit;

    fn bell() -> DensityMatrix {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        DensityMatrix::from_pure(&StateVector::zero(2).run(&c))
    }

    #[test]
    fn pure_states_have_unit_purity() {
        let rho = DensityMatrix::from_pure(&StateVector::basis(2, 3));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_reduced_state_is_mixed() {
        let rho = bell();
        for q in 0..2 {
            let reduced = rho.partial_trace(&[q]);
            assert!(reduced.approx_eq(&DensityMatrix::maximally_mixed(1), 1e-12));
        }
    }

    #[test]
    fn partial_trace_of_product_recovers_factors() {
        let a = DensityMatrix::from_pure(&StateVector::from_bits(&[true]));
        let plus = {
            let mut c = Circuit::new(1);
            c.h(0);
            DensityMatrix::from_pure(&StateVector::zero(1).run(&c))
        };
        let joint = a.tensor(&plus);
        assert!(joint.partial_trace(&[0]).approx_eq(&a, 1e-12));
        assert!(joint.partial_trace(&[1]).approx_eq(&plus, 1e-12));
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let rho = bell();
        assert!((rho.partial_trace(&[1]).trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn keep_order_is_ascending() {
        // |01⟩⟨01|: qubit 0 is |0⟩, qubit 1 is |1⟩.
        let rho = DensityMatrix::from_pure(&StateVector::from_bits(&[false, true]));
        let both = rho.partial_trace(&[1, 0]); // same as keep [0,1]
        assert!(both.approx_eq(&rho, 1e-12));
        let q1 = rho.partial_trace(&[1]);
        assert!((q1.probability_of_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_detects_distinct_states() {
        let rho = bell();
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let bell_psi = StateVector::zero(2).run(&c);
        assert!((rho.fidelity_pure(&bell_psi) - 1.0).abs() < 1e-12);
        assert!(rho.fidelity_pure(&StateVector::basis(2, 0)) < 0.6);
    }

    #[test]
    fn probability_of_one_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let psi = StateVector::zero(2).run(&c);
        let rho = DensityMatrix::from_pure(&psi);
        for q in 0..2 {
            assert!((rho.probability_of_one(q) - psi.probability_of_one(q)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "qubit out of range")]
    fn partial_trace_validates() {
        bell().partial_trace(&[3]);
    }
}
