//! Pure-state (state-vector) simulation.
//!
//! Amplitude indexing convention (used consistently across the workspace's
//! quantum semantics): **qubit 0 is the most significant bit** of the basis
//! index, so the joint space is the Kronecker product
//! `H_{q0} ⊗ H_{q1} ⊗ ⋯` in qubit order and `Matrix::kron` composes
//! states/operators without reshuffling.

use crate::gate_matrix;
use qb_circuit::{Circuit, Gate};
use qb_linalg::{Complex, Matrix};

/// Bit value of `qubit` inside basis-state `index` for an `n`-qubit system.
#[inline]
pub(crate) fn bit_of(index: usize, qubit: usize, n: usize) -> bool {
    index >> (n - 1 - qubit) & 1 == 1
}

/// Mask with the bit of `qubit` set.
#[inline]
pub(crate) fn mask_of(qubit: usize, n: usize) -> usize {
    1 << (n - 1 - qubit)
}

/// A normalised (or sub-normalised) pure state of `n` qubits.
///
/// # Examples
///
/// ```
/// use qb_sim::StateVector;
/// use qb_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let psi = StateVector::zero(2).run(&bell);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros basis state `|0…0⟩`.
    pub fn zero(n: usize) -> Self {
        Self::basis(n, 0)
    }

    /// The computational basis state with the given index (qubit 0 is the
    /// most significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(index < 1 << n, "basis index out of range");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[index] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Builds a basis state from per-qubit bit values.
    pub fn from_bits(bits: &[bool]) -> Self {
        let n = bits.len();
        let mut index = 0usize;
        for (q, &b) in bits.iter().enumerate() {
            if b {
                index |= mask_of(q, n);
            }
        }
        Self::basis(n, index)
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let n = amps.len().trailing_zeros() as usize;
        assert_eq!(1 << n, amps.len(), "length must be a power of two");
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes, basis-ordered.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Tensor product `self ⊗ other` (self's qubits first).
    #[must_use]
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = vec![Complex::ZERO; self.amps.len() * other.amps.len()];
        for (i, &a) in self.amps.iter().enumerate() {
            for (j, &b) in other.amps.iter().enumerate() {
                amps[i * other.amps.len() + j] = a * b;
            }
        }
        StateVector {
            n: self.n + other.n,
            amps,
        }
    }

    /// Squared norm `⟨ψ|ψ⟩`.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n, "dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Probability of observing the full basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probability that `qubit` reads 1.
    pub fn probability_of_one(&self, qubit: usize) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| bit_of(*i, qubit, self.n))
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Exact equality up to tolerance (no global-phase allowance).
    pub fn approx_eq(&self, other: &StateVector, tol: f64) -> bool {
        self.n == other.n
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Equality up to a global phase: `|⟨self|other⟩| ≈ ‖self‖·‖other‖`.
    pub fn equal_up_to_phase(&self, other: &StateVector, tol: f64) -> bool {
        if self.n != other.n {
            return false;
        }
        let overlap = self.inner(other).abs();
        let norms = (self.norm_sqr() * other.norm_sqr()).sqrt();
        (overlap - norms).abs() <= tol
    }

    /// Applies a gate in place.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let n = self.n;
        match gate {
            Gate::X(q) => {
                let m = mask_of(*q, n);
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::Z(q) => {
                let m = mask_of(*q, n);
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & m != 0 {
                        *a = -*a;
                    }
                }
            }
            Gate::H(q) => {
                let m = mask_of(*q, n);
                let s = std::f64::consts::FRAC_1_SQRT_2;
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a0 = self.amps[i];
                        let a1 = self.amps[i | m];
                        self.amps[i] = (a0 + a1) * s;
                        self.amps[i | m] = (a0 - a1) * s;
                    }
                }
            }
            Gate::S(q) => self.phase_if_one(*q, Complex::I),
            Gate::Sdg(q) => self.phase_if_one(*q, -Complex::I),
            Gate::T(q) => {
                self.phase_if_one(*q, Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4))
            }
            Gate::Tdg(q) => {
                self.phase_if_one(*q, Complex::from_polar(1.0, -std::f64::consts::FRAC_PI_4))
            }
            Gate::Phase { theta, q } => self.phase_if_one(*q, Complex::from_polar(1.0, *theta)),
            Gate::Cnot { c, t } => {
                let (mc, mt) = (mask_of(*c, n), mask_of(*t, n));
                for i in 0..self.amps.len() {
                    if i & mc != 0 && i & mt == 0 {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
            Gate::Cz { c, t } => {
                let (mc, mt) = (mask_of(*c, n), mask_of(*t, n));
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & mc != 0 && i & mt != 0 {
                        *a = -*a;
                    }
                }
            }
            Gate::CPhase { theta, c, t } => {
                let (mc, mt) = (mask_of(*c, n), mask_of(*t, n));
                let ph = Complex::from_polar(1.0, *theta);
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & mc != 0 && i & mt != 0 {
                        *a *= ph;
                    }
                }
            }
            Gate::Swap(a, b) => {
                let (ma, mb) = (mask_of(*a, n), mask_of(*b, n));
                for i in 0..self.amps.len() {
                    if i & ma != 0 && i & mb == 0 {
                        self.amps.swap(i, i ^ ma ^ mb);
                    }
                }
            }
            Gate::Toffoli { c1, c2, t } => {
                let (m1, m2, mt) = (mask_of(*c1, n), mask_of(*c2, n), mask_of(*t, n));
                for i in 0..self.amps.len() {
                    if i & m1 != 0 && i & m2 != 0 && i & mt == 0 {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
            Gate::Mcx { controls, target } => {
                let masks: Vec<usize> = controls.iter().map(|&c| mask_of(c, n)).collect();
                let mt = mask_of(*target, n);
                for i in 0..self.amps.len() {
                    if i & mt == 0 && masks.iter().all(|&m| i & m != 0) {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
        }
    }

    fn phase_if_one(&mut self, q: usize, phase: Complex) {
        let m = mask_of(q, self.n);
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & m != 0 {
                *a *= phase;
            }
        }
    }

    /// Applies an arbitrary unitary on the listed qubits (general but slow;
    /// gate-specific paths above are preferred).
    ///
    /// # Panics
    ///
    /// Panics when the matrix dimension does not match `2^qubits.len()`.
    pub fn apply_unitary(&mut self, qubits: &[usize], m: &Matrix) {
        let k = qubits.len();
        assert_eq!(m.rows(), 1 << k, "matrix dimension mismatch");
        let n = self.n;
        let masks: Vec<usize> = qubits.iter().map(|&q| mask_of(q, n)).collect();
        let all_mask: usize = masks.iter().sum();
        let mut new_amps = vec![Complex::ZERO; self.amps.len()];
        for (i, &amp) in self.amps.iter().enumerate() {
            if amp.is_zero(0.0) {
                continue;
            }
            // Extract the sub-index of the operand qubits (list order,
            // first qubit = most significant sub-bit).
            let mut sub = 0usize;
            for (j, &mask) in masks.iter().enumerate() {
                if i & mask != 0 {
                    sub |= 1 << (k - 1 - j);
                }
            }
            let base = i & !all_mask;
            for row in 0..(1 << k) {
                let coeff = m[(row, sub)];
                if coeff.is_zero(0.0) {
                    continue;
                }
                let mut j = base;
                for (b, &mask) in masks.iter().enumerate() {
                    if row >> (k - 1 - b) & 1 == 1 {
                        j |= mask;
                    }
                }
                new_amps[j] += coeff * amp;
            }
        }
        self.amps = new_amps;
    }

    /// Runs a circuit and returns the evolved state.
    #[must_use]
    pub fn run(mut self, circuit: &Circuit) -> StateVector {
        assert_eq!(
            circuit.num_qubits(),
            self.n,
            "circuit width must equal state width"
        );
        for gate in circuit.gates() {
            self.apply_gate(gate);
        }
        self
    }
}

/// The full `2^n × 2^n` unitary implemented by `circuit` (column-by-column
/// state-vector evolution).
///
/// # Panics
///
/// Panics when the circuit has more than 12 qubits.
pub fn unitary_of(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    assert!(n <= 12, "unitary extraction limited to 12 qubits");
    let dim = 1 << n;
    let mut u = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let out = StateVector::basis(n, col).run(circuit);
        for (row, &a) in out.amplitudes().iter().enumerate() {
            u[(row, col)] = a;
        }
    }
    u
}

/// The `2^k × 2^k` matrix of a bare gate over its own operand list.
pub fn matrix_of_gate(gate: &Gate) -> Matrix {
    gate_matrix(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_indexing_is_msb_first() {
        // |q0 q1⟩ = |10⟩ has index 0b10 = 2.
        let s = StateVector::from_bits(&[true, false]);
        assert_eq!(s.probability(2), 1.0);
        assert!(bit_of(2, 0, 2));
        assert!(!bit_of(2, 1, 2));
    }

    #[test]
    fn x_flips_the_right_qubit() {
        let mut s = StateVector::zero(3);
        s.apply_gate(&Gate::X(1));
        assert_eq!(s.probability(0b010), 1.0);
    }

    #[test]
    fn hadamard_makes_plus() {
        let mut s = StateVector::zero(1);
        s.apply_gate(&Gate::H(0));
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s.amplitudes()[0].approx_eq(Complex::real(r), 1e-12));
        assert!(s.amplitudes()[1].approx_eq(Complex::real(r), 1e-12));
        // H² = I.
        s.apply_gate(&Gate::H(0));
        assert!(s.approx_eq(&StateVector::zero(1), 1e-12));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = StateVector::zero(2).run(&c);
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
        assert!((s.probability_of_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitary_of_cnot_matches_permutation() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let u = unitary_of(&c);
        // CNOT with control=MSB: |10⟩→|11⟩, |11⟩→|10⟩.
        let expect = Matrix::permutation(&[0, 1, 3, 2]);
        assert!(u.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn toffoli_truth_table() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let u = unitary_of(&c);
        let mut perm: Vec<usize> = (0..8).collect();
        perm.swap(0b110, 0b111);
        assert!(u.approx_eq(&Matrix::permutation(&perm), 1e-12));
    }

    #[test]
    fn apply_unitary_agrees_with_gate_paths() {
        let mut c = Circuit::new(3);
        c.h(1).cnot(1, 2).toffoli(0, 2, 1).phase(0.3, 2);
        let mut via_gates = StateVector::basis(3, 0b101);
        let mut via_matrices = StateVector::basis(3, 0b101);
        for gate in c.gates() {
            via_gates.apply_gate(gate);
            via_matrices.apply_unitary(&gate.qubits(), &matrix_of_gate(gate));
        }
        assert!(via_gates.approx_eq(&via_matrices, 1e-10));
    }

    #[test]
    fn tensor_orders_qubits() {
        let one = StateVector::from_bits(&[true]);
        let zero = StateVector::from_bits(&[false]);
        let t = one.tensor(&zero);
        assert_eq!(t.probability(0b10), 1.0);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let s = StateVector::from_bits(&[true, false]).run(&c);
        assert_eq!(s.probability(0b01), 1.0);
    }

    #[test]
    fn global_phase_equality() {
        let mut a = StateVector::zero(1);
        a.apply_gate(&Gate::H(0));
        let mut b = a.clone();
        // Apply a global phase via Z·X·Z·X = -I.
        for g in [Gate::Z(0), Gate::X(0), Gate::Z(0), Gate::X(0)] {
            b.apply_gate(&g);
        }
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(a.equal_up_to_phase(&b, 1e-12));
    }

    #[test]
    fn norm_preserved_by_gates() {
        let mut circ = Circuit::new(3);
        circ.h(0).t(0).cnot(0, 2).phase(1.1, 1).cz(1, 2);
        let s = StateVector::basis(3, 5).run(&circ);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }
}
