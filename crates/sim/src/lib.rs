//! # qb-sim
//!
//! Quantum simulation substrate: state vectors, density operators, and
//! Kraus-form quantum operations with a decidable (superoperator) equality.
//!
//! This crate supplies the ground-truth semantics against which the
//! symbolic safe-uncomputation verifier of `qb-core` is validated:
//!
//! * [`StateVector`] — pure-state evolution of `qb_circuit::Circuit`s;
//! * [`DensityMatrix`] — (partial) density operators with the partial
//!   trace `ρ|_q` used throughout §5 of the paper;
//! * [`Channel`] — quantum operations with composition [`Channel::then`],
//!   branch sums [`Channel::plus`] and [`Channel::superoperator`] equality,
//!   the building blocks of the Fig. 4.3 denotational semantics.
//!
//! Everything is dense and exact (up to `f64`), sized for the ≤ 6-qubit
//! systems the finite-basis theorems (Thm. 6.1) require.
//!
//! # Examples
//!
//! Verify by brute force that the Fig. 1.3 CCCNOT-with-dirty-qubit circuit
//! acts as the identity on the dirty qubit `a` (index 2):
//!
//! ```
//! use qb_circuit::Circuit;
//! use qb_sim::unitary_of;
//! use qb_linalg::Matrix;
//!
//! let mut c = Circuit::new(5);
//! c.toffoli(0, 1, 2).toffoli(2, 3, 4).toffoli(0, 1, 2).toffoli(2, 3, 4);
//! let u = unitary_of(&c);
//! // U commutes with X_a and Z_a ⟺ U = V ⊗ I_a (Def. 3.1).
//! let x_a = qb_sim::embed(5, &[2], &Matrix::pauli_x());
//! let z_a = qb_sim::embed(5, &[2], &Matrix::pauli_z());
//! assert!(u.commutator(&x_a).frobenius_norm() < 1e-9);
//! assert!(u.commutator(&z_a).frobenius_norm() < 1e-9);
//! ```

mod channel;
mod density;
mod state;
mod superop;

pub use channel::{embed, gate_matrix, Channel, Measurement};
pub use density::DensityMatrix;
pub use state::{matrix_of_gate, unitary_of, StateVector};
pub use superop::SuperOp;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qb_circuit::{permutation_of, Circuit, Gate};

    const NQ: usize = 4;

    fn arb_gate() -> impl Strategy<Value = Gate> {
        prop_oneof![
            (0..NQ).prop_map(Gate::X),
            (0..NQ).prop_map(Gate::H),
            (0..NQ).prop_map(Gate::T),
            (-3.0f64..3.0, 0..NQ).prop_map(|(theta, q)| Gate::Phase { theta, q }),
            (0..NQ, 0..NQ)
                .prop_filter("distinct", |(c, t)| c != t)
                .prop_map(|(c, t)| Gate::Cnot { c, t }),
            (0..NQ, 0..NQ, 0..NQ)
                .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
                .prop_map(|(c1, c2, t)| Gate::Toffoli { c1, c2, t }),
        ]
    }

    fn arb_circuit(max_len: usize) -> impl Strategy<Value = Circuit> {
        proptest::collection::vec(arb_gate(), 0..max_len).prop_map(|gates| {
            let mut c = Circuit::new(NQ);
            for g in gates {
                c.push(g);
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every circuit produces a unitary matrix.
        #[test]
        fn circuits_are_unitary(c in arb_circuit(12)) {
            prop_assert!(unitary_of(&c).is_unitary(1e-9));
        }

        /// State-vector norms are preserved.
        #[test]
        fn norm_preservation(c in arb_circuit(12), basis in 0usize..(1 << NQ)) {
            let s = StateVector::basis(NQ, basis).run(&c);
            prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        }

        /// For classical circuits the unitary is the basis permutation
        /// computed by the bit-level simulator (modulo endianness mapping).
        #[test]
        fn classical_unitary_matches_bit_simulation(c in arb_circuit(12)) {
            prop_assume!(c.is_classical());
            let u = unitary_of(&c);
            let perm = permutation_of(&c).unwrap();
            // BitState packs qubit i at integer bit i (little-endian);
            // StateVector puts qubit 0 at the most significant bit.
            let reverse = |x: usize| -> usize {
                (0..NQ).fold(0, |acc, b| acc | (((x >> b) & 1) << (NQ - 1 - b)))
            };
            for (input, &output) in perm.iter().enumerate() {
                let s = StateVector::basis(NQ, reverse(input)).run(&c);
                prop_assert!((s.probability(reverse(output)) - 1.0).abs() < 1e-9);
            }
            prop_assert!(u.is_unitary(1e-9));
        }

        /// Channel of a circuit equals the composition of per-gate channels.
        #[test]
        fn channel_composition(c in arb_circuit(6)) {
            let whole = Channel::from_circuit(&c);
            let mut composed = Channel::identity(NQ);
            for g in c.gates() {
                composed = composed.then(&Channel::from_gate(NQ, g));
            }
            prop_assert!(whole.approx_eq(&composed, 1e-7));
        }

        /// Partial trace is trace preserving and order insensitive.
        #[test]
        fn partial_trace_properties(c in arb_circuit(10)) {
            let rho = DensityMatrix::from_pure(&StateVector::zero(NQ).run(&c));
            let reduced = rho.partial_trace(&[1, 3]);
            prop_assert!((reduced.trace() - 1.0).abs() < 1e-9);
            let reduced_again = reduced.partial_trace(&[0]);
            let direct = rho.partial_trace(&[1]);
            prop_assert!(reduced_again.approx_eq(&direct, 1e-9));
        }
    }
}
