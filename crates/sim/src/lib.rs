//! # qb-sim
//!
//! Quantum simulation substrate: state vectors, density operators, and
//! Kraus-form quantum operations with a decidable (superoperator) equality.
//!
//! This crate supplies the ground-truth semantics against which the
//! symbolic safe-uncomputation verifier of `qb-core` is validated:
//!
//! * [`StateVector`] — pure-state evolution of `qb_circuit::Circuit`s;
//! * [`DensityMatrix`] — (partial) density operators with the partial
//!   trace `ρ|_q` used throughout §5 of the paper;
//! * [`Channel`] — quantum operations with composition [`Channel::then`],
//!   branch sums [`Channel::plus`] and [`Channel::superoperator`] equality,
//!   the building blocks of the Fig. 4.3 denotational semantics.
//!
//! Everything is dense and exact (up to `f64`), sized for the ≤ 6-qubit
//! systems the finite-basis theorems (Thm. 6.1) require.
//!
//! # Examples
//!
//! Verify by brute force that the Fig. 1.3 CCCNOT-with-dirty-qubit circuit
//! acts as the identity on the dirty qubit `a` (index 2):
//!
//! ```
//! use qb_circuit::Circuit;
//! use qb_sim::unitary_of;
//! use qb_linalg::Matrix;
//!
//! let mut c = Circuit::new(5);
//! c.toffoli(0, 1, 2).toffoli(2, 3, 4).toffoli(0, 1, 2).toffoli(2, 3, 4);
//! let u = unitary_of(&c);
//! // U commutes with X_a and Z_a ⟺ U = V ⊗ I_a (Def. 3.1).
//! let x_a = qb_sim::embed(5, &[2], &Matrix::pauli_x());
//! let z_a = qb_sim::embed(5, &[2], &Matrix::pauli_z());
//! assert!(u.commutator(&x_a).frobenius_norm() < 1e-9);
//! assert!(u.commutator(&z_a).frobenius_norm() < 1e-9);
//! ```

mod channel;
mod density;
mod state;
mod superop;

pub use channel::{embed, gate_matrix, Channel, Measurement};
pub use density::DensityMatrix;
pub use state::{matrix_of_gate, unitary_of, StateVector};
pub use superop::SuperOp;

#[cfg(test)]
mod randomized {
    use super::*;
    use qb_circuit::{permutation_of, Circuit, Gate};
    use qb_testutil::Rng;

    const NQ: usize = 4;
    const CASES: usize = 48;

    fn rand_gate(rng: &mut Rng) -> Gate {
        match rng.gen_below(6) {
            0 => Gate::X(rng.gen_below(NQ)),
            1 => Gate::H(rng.gen_below(NQ)),
            2 => Gate::T(rng.gen_below(NQ)),
            3 => Gate::Phase {
                theta: rng.gen_f64_range(-3.0, 3.0),
                q: rng.gen_below(NQ),
            },
            4 => {
                let (c, t) = rng.gen_distinct2(NQ);
                Gate::Cnot { c, t }
            }
            _ => {
                let (c1, c2, t) = rng.gen_distinct3(NQ);
                Gate::Toffoli { c1, c2, t }
            }
        }
    }

    fn rand_circuit(rng: &mut Rng, max_len: usize) -> Circuit {
        let len = rng.gen_below(max_len);
        let mut c = Circuit::new(NQ);
        for _ in 0..len {
            c.push(rand_gate(rng));
        }
        c
    }

    /// Only X/CNOT/Toffoli: always classical.
    fn rand_classical_circuit(rng: &mut Rng, max_len: usize) -> Circuit {
        let len = rng.gen_below(max_len);
        let mut c = Circuit::new(NQ);
        for _ in 0..len {
            let g = match rng.gen_below(3) {
                0 => Gate::X(rng.gen_below(NQ)),
                1 => {
                    let (c0, t) = rng.gen_distinct2(NQ);
                    Gate::Cnot { c: c0, t }
                }
                _ => {
                    let (c1, c2, t) = rng.gen_distinct3(NQ);
                    Gate::Toffoli { c1, c2, t }
                }
            };
            c.push(g);
        }
        c
    }

    /// Every circuit produces a unitary matrix.
    #[test]
    fn circuits_are_unitary() {
        let mut rng = Rng::new(0x51A0);
        for _ in 0..CASES {
            let c = rand_circuit(&mut rng, 12);
            assert!(unitary_of(&c).is_unitary(1e-9));
        }
    }

    /// State-vector norms are preserved.
    #[test]
    fn norm_preservation() {
        let mut rng = Rng::new(0x51A1);
        for _ in 0..CASES {
            let c = rand_circuit(&mut rng, 12);
            let basis = rng.gen_below(1 << NQ);
            let s = StateVector::basis(NQ, basis).run(&c);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    /// For classical circuits the unitary is the basis permutation
    /// computed by the bit-level simulator (modulo endianness mapping).
    #[test]
    fn classical_unitary_matches_bit_simulation() {
        let mut rng = Rng::new(0x51A2);
        for _ in 0..CASES {
            let c = rand_classical_circuit(&mut rng, 12);
            let u = unitary_of(&c);
            let perm = permutation_of(&c).unwrap();
            // BitState packs qubit i at integer bit i (little-endian);
            // StateVector puts qubit 0 at the most significant bit.
            let reverse = |x: usize| -> usize {
                (0..NQ).fold(0, |acc, b| acc | (((x >> b) & 1) << (NQ - 1 - b)))
            };
            for (input, &output) in perm.iter().enumerate() {
                let s = StateVector::basis(NQ, reverse(input)).run(&c);
                assert!((s.probability(reverse(output)) - 1.0).abs() < 1e-9);
            }
            assert!(u.is_unitary(1e-9));
        }
    }

    /// Channel of a circuit equals the composition of per-gate channels.
    #[test]
    fn channel_composition() {
        let mut rng = Rng::new(0x51A3);
        for _ in 0..CASES / 2 {
            let c = rand_circuit(&mut rng, 6);
            let whole = Channel::from_circuit(&c);
            let mut composed = Channel::identity(NQ);
            for g in c.gates() {
                composed = composed.then(&Channel::from_gate(NQ, g));
            }
            assert!(whole.approx_eq(&composed, 1e-7));
        }
    }

    /// Partial trace is trace preserving and order insensitive.
    #[test]
    fn partial_trace_properties() {
        let mut rng = Rng::new(0x51A4);
        for _ in 0..CASES / 2 {
            let c = rand_circuit(&mut rng, 10);
            let rho = DensityMatrix::from_pure(&StateVector::zero(NQ).run(&c));
            let reduced = rho.partial_trace(&[1, 3]);
            assert!((reduced.trace() - 1.0).abs() < 1e-9);
            let reduced_again = reduced.partial_trace(&[0]);
            let direct = rho.partial_trace(&[1]);
            assert!(reduced_again.approx_eq(&direct, 1e-9));
        }
    }
}
