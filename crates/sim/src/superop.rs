//! Dense superoperators: quantum operations as matrices over vectorised
//! density operators.
//!
//! The denotational semantics of QBorrow needs to *compare* quantum
//! operations for equality (Def. 5.1 and Thm. 5.5 quantify over elements
//! of `⟦S⟧`), to *compose* them (sequencing), and to *sum* them
//! (measurement branches, loop unrollings). Kraus representations make
//! sums/compositions grow without bound, whereas the superoperator matrix
//! is closed under all three operations and canonical up to floating-point
//! error — so the semantics layer works here.
//!
//! Vectorisation is row-major: `vec(ρ)[i·d + j] = ρ[i,j]`, under which
//! `vec(KρK†) = (K ⊗ conj(K)) · vec(ρ)`.

use crate::channel::Channel;
use crate::density::DensityMatrix;
use qb_linalg::{Complex, Matrix};

/// A quantum operation as a dense matrix on vectorised density operators.
///
/// # Examples
///
/// ```
/// use qb_sim::{Channel, SuperOp};
/// use qb_circuit::Gate;
///
/// let x = SuperOp::from_channel(&Channel::from_gate(1, &Gate::X(0)));
/// let id = SuperOp::identity(1);
/// assert!(!x.approx_eq(&id, 1e-9));
/// assert!(x.then(&x).approx_eq(&id, 1e-9)); // X ∘ X = I
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuperOp {
    n: usize,
    mat: Matrix,
}

impl SuperOp {
    /// The identity operation on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics for `n > 6` (the matrix would exceed 4096²).
    pub fn identity(n: usize) -> Self {
        assert!(n <= 6, "superoperators limited to 6 qubits");
        let dim = 1usize << n;
        SuperOp {
            n,
            mat: Matrix::identity(dim * dim),
        }
    }

    /// The zero operation (annihilates every state).
    pub fn zero(n: usize) -> Self {
        assert!(n <= 6, "superoperators limited to 6 qubits");
        let dim = 1usize << n;
        SuperOp {
            n,
            mat: Matrix::zeros(dim * dim, dim * dim),
        }
    }

    /// Converts a Kraus-form channel.
    pub fn from_channel(channel: &Channel) -> Self {
        SuperOp {
            n: channel.num_qubits(),
            mat: channel.superoperator(),
        }
    }

    /// Wraps a raw matrix.
    ///
    /// # Panics
    ///
    /// Panics when the dimension is not `4^n`.
    pub fn from_matrix(n: usize, mat: Matrix) -> Self {
        let dim = 1usize << n;
        assert_eq!(mat.rows(), dim * dim, "dimension mismatch");
        assert_eq!(mat.cols(), dim * dim, "dimension mismatch");
        SuperOp { n, mat }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// Sequential composition `other ∘ self` (apply `self` first).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn then(&self, other: &SuperOp) -> SuperOp {
        assert_eq!(self.n, other.n, "dimension mismatch");
        SuperOp {
            n: self.n,
            mat: other.mat.mul_mat(&self.mat),
        }
    }

    /// Pointwise sum (branch combination).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn plus(&self, other: &SuperOp) -> SuperOp {
        assert_eq!(self.n, other.n, "dimension mismatch");
        SuperOp {
            n: self.n,
            mat: self.mat.clone() + other.mat.clone(),
        }
    }

    /// Applies the operation to a density operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &DensityMatrix) -> DensityMatrix {
        assert_eq!(rho.num_qubits(), self.n, "dimension mismatch");
        let dim = 1usize << self.n;
        let mut vec_rho = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                vec_rho[i * dim + j] = rho.matrix()[(i, j)];
            }
        }
        let out = self.mat.mul_vec(&vec_rho);
        let mut mat = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                mat[(i, j)] = out[i * dim + j];
            }
        }
        DensityMatrix::from_matrix(self.n, mat)
    }

    /// Frobenius norm of the superoperator matrix (used as the convergence
    /// measure for `while`-loop fixpoints).
    pub fn norm(&self) -> f64 {
        self.mat.frobenius_norm()
    }

    /// Equality as linear maps.
    pub fn approx_eq(&self, other: &SuperOp, tol: f64) -> bool {
        self.n == other.n && self.mat.approx_eq(&other.mat, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Channel, Measurement, StateVector};
    use qb_circuit::{Circuit, Gate};

    #[test]
    fn superop_apply_matches_channel_apply() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).phase(0.3, 1);
        let ch = Channel::from_circuit(&c);
        let sop = SuperOp::from_channel(&ch);
        let rho = DensityMatrix::from_pure(&StateVector::basis(2, 2));
        assert!(sop.apply(&rho).approx_eq(&ch.apply(&rho), 1e-10));
    }

    #[test]
    fn composition_order() {
        // self.then(other): self applied first.
        let x = SuperOp::from_channel(&Channel::from_gate(1, &Gate::X(0)));
        let init = SuperOp::from_channel(&Channel::init_qubit(1, 0));
        let x_then_init = x.then(&init);
        let rho = DensityMatrix::from_pure(&StateVector::zero(1));
        // X then init: back to |0⟩.
        let out = x_then_init.apply(&rho);
        assert!((out.probability_of_one(0)).abs() < 1e-12);
        // init then X: ends in |1⟩.
        let other = init.then(&x).apply(&rho);
        assert!((other.probability_of_one(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_branches_sum_to_identity_on_diagonal_states() {
        let m = Measurement::basis(1, 0);
        let t = SuperOp::from_channel(&Channel::measurement_branch(1, &m, true));
        let f = SuperOp::from_channel(&Channel::measurement_branch(1, &m, false));
        let total = t.plus(&f);
        let rho = DensityMatrix::from_pure(&StateVector::basis(1, 1));
        assert!(total.apply(&rho).approx_eq(&rho, 1e-12));
    }

    #[test]
    fn zero_annihilates() {
        let z = SuperOp::zero(1);
        let rho = DensityMatrix::maximally_mixed(1);
        assert!(z.apply(&rho).trace().abs() < 1e-12);
    }

    #[test]
    fn global_phase_is_invisible() {
        let minus_i = Channel::unitary(1, Matrix::identity(2).scale(-Complex::ONE));
        let sop = SuperOp::from_channel(&minus_i);
        assert!(sop.approx_eq(&SuperOp::identity(1), 1e-12));
    }
}
