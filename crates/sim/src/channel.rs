//! Quantum operations (completely positive trace non-increasing maps).
//!
//! The denotational semantics of QBorrow (paper Fig. 4.3) interprets every
//! program as a *set* of quantum operations. This module provides the
//! single-operation algebra: Kraus-form channels with composition, the
//! convex sums used by measurement-guarded branching, and a dense
//! superoperator representation that makes equality of operations decidable
//! — which is exactly what Definition 5.1 (safe uncomputation) needs.

use crate::density::DensityMatrix;
use crate::state::mask_of;
use qb_circuit::{Circuit, Gate};
use qb_linalg::{Complex, Matrix};

/// Embeds a `2^k`-dimensional operator acting on the listed `qubits` into
/// the full `2^n`-dimensional space (identity elsewhere).
///
/// The first listed qubit corresponds to the most significant bit of the
/// small operator's index, matching the state-vector convention.
///
/// # Panics
///
/// Panics on dimension mismatch or out-of-range/duplicate qubits.
pub fn embed(n: usize, qubits: &[usize], m: &Matrix) -> Matrix {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k, "operator dimension mismatch");
    assert_eq!(m.cols(), 1 << k, "operator must be square");
    {
        let mut sorted = qubits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicate qubits");
        assert!(sorted.iter().all(|&q| q < n), "qubit out of range");
    }
    let dim = 1 << n;
    let masks: Vec<usize> = qubits.iter().map(|&q| mask_of(q, n)).collect();
    let all_mask: usize = masks.iter().sum();
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let mut sub_col = 0usize;
        for (j, &mask) in masks.iter().enumerate() {
            if col & mask != 0 {
                sub_col |= 1 << (k - 1 - j);
            }
        }
        let base = col & !all_mask;
        for sub_row in 0..(1 << k) {
            let a = m[(sub_row, sub_col)];
            if a.is_zero(0.0) {
                continue;
            }
            let mut row = base;
            for (j, &mask) in masks.iter().enumerate() {
                if sub_row >> (k - 1 - j) & 1 == 1 {
                    row |= mask;
                }
            }
            out[(row, col)] = a;
        }
    }
    out
}

/// The bare matrix of a gate over its own operands.
pub fn gate_matrix(gate: &Gate) -> Matrix {
    match gate {
        Gate::X(_) => Matrix::pauli_x(),
        Gate::H(_) => Matrix::hadamard(),
        Gate::Z(_) => Matrix::pauli_z(),
        Gate::S(_) => Matrix::phase(std::f64::consts::FRAC_PI_2),
        Gate::Sdg(_) => Matrix::phase(-std::f64::consts::FRAC_PI_2),
        Gate::T(_) => Matrix::phase(std::f64::consts::FRAC_PI_4),
        Gate::Tdg(_) => Matrix::phase(-std::f64::consts::FRAC_PI_4),
        Gate::Phase { theta, .. } => Matrix::phase(*theta),
        Gate::Cnot { .. } => Matrix::permutation(&[0, 1, 3, 2]),
        Gate::Cz { .. } => {
            let mut m = Matrix::identity(4);
            m[(3, 3)] = -Complex::ONE;
            m
        }
        Gate::CPhase { theta, .. } => {
            let mut m = Matrix::identity(4);
            m[(3, 3)] = Complex::from_polar(1.0, *theta);
            m
        }
        Gate::Swap(..) => Matrix::permutation(&[0, 2, 1, 3]),
        Gate::Toffoli { .. } => {
            let mut perm: Vec<usize> = (0..8).collect();
            perm.swap(6, 7);
            Matrix::permutation(&perm)
        }
        Gate::Mcx { controls, .. } => {
            let k = controls.len() + 1;
            let dim = 1 << k;
            let mut perm: Vec<usize> = (0..dim).collect();
            perm.swap(dim - 2, dim - 1);
            Matrix::permutation(&perm)
        }
    }
}

/// A binary measurement `{M_T, M_F}` with `M_T†M_T + M_F†M_F = I` (§2).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The operator applied on outcome `T`.
    pub m_true: Matrix,
    /// The operator applied on outcome `F`.
    pub m_false: Matrix,
}

impl Measurement {
    /// Computational-basis measurement of `q` on an `n`-qubit system:
    /// outcome `T` projects onto `|1⟩_q`, outcome `F` onto `|0⟩_q`.
    pub fn basis(n: usize, q: usize) -> Self {
        let p1 = Matrix::from_real(2, 2, &[0.0, 0.0, 0.0, 1.0]);
        let p0 = Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, 0.0]);
        Measurement {
            m_true: embed(n, &[q], &p1),
            m_false: embed(n, &[q], &p0),
        }
    }

    /// Builds a measurement from raw operators.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the completeness relation fails.
    pub fn from_operators(m_true: Matrix, m_false: Matrix) -> Self {
        debug_assert!(
            {
                let sum = m_true.adjoint().mul_mat(&m_true) + m_false.adjoint().mul_mat(&m_false);
                sum.approx_eq(&Matrix::identity(m_true.rows()), 1e-9)
            },
            "measurement operators must satisfy completeness"
        );
        Measurement { m_true, m_false }
    }
}

/// A quantum operation in Kraus form: `E(ρ) = Σ_k K_k ρ K_k†`.
///
/// # Examples
///
/// ```
/// use qb_circuit::Circuit;
/// use qb_sim::{Channel, DensityMatrix, StateVector};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let e = Channel::from_circuit(&c);
/// let rho = e.apply(&DensityMatrix::from_pure(&StateVector::zero(2)));
/// assert!((rho.purity() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    n: usize,
    kraus: Vec<Matrix>,
}

impl Channel {
    /// The identity operation on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Channel {
            n,
            kraus: vec![Matrix::identity(1 << n)],
        }
    }

    /// A unitary channel from a full-space unitary.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn unitary(n: usize, u: Matrix) -> Self {
        assert_eq!(u.rows(), 1 << n, "dimension mismatch");
        Channel { n, kraus: vec![u] }
    }

    /// A unitary channel applying `m` to the listed qubits.
    pub fn unitary_on(n: usize, qubits: &[usize], m: &Matrix) -> Self {
        Channel::unitary(n, embed(n, qubits, m))
    }

    /// The channel of a single gate on an `n`-qubit system.
    pub fn from_gate(n: usize, gate: &Gate) -> Self {
        Channel::unitary_on(n, &gate.qubits(), &gate_matrix(gate))
    }

    /// The unitary channel of a whole circuit.
    ///
    /// # Panics
    ///
    /// Panics for circuits wider than 12 qubits.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Channel::unitary(circuit.num_qubits(), crate::unitary_of(circuit))
    }

    /// The initialisation operation `E_init,q` of §2: resets `q` to `|0⟩`.
    pub fn init_qubit(n: usize, q: usize) -> Self {
        let k0 = Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, 0.0]); // |0⟩⟨0|
        let k1 = Matrix::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]); // |0⟩⟨1|
        Channel {
            n,
            kraus: vec![embed(n, &[q], &k0), embed(n, &[q], &k1)],
        }
    }

    /// The sub-normalised measurement operation `E_m(ρ) = M_m ρ M_m†`.
    pub fn measurement_branch(n: usize, measurement: &Measurement, outcome: bool) -> Self {
        let m = if outcome {
            measurement.m_true.clone()
        } else {
            measurement.m_false.clone()
        };
        assert_eq!(m.rows(), 1 << n, "dimension mismatch");
        Channel { n, kraus: vec![m] }
    }

    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics when operators have inconsistent dimensions.
    pub fn from_kraus(n: usize, kraus: Vec<Matrix>) -> Self {
        assert!(!kraus.is_empty(), "at least one Kraus operator required");
        for k in &kraus {
            assert_eq!(k.rows(), 1 << n, "dimension mismatch");
            assert_eq!(k.cols(), 1 << n, "dimension mismatch");
        }
        Channel { n, kraus }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Kraus operators.
    pub fn kraus_operators(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Applies the operation to a density operator.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, rho: &DensityMatrix) -> DensityMatrix {
        assert_eq!(rho.num_qubits(), self.n, "dimension mismatch");
        let dim = 1 << self.n;
        let mut out = Matrix::zeros(dim, dim);
        for k in &self.kraus {
            out = out + k.mul_mat(rho.matrix()).mul_mat(&k.adjoint());
        }
        DensityMatrix::from_matrix(self.n, out)
    }

    /// Sequential composition: `(other ∘ self)(ρ) = other(self(ρ))`.
    ///
    /// The Kraus set of the composite is the pairwise product, so sizes
    /// multiply; [`Channel::compress`] keeps them manageable.
    #[must_use]
    pub fn then(&self, other: &Channel) -> Channel {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut kraus = Vec::with_capacity(self.kraus.len() * other.kraus.len());
        for k2 in &other.kraus {
            for k1 in &self.kraus {
                kraus.push(k2.mul_mat(k1));
            }
        }
        Channel { n: self.n, kraus }.compress()
    }

    /// Convex/branch sum: `(self + other)(ρ) = self(ρ) + other(ρ)` — the
    /// combination rule for measurement branches in Fig. 4.3.
    #[must_use]
    pub fn plus(&self, other: &Channel) -> Channel {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut kraus = self.kraus.clone();
        kraus.extend(other.kraus.iter().cloned());
        Channel { n: self.n, kraus }
    }

    /// Drops numerically negligible Kraus operators.
    #[must_use]
    pub fn compress(mut self) -> Channel {
        self.kraus.retain(|k| k.frobenius_norm() > 1e-12);
        if self.kraus.is_empty() {
            let dim = 1 << self.n;
            self.kraus.push(Matrix::zeros(dim, dim));
        }
        self
    }

    /// Dense superoperator: the matrix `Σ_k K_k ⊗ conj(K_k)` acting on
    /// row-major vectorised density matrices. Two operations are equal as
    /// maps exactly when their superoperators are equal.
    ///
    /// # Panics
    ///
    /// Panics for systems larger than 6 qubits (the superoperator would
    /// exceed 4096²).
    pub fn superoperator(&self) -> Matrix {
        assert!(self.n <= 6, "superoperator limited to 6 qubits");
        let dim = 1usize << self.n;
        let sdim = dim * dim;
        let mut s = Matrix::zeros(sdim, sdim);
        for k in &self.kraus {
            s = s + k.kron(&k.conj());
        }
        s
    }

    /// Equality as linear maps, via superoperator comparison.
    pub fn approx_eq(&self, other: &Channel, tol: f64) -> bool {
        self.n == other.n && self.superoperator().approx_eq(&other.superoperator(), tol)
    }

    /// Checks the trace non-increasing property `Σ K†K ⪯ I` on the
    /// diagonal and via a Gershgorin-style bound (sound but approximate:
    /// may reject borderline valid channels, never accepts invalid ones by
    /// more than `tol`).
    pub fn is_trace_nonincreasing(&self, tol: f64) -> bool {
        let dim = 1 << self.n;
        let mut sum = Matrix::zeros(dim, dim);
        for k in &self.kraus {
            sum = sum + k.adjoint().mul_mat(k);
        }
        let gap = Matrix::identity(dim) - sum;
        // I − ΣK†K must be PSD; test positivity on basis vectors and by
        // symmetrised diagonal dominance.
        for i in 0..dim {
            if gap[(i, i)].re < -tol {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;

    #[test]
    fn embed_acts_on_selected_qubit() {
        let x = Matrix::pauli_x();
        let on0 = embed(2, &[0], &x);
        // X on qubit 0 (MSB): permutation swapping blocks.
        assert!(on0.approx_eq(&Matrix::permutation(&[2, 3, 0, 1]), 1e-12));
        let on1 = embed(2, &[1], &x);
        assert!(on1.approx_eq(&Matrix::permutation(&[1, 0, 3, 2]), 1e-12));
    }

    #[test]
    fn embed_respects_operand_order() {
        // CNOT with control listed second: embed(2, [1,0], CNOT) has
        // control on qubit 1.
        let cnot = gate_matrix(&Gate::Cnot { c: 0, t: 0 });
        let swapped = embed(2, &[1, 0], &cnot);
        let mut c = Circuit::new(2);
        c.cnot(1, 0);
        let expect = crate::unitary_of(&c);
        assert!(swapped.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn init_channel_resets_qubit() {
        let mut c = Circuit::new(1);
        c.h(0);
        let plus = DensityMatrix::from_pure(&StateVector::zero(1).run(&c));
        let init = Channel::init_qubit(1, 0);
        let out = init.apply(&plus);
        let zero = DensityMatrix::from_pure(&StateVector::zero(1));
        assert!(out.approx_eq(&zero, 1e-12));
        assert!((out.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_branches_sum_to_trace_preserving() {
        let m = Measurement::basis(2, 1);
        let t = Channel::measurement_branch(2, &m, true);
        let f = Channel::measurement_branch(2, &m, false);
        let total = t.plus(&f);
        assert!(total.is_trace_nonincreasing(1e-9));
        let mut c = Circuit::new(2);
        c.h(1);
        let rho = DensityMatrix::from_pure(&StateVector::zero(2).run(&c));
        let out = total.apply(&rho);
        assert!((out.trace() - 1.0).abs() < 1e-12);
        // Each branch captures probability 1/2.
        assert!((t.apply(&rho).trace() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let mut c1 = Circuit::new(2);
        c1.h(0);
        let mut c2 = Circuit::new(2);
        c2.cnot(0, 1);
        let e1 = Channel::from_circuit(&c1);
        let e2 = Channel::from_circuit(&c2);
        let composed = e1.then(&e2);
        let rho = DensityMatrix::from_pure(&StateVector::zero(2));
        let a = composed.apply(&rho);
        let b = e2.apply(&e1.apply(&rho));
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn superoperator_equality_distinguishes_channels() {
        let id = Channel::identity(1);
        let x = Channel::from_gate(1, &Gate::X(0));
        let z = Channel::from_gate(1, &Gate::Z(0));
        assert!(!id.approx_eq(&x, 1e-9));
        assert!(!x.approx_eq(&z, 1e-9));
        // Global phase is invisible at the channel level: -I ~ I.
        let minus_i = Channel::unitary(1, Matrix::identity(2).scale(-Complex::ONE));
        assert!(id.approx_eq(&minus_i, 1e-9));
    }

    #[test]
    fn init_is_not_unitary_but_trace_preserving() {
        let init = Channel::init_qubit(2, 0);
        assert!(init.is_trace_nonincreasing(1e-9));
        let rho = DensityMatrix::maximally_mixed(2);
        let out = init.apply(&rho);
        assert!((out.trace() - 1.0).abs() < 1e-12);
        assert!((out.probability_of_one(0)).abs() < 1e-12);
    }

    #[test]
    fn gate_matrices_are_unitary() {
        let gates = vec![
            Gate::X(0),
            Gate::H(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::T(0),
            Gate::Phase { theta: 0.7, q: 0 },
            Gate::Cnot { c: 0, t: 1 },
            Gate::Cz { c: 0, t: 1 },
            Gate::Swap(0, 1),
            Gate::Toffoli { c1: 0, c2: 1, t: 2 },
            Gate::Mcx {
                controls: vec![0, 1, 2],
                target: 3,
            },
        ];
        for g in gates {
            assert!(gate_matrix(&g).is_unitary(1e-12), "{g:?}");
        }
    }
}
