//! Dense complex matrices sized for few-qubit quantum semantics.
//!
//! The paper's denotational semantics interprets programs over the joint
//! Hilbert space of all machine qubits; for the exhaustive small-`n` checkers
//! a dense row-major matrix is the simplest faithful representation.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qb_linalg::Matrix;
/// let x = Matrix::pauli_x();
/// assert!(x.clone().mul_mat(&x).approx_eq(&Matrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice of entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "entry count mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a matrix from real row-major entries.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "entry count mismatch");
        Matrix {
            rows,
            cols,
            data: data.iter().map(|&x| Complex::real(x)).collect(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero(0.0) {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(
            v.len(),
            self.cols,
            "dimension mismatch in matrix-vector product"
        );
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Entry-wise complex conjugate (no transpose).
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every entry by `z`.
    pub fn scale(&self, z: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&w| w * z).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// ```
    /// use qb_linalg::Matrix;
    /// let i2 = Matrix::identity(2);
    /// assert_eq!(i2.kron(&i2), Matrix::identity(4));
    /// ```
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.is_zero(0.0) {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `√Σ|aᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Entry-wise approximate equality with tolerance `tol` per entry.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when `A†A ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square()
            && self
                .adjoint()
                .mul_mat(self)
                .approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Returns `true` when `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Commutator `AB − BA`.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not square with equal dimension.
    pub fn commutator(&self, other: &Matrix) -> Matrix {
        self.mul_mat(other) - other.mul_mat(self)
    }

    /// Builds the permutation matrix sending basis vector `i` to `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn permutation(perm: &[usize]) -> Matrix {
        let n = perm.len();
        let mut seen = vec![false; n];
        let mut m = Matrix::zeros(n, n);
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
            m[(p, i)] = Complex::ONE;
        }
        m
    }

    // --- Standard gate matrices -------------------------------------------

    /// Pauli X.
    pub fn pauli_x() -> Matrix {
        Matrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    /// Pauli Y.
    pub fn pauli_y() -> Matrix {
        Matrix::from_rows(
            2,
            2,
            &[Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO],
        )
    }

    /// Pauli Z.
    pub fn pauli_z() -> Matrix {
        Matrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    /// Hadamard gate.
    pub fn hadamard() -> Matrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Matrix::from_real(2, 2, &[s, s, s, -s])
    }

    /// Phase gate `diag(1, e^{iθ})`.
    pub fn phase(theta: f64) -> Matrix {
        Matrix::from_rows(
            2,
            2,
            &[
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_polar(1.0, theta),
            ],
        )
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for Matrix {
    type Output = Matrix;
    fn add(self, rhs: Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for Matrix {
    type Output = Matrix;
    fn sub(self, rhs: Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Matrix) -> Matrix {
        self.mul_mat(&rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:.3}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = Matrix::hadamard();
        let i = Matrix::identity(2);
        assert!(h.mul_mat(&i).approx_eq(&h, 1e-12));
        assert!(i.mul_mat(&h).approx_eq(&h, 1e-12));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [Matrix::pauli_x(), Matrix::pauli_y(), Matrix::pauli_z()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
        }
        assert!(Matrix::hadamard().is_unitary(1e-12));
    }

    #[test]
    fn pauli_algebra() {
        let x = Matrix::pauli_x();
        let y = Matrix::pauli_y();
        let z = Matrix::pauli_z();
        // XY = iZ
        assert!(x.mul_mat(&y).approx_eq(&z.scale(Complex::I), 1e-12));
        // {X, Z} = 0
        let anti = x.mul_mat(&z) + z.mul_mat(&x);
        assert!(anti.approx_eq(&Matrix::zeros(2, 2), 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = Matrix::pauli_x();
        let i = Matrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.rows(), 4);
        // X⊗I maps |00> -> |10>, i.e. column 0 has a 1 in row 2.
        assert_eq!(xi[(2, 0)], Complex::ONE);
        assert_eq!(xi[(0, 0)], Complex::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        let a = Matrix::hadamard();
        let b = Matrix::pauli_x();
        let c = Matrix::pauli_z();
        let d = Matrix::phase(0.7);
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).mul_mat(&c.kron(&d));
        let rhs = a.mul_mat(&c).kron(&b.mul_mat(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_of_kron_is_product_of_traces() {
        let a = Matrix::phase(0.3);
        let b = Matrix::hadamard();
        let t = a.kron(&b).trace();
        let expect = a.trace() * b.trace();
        assert!(t.approx_eq(expect, 1e-12));
    }

    #[test]
    fn permutation_matrix_round_trip() {
        let p = Matrix::permutation(&[2, 0, 1]);
        let v = vec![Complex::real(1.0), Complex::real(2.0), Complex::real(3.0)];
        let out = p.mul_vec(&v);
        // basis 0 -> 2, 1 -> 0, 2 -> 1
        assert_eq!(out[2], Complex::real(1.0));
        assert_eq!(out[0], Complex::real(2.0));
        assert_eq!(out[1], Complex::real(3.0));
        assert!(p.is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_validates() {
        let _ = Matrix::permutation(&[0, 0, 1]);
    }

    #[test]
    fn commutator_of_commuting_is_zero() {
        let z = Matrix::pauli_z();
        let p = Matrix::phase(1.1);
        assert!(z.commutator(&p).frobenius_norm() < 1e-12);
        let x = Matrix::pauli_x();
        assert!(z.commutator(&x).frobenius_norm() > 1.0);
    }

    #[test]
    fn mul_vec_matches_mul_mat() {
        let h = Matrix::hadamard();
        let v = vec![Complex::ONE, Complex::ZERO];
        let got = h.mul_vec(&v);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(got[0].approx_eq(Complex::real(s), 1e-12));
        assert!(got[1].approx_eq(Complex::real(s), 1e-12));
    }
}
