//! # qb-linalg
//!
//! Dense complex linear algebra sized for few-qubit quantum semantics.
//!
//! This crate is the numeric substrate of the QBorrow reproduction: the
//! denotational semantics of quantum programs (density operators, quantum
//! operations, superoperators) is expressed over [`Complex`] scalars and
//! dense [`Matrix`] values. It is intentionally dependency-free and small —
//! the exhaustive checkers only ever touch systems of at most a handful of
//! qubits, where dense algebra is both the simplest and the most auditable
//! representation.
//!
//! # Examples
//!
//! ```
//! use qb_linalg::{Complex, Matrix};
//!
//! // Build the Bell state (|00> + |11>)/√2 via H ⊗ I then CNOT.
//! let h = Matrix::hadamard().kron(&Matrix::identity(2));
//! let cnot = Matrix::permutation(&[0, 1, 3, 2]);
//! let mut v = vec![Complex::ZERO; 4];
//! v[0] = Complex::ONE;
//! let bell = cnot.mul_vec(&h.mul_vec(&v));
//! assert!(bell[0].approx_eq(Complex::real(1.0 / 2f64.sqrt()), 1e-12));
//! assert!(bell[3].approx_eq(Complex::real(1.0 / 2f64.sqrt()), 1e-12));
//! ```

mod complex;
mod matrix;

pub use complex::Complex;
pub use matrix::Matrix;

#[cfg(test)]
mod randomized {
    use super::*;
    use qb_testutil::Rng;

    const CASES: usize = 64;

    fn rand_complex(rng: &mut Rng) -> Complex {
        Complex::new(
            rng.gen_f64_range(-10.0, 10.0),
            rng.gen_f64_range(-10.0, 10.0),
        )
    }

    fn rand_matrix(rng: &mut Rng, n: usize) -> Matrix {
        let data: Vec<Complex> = (0..n * n).map(|_| rand_complex(rng)).collect();
        Matrix::from_rows(n, n, &data)
    }

    #[test]
    fn complex_mul_commutes_and_associates() {
        let mut rng = Rng::new(0x11A1);
        for _ in 0..CASES {
            let (a, b, c) = (
                rand_complex(&mut rng),
                rand_complex(&mut rng),
                rand_complex(&mut rng),
            );
            assert!((a * b).approx_eq(b * a, 1e-9));
            assert!(((a * b) * c).approx_eq(a * (b * c), 1e-6));
        }
    }

    #[test]
    fn conj_is_involution() {
        let mut rng = Rng::new(0x11A2);
        for _ in 0..CASES {
            let a = rand_complex(&mut rng);
            assert_eq!(a.conj().conj(), a);
        }
    }

    #[test]
    fn adjoint_reverses_products() {
        let mut rng = Rng::new(0x11A3);
        for _ in 0..CASES {
            let a = rand_matrix(&mut rng, 3);
            let b = rand_matrix(&mut rng, 3);
            let lhs = a.mul_mat(&b).adjoint();
            let rhs = b.adjoint().mul_mat(&a.adjoint());
            assert!(lhs.approx_eq(&rhs, 1e-6));
        }
    }

    #[test]
    fn trace_is_linear_and_cyclic() {
        let mut rng = Rng::new(0x11A4);
        for _ in 0..CASES {
            let a = rand_matrix(&mut rng, 3);
            let b = rand_matrix(&mut rng, 3);
            assert!((a.clone() + b.clone())
                .trace()
                .approx_eq(a.trace() + b.trace(), 1e-6));
            assert!(a.mul_mat(&b).trace().approx_eq(b.mul_mat(&a).trace(), 1e-6));
        }
    }

    #[test]
    fn kron_associates() {
        let mut rng = Rng::new(0x11A5);
        for _ in 0..CASES {
            let a = rand_matrix(&mut rng, 2);
            let b = rand_matrix(&mut rng, 2);
            let c = rand_matrix(&mut rng, 2);
            let lhs = a.kron(&b).kron(&c);
            let rhs = a.kron(&b.kron(&c));
            assert!(lhs.approx_eq(&rhs, 1e-6));
        }
    }
}
