//! # qb-linalg
//!
//! Dense complex linear algebra sized for few-qubit quantum semantics.
//!
//! This crate is the numeric substrate of the QBorrow reproduction: the
//! denotational semantics of quantum programs (density operators, quantum
//! operations, superoperators) is expressed over [`Complex`] scalars and
//! dense [`Matrix`] values. It is intentionally dependency-free and small —
//! the exhaustive checkers only ever touch systems of at most a handful of
//! qubits, where dense algebra is both the simplest and the most auditable
//! representation.
//!
//! # Examples
//!
//! ```
//! use qb_linalg::{Complex, Matrix};
//!
//! // Build the Bell state (|00> + |11>)/√2 via H ⊗ I then CNOT.
//! let h = Matrix::hadamard().kron(&Matrix::identity(2));
//! let cnot = Matrix::permutation(&[0, 1, 3, 2]);
//! let mut v = vec![Complex::ZERO; 4];
//! v[0] = Complex::ONE;
//! let bell = cnot.mul_vec(&h.mul_vec(&v));
//! assert!(bell[0].approx_eq(Complex::real(1.0 / 2f64.sqrt()), 1e-12));
//! assert!(bell[3].approx_eq(Complex::real(1.0 / 2f64.sqrt()), 1e-12));
//! ```

mod complex;
mod matrix;

pub use complex::Complex;
pub use matrix::Matrix;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_complex() -> impl Strategy<Value = Complex> {
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
    }

    fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(arb_complex(), n * n)
            .prop_map(move |data| Matrix::from_rows(n, n, &data))
    }

    proptest! {
        #[test]
        fn complex_mul_commutes(a in arb_complex(), b in arb_complex()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-9));
        }

        #[test]
        fn complex_mul_associates(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
            prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-6));
        }

        #[test]
        fn conj_is_involution(a in arb_complex()) {
            prop_assert_eq!(a.conj().conj(), a);
        }

        #[test]
        fn adjoint_reverses_products(a in arb_matrix(3), b in arb_matrix(3)) {
            let lhs = a.mul_mat(&b).adjoint();
            let rhs = b.adjoint().mul_mat(&a.adjoint());
            prop_assert!(lhs.approx_eq(&rhs, 1e-6));
        }

        #[test]
        fn trace_is_linear(a in arb_matrix(3), b in arb_matrix(3)) {
            let lhs = (a.clone() + b.clone()).trace();
            let rhs = a.trace() + b.trace();
            prop_assert!(lhs.approx_eq(rhs, 1e-6));
        }

        #[test]
        fn trace_cyclic(a in arb_matrix(3), b in arb_matrix(3)) {
            let lhs = a.mul_mat(&b).trace();
            let rhs = b.mul_mat(&a).trace();
            prop_assert!(lhs.approx_eq(rhs, 1e-6));
        }

        #[test]
        fn kron_associates(a in arb_matrix(2), b in arb_matrix(2), c in arb_matrix(2)) {
            let lhs = a.kron(&b).kron(&c);
            let rhs = a.kron(&b.kron(&c));
            prop_assert!(lhs.approx_eq(&rhs, 1e-6));
        }
    }
}
