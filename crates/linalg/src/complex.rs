//! A minimal double-precision complex number type.
//!
//! The simulator substrate deliberately avoids external numeric crates; this
//! module provides exactly the operations the quantum semantics needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use qb_linalg::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the complex number `r·e^{iθ}`.
    ///
    /// ```
    /// use qb_linalg::Complex;
    /// let z = Complex::from_polar(1.0, std::f64::consts::PI);
    /// assert!((z - Complex::new(-1.0, 0.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is (numerically) zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "inverse of zero complex number");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` when both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// Returns `true` when `|z| ≤ tol`.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z · w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let c = (a / b) * b;
        assert!(c.approx_eq(a, 1e-12));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((a * a.conj()).approx_eq(Complex::real(25.0), 1e-12));
    }

    #[test]
    fn polar() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::new(0.0, 2.0), 1e-12));
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }
}
