//! Tokens and source positions for the QBorrow surface language.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds, mirroring the ANTLR grammar of the paper's §10.3
/// (plus the documented gate extensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `let`
    Let,
    /// `borrow`
    Borrow,
    /// `borrow@`
    BorrowAt,
    /// `alloc`
    Alloc,
    /// `release`
    Release,
    /// `for`
    For,
    /// `to`
    To,
    /// `X`
    GateX,
    /// `CNOT`
    GateCnot,
    /// `CCNOT`
    GateCcnot,
    /// `MCX` (extension)
    GateMcx,
    /// `H` (extension)
    GateH,
    /// `Z` (extension)
    GateZ,
    /// `SWAP` (extension)
    GateSwap,
    /// An identifier.
    Ident(String),
    /// An unsigned integer literal.
    Number(i64),
    /// `=`
    Equals,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short printable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Let => "'let'".into(),
            TokenKind::Borrow => "'borrow'".into(),
            TokenKind::BorrowAt => "'borrow@'".into(),
            TokenKind::Alloc => "'alloc'".into(),
            TokenKind::Release => "'release'".into(),
            TokenKind::For => "'for'".into(),
            TokenKind::To => "'to'".into(),
            TokenKind::GateX => "'X'".into(),
            TokenKind::GateCnot => "'CNOT'".into(),
            TokenKind::GateCcnot => "'CCNOT'".into(),
            TokenKind::GateMcx => "'MCX'".into(),
            TokenKind::GateH => "'H'".into(),
            TokenKind::GateZ => "'Z'".into(),
            TokenKind::GateSwap => "'SWAP'".into(),
            TokenKind::Ident(name) => format!("identifier '{name}'"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Equals => "'='".into(),
            TokenKind::Semi => "';'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::LBracket => "'['".into(),
            TokenKind::RBracket => "']'".into(),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::LBrace => "'{'".into(),
            TokenKind::RBrace => "'}'".into(),
            TokenKind::Plus => "'+'".into(),
            TokenKind::Minus => "'-'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and payload, for identifiers/numbers).
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}
