//! # qb-lang
//!
//! The QBorrow quantum programming language (paper §4 and §10): surface
//! syntax, elaboration, the core calculus with `borrow`/`release`, the
//! idle-qubit analysis of Fig. 4.2, and the set-of-operations denotational
//! semantics of Fig. 4.3.
//!
//! ## Two layers
//!
//! * **Surface language** — the restricted language the paper implements
//!   (§10.3's ANTLR grammar): `let`, `borrow`, `borrow@`, `alloc`,
//!   `release`, gate statements and `for` loops. [`parse`] +
//!   [`elaborate`] turn source text into a flat circuit with per-qubit
//!   borrow metadata, ready for the `qb-core` verifier. Extensions over
//!   the paper's grammar (`MCX`, `H`, `Z`, `SWAP` gates) are documented in
//!   [`ast::GateKind`].
//! * **Core calculus** — QWhile + `borrow a; S; release a`
//!   ([`CoreStmt`]), with measurement-guarded `if`/`while`. [`denote`]
//!   evaluates the Fig. 4.3 semantics: a program means a *set* of quantum
//!   operations, nondeterministic over the instantiation of borrowed
//!   placeholders with [`idle`] qubits.
//!
//! # Examples
//!
//! ```
//! use qb_lang::{elaborate, parse};
//!
//! let source = "
//!     let n = 3;
//!     borrow@ q[n];   // trusted dirty qubits, not verified
//!     borrow a;       // dirty qubit that must be safely uncomputed
//!     CCNOT[q[1], q[2], a];
//!     CCNOT[a, q[2], q[3]];
//!     CCNOT[q[1], q[2], a];
//!     CCNOT[a, q[2], q[3]];
//!     release a;
//! ";
//! let elaborated = elaborate(&parse(source).unwrap()).unwrap();
//! assert_eq!(elaborated.num_qubits(), 4);
//! assert_eq!(elaborated.qubits_to_verify(), vec![3]); // the qubit 'a'
//! assert_eq!(elaborated.circuit.size(), 4);
//! ```

pub mod ast;
mod core_ast;
mod diff;
mod elaborate;
mod error;
mod idle;
mod lexer;
mod parser;
mod semantics;
mod token;

pub use core_ast::{CoreGate, CoreStmt, QubitRef};
pub use diff::{gate_common_prefix, gate_diff, structural_hash, GateDiff};
pub use elaborate::{elaborate, ElaboratedProgram, QubitKind, RegisterInfo};
pub use error::{LangError, Phase};
pub use idle::idle;
pub use lexer::lex;
pub use parser::parse;
pub use semantics::{denote, Denotation, SemanticsOptions};
pub use token::{Span, Token, TokenKind};

/// The adder benchmark program of the paper's Fig. 6.2 / §10.4,
/// parameterised by the register width `n` (the paper uses `n = 50`).
///
/// The program borrows `q[1..n]` as trusted dirty qubits (`borrow@`,
/// verification skipped) and `a[1..n−1]` as dirty qubits whose safe
/// uncomputation the verifier must establish.
pub fn adder_source(n: usize) -> String {
    format!(
        "// adder.qbr\n\
         let n = {n}; // number of qubits\n\
         borrow@ q[n]; // skip verification\n\
         borrow a[n - 1]; // dirty qubits\n\
         CNOT[a[n - 1], q[n]];\n\
         for i = (n - 1) to 2 {{\n\
           CNOT[q[i], a[i]];\n\
           X[q[i]];\n\
           CCNOT[a[i - 1], q[i], a[i]];\n\
         }}\n\
         CNOT[q[1], a[1]];\n\
         for i = 2 to (n - 1) {{\n\
           CCNOT[a[i - 1], q[i], a[i]];\n\
         }}\n\
         CNOT[a[n - 1], q[n]];\n\
         X[q[n]];\n\
         \n\
         // reverse the circuit to uncompute\n\
         for i = (n - 1) to 2 {{\n\
           CCNOT[a[i - 1], q[i], a[i]];\n\
         }}\n\
         CNOT[q[1], a[1]];\n\
         for i = 2 to (n - 1) {{\n\
           CCNOT[a[i - 1], q[i], a[i]];\n\
           X[q[i]];\n\
           CNOT[q[i], a[i]];\n\
         }}\n"
    )
}

/// The multi-controlled-NOT benchmark program of the paper's §10.4,
/// parameterised by `m` (the paper uses `m = 1750`, giving a
/// `(2m−1)`-controlled NOT on `n = 2m − 1` control qubits with one
/// borrowed dirty ancilla and `16(m−2)` Toffoli gates).
///
/// # Erratum reproduced faithfully to Gidney's construction
///
/// The paper's appendix prints the first-part ladder gates as
/// `CCNOT[q[2i−1], q[2i+1], q[2i+2]]`, whose two odd-indexed controls do
/// not chain the partial products deposited by `CCNOT[q[1], q[3], q[4]]`;
/// as printed, the circuit collapses to the identity. The construction the
/// figure cites (Gidney, *Constructing Large Controlled Nots*) chains
/// through the even work qubits, i.e. `CCNOT[q[2i], q[2i+1], q[2i+2]]`,
/// which is what this generator emits (the second-part ladder is correct
/// as printed). Gate count is unchanged: `16(m−2)` Toffolis.
///
/// # Panics
///
/// Panics for `m < 4`: with the auto-direction `for` semantics required
/// by `adder.qbr`, the ladder loop `for i = (m-2) to 2` would iterate
/// *upwards* for `m = 3` and reference out-of-range qubits. The paper's
/// evaluation uses `m ≥ 250`, where the loops are unambiguous.
pub fn mcx_source(m: usize) -> String {
    assert!(
        m >= 4,
        "the mcx benchmark requires m >= 4 (paper uses m >= 250)"
    );
    let ladder_a = "for i = (m - 2) to 2 {\n  CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];\n}\n\
                    CCNOT[q[1], q[3], q[4]];\n\
                    for i = 2 to (m - 2) {\n  CCNOT[q[2 * i], q[2 * i + 1], q[2 * i + 2]];\n}\n";
    let ladder_b = "for i = (m - 1) to 3 {\n  CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];\n}\n\
                    CCNOT[q[2], q[4], q[5]];\n\
                    for i = 3 to (m - 1) {\n  CCNOT[q[2 * i - 1], q[2 * i], q[2 * i + 1]];\n}\n";
    format!(
        "// mcx.qbr\n\
         let m = {m};\n\
         let n = m + (m - 1); // n-controlled NOT gate\n\
         borrow@ q[n];\n\
         borrow@ t;\n\
         borrow anc;\n\
         \n\
         // first part\n\
         CCNOT[q[n - 1], q[n], anc];\n\
         {ladder_a}\
         CCNOT[q[n - 1], q[n], anc];\n\
         {ladder_a}\
         \n\
         // second part\n\
         CCNOT[q[n], anc, t];\n\
         {ladder_b}\
         CCNOT[q[n], anc, t];\n\
         {ladder_b}\
         \n\
         // third part\n\
         CCNOT[q[n - 1], q[n], anc];\n\
         {ladder_a}\
         CCNOT[q[n - 1], q[n], anc];\n\
         {ladder_a}\
         \n\
         // fourth part\n\
         CCNOT[q[n], anc, t];\n\
         {ladder_b}\
         CCNOT[q[n], anc, t];\n\
         release anc;\n\
         {ladder_b}"
    )
}

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn adder_program_elaborates() {
        let e = elaborate(&parse(&adder_source(8)).unwrap()).unwrap();
        // q[1..8] + a[1..7]
        assert_eq!(e.num_qubits(), 15);
        // a-qubits are the verification targets.
        assert_eq!(e.qubits_to_verify(), (8..15).collect::<Vec<_>>());
        assert!(e.circuit.is_classical());
        // Gate count: forward = 1 + 3(n−2) + 1 + (n−2) + 2,
        // reverse = (n−2) + 1 + 3(n−2).
        let n = 8;
        let expected = 1 + 3 * (n - 2) + 1 + (n - 2) + 2 + (n - 2) + 1 + 3 * (n - 2);
        assert_eq!(e.circuit.size(), expected);
    }

    #[test]
    fn adder_is_identity_on_dirty_qubits_classically() {
        use qb_circuit::{simulate_classical, BitState};
        let n = 6;
        let e = elaborate(&parse(&adder_source(n)).unwrap()).unwrap();
        let width = e.num_qubits();
        for trial in 0..(1u64 << width) {
            let input = BitState::from_value(width, trial);
            let output = simulate_classical(&e.circuit, &input).unwrap();
            // a-qubits (indices n..width) and q[1..n-1] are restored.
            for a in n..width {
                assert_eq!(output.get(a), input.get(a), "dirty qubit {a} not restored");
            }
            for q in 0..n - 1 {
                assert_eq!(output.get(q), input.get(q));
            }
            // q[n] := q[n] ⊕ carry ⊕ 1 where carry is the carry-out of
            // s + (11…1)₂ with s = q[1..n−1] (cf. §6.2 of the paper).
            let s: u64 = (0..n - 1).map(|i| (input.get(i) as u64) << i).sum();
            let sum = s + ((1 << (n - 1)) - 1);
            let carry = (sum >> (n - 1)) & 1 == 1;
            let expected = input.get(n - 1) ^ carry ^ true;
            assert_eq!(output.get(n - 1), expected, "input {trial:b}");
        }
    }

    #[test]
    fn mcx_program_elaborates_with_expected_counts() {
        let m = 5;
        let e = elaborate(&parse(&mcx_source(m)).unwrap()).unwrap();
        // q[1..2m-1], t, anc.
        assert_eq!(e.num_qubits(), 2 * m - 1 + 2);
        // Only `anc` requires verification (q and t are borrow@).
        assert_eq!(e.qubits_to_verify(), vec![2 * m]);
        // The paper reports 16(m−2) Toffoli gates.
        assert_eq!(e.circuit.size(), 16 * (m - 2));
        assert!(e.circuit.is_classical());
    }

    #[test]
    fn mcx_program_implements_multi_controlled_not() {
        use qb_circuit::{simulate_classical, BitState};
        let m = 4;
        let e = elaborate(&parse(&mcx_source(m)).unwrap()).unwrap();
        let width = e.num_qubits();
        let n_controls = 2 * m - 1;
        let t_index = n_controls; // t follows q[1..n]
        let anc_index = n_controls + 1;
        for trial in 0..(1u64 << width) {
            let input = BitState::from_value(width, trial);
            let output = simulate_classical(&e.circuit, &input).unwrap();
            let all_controls = (0..n_controls).all(|q| input.get(q));
            // Controls and the ancilla are restored.
            for q in 0..n_controls {
                assert_eq!(output.get(q), input.get(q));
            }
            assert_eq!(output.get(anc_index), input.get(anc_index));
            // Target flips exactly when all controls are 1.
            assert_eq!(output.get(t_index), input.get(t_index) ^ all_controls);
        }
    }

    #[test]
    fn stuck_program_has_empty_denotation() {
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Seq(vec![
                CoreStmt::Gate(CoreGate::Cnot(
                    QubitRef::Concrete(0),
                    QubitRef::Placeholder("a".into()),
                )),
                CoreStmt::Gate(CoreGate::X(QubitRef::Concrete(1))),
            ])),
        };
        let d = denote(&s, 2, &SemanticsOptions::default()).unwrap();
        assert!(d.is_stuck());
    }
}
