//! Elaboration: from surface AST to a flat gate-level program.
//!
//! Elaboration resolves `let` constants, unrolls `for` loops (downwards
//! when the start bound exceeds the end bound, as the paper's `adder.qbr`
//! requires), allocates physical qubit indices to registers, tracks
//! borrow/alloc/release lifetimes, and validates every gate operand. The
//! result pairs a `qb_circuit::Circuit` with per-qubit metadata telling the
//! verifier which qubits are *borrowed dirty* (must be proven safely
//! uncomputed), *trusted dirty* (`borrow@`, verification skipped) or
//! *clean* (`alloc`, initially `|0⟩`).

use crate::ast::{Expr, GateKind, Program, RegRef, Stmt};
use crate::error::{LangError, Phase};
use crate::token::Span;
use qb_circuit::{Circuit, Gate};
use std::collections::HashMap;

/// How a register's qubits were obtained (paper §4 and §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QubitKind {
    /// `borrow` — dirty qubits whose safe uncomputation must be verified.
    BorrowedDirty,
    /// `borrow@` — dirty qubits with verification explicitly skipped.
    TrustedDirty,
    /// `alloc` — clean qubits starting in `|0⟩`.
    Clean,
}

/// Metadata for one declared register.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterInfo {
    /// Register name as written in the source.
    pub name: String,
    /// Borrow discipline of the register's qubits.
    pub kind: QubitKind,
    /// First physical qubit index.
    pub base: usize,
    /// Number of qubits (`None` for scalar registers used without
    /// indexing).
    pub size: Option<usize>,
    /// Gate index at which the register became live.
    pub live_from: usize,
    /// Gate index at which the register was released (`None` = live to the
    /// end of the program).
    pub released_at: Option<usize>,
}

impl RegisterInfo {
    /// Number of physical qubits (1 for scalars).
    pub fn width(&self) -> usize {
        self.size.unwrap_or(1)
    }

    /// The physical qubit indices of this register.
    pub fn qubits(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.width()
    }
}

/// A fully elaborated program: a circuit plus qubit/register metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ElaboratedProgram {
    /// The flat gate-level circuit.
    pub circuit: Circuit,
    /// Declared registers in declaration order.
    pub registers: Vec<RegisterInfo>,
    /// Source-level name of each physical qubit (e.g. `a[3]` or `t`).
    pub qubit_names: Vec<String>,
    /// Borrow discipline of each physical qubit.
    pub qubit_kinds: Vec<QubitKind>,
}

impl ElaboratedProgram {
    /// Total number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// The qubits declared with `borrow` (not `borrow@`): the dirty qubits
    /// whose safe uncomputation the verifier must establish.
    pub fn qubits_to_verify(&self) -> Vec<usize> {
        (0..self.num_qubits())
            .filter(|&q| self.qubit_kinds[q] == QubitKind::BorrowedDirty)
            .collect()
    }

    /// The clean (`alloc`) qubits, which start in `|0⟩`.
    pub fn clean_qubits(&self) -> Vec<usize> {
        (0..self.num_qubits())
            .filter(|&q| self.qubit_kinds[q] == QubitKind::Clean)
            .collect()
    }

    /// The display name of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn qubit_name(&self, q: usize) -> &str {
        &self.qubit_names[q]
    }
}

/// Elaborates a parsed program.
///
/// # Errors
///
/// Reports the first violation: undefined names, duplicate declarations,
/// out-of-range indices, use after release, arity/operand errors, or
/// arithmetic overflow in constant expressions.
///
/// # Examples
///
/// ```
/// use qb_lang::{parse, elaborate};
/// let p = parse("let n = 3; borrow a[n]; X[a[1]]; CNOT[a[1], a[3]];").unwrap();
/// let e = elaborate(&p).unwrap();
/// assert_eq!(e.num_qubits(), 3);
/// assert_eq!(e.circuit.size(), 2);
/// assert_eq!(e.qubits_to_verify(), vec![0, 1, 2]);
/// ```
pub fn elaborate(program: &Program) -> Result<ElaboratedProgram, LangError> {
    let mut ctx = Context {
        scopes: vec![HashMap::new()],
        registers: Vec::new(),
        reg_index: HashMap::new(),
        gates: Vec::new(),
        qubit_names: Vec::new(),
        qubit_kinds: Vec::new(),
    };
    ctx.block(&program.statements)?;
    let mut circuit = Circuit::new(ctx.qubit_names.len());
    for (gate, span) in ctx.gates {
        circuit
            .try_push(gate)
            .map_err(|msg| LangError::at(Phase::Elaborate, span, msg))?;
    }
    Ok(ElaboratedProgram {
        circuit,
        registers: ctx.registers,
        qubit_names: ctx.qubit_names,
        qubit_kinds: ctx.qubit_kinds,
    })
}

struct Context {
    /// Constant scopes (innermost last).
    scopes: Vec<HashMap<String, i64>>,
    registers: Vec<RegisterInfo>,
    reg_index: HashMap<String, usize>,
    gates: Vec<(Gate, Span)>,
    qubit_names: Vec<String>,
    qubit_kinds: Vec<QubitKind>,
}

impl Context {
    fn block(&mut self, statements: &[Stmt]) -> Result<(), LangError> {
        for stmt in statements {
            self.statement(stmt)?;
        }
        Ok(())
    }

    fn statement(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let { name, value, span } => {
                let v = self.eval(value)?;
                let scope = self.scopes.last_mut().expect("at least one scope");
                if scope.contains_key(name) {
                    return Err(LangError::at(
                        Phase::Elaborate,
                        *span,
                        format!("'{name}' is already defined in this scope"),
                    ));
                }
                scope.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Borrow { reg, span } => self.declare(reg, QubitKind::BorrowedDirty, *span),
            Stmt::BorrowTrusted { reg, span } => self.declare(reg, QubitKind::TrustedDirty, *span),
            Stmt::Alloc { reg, span } => self.declare(reg, QubitKind::Clean, *span),
            Stmt::Release { name, span } => {
                let idx = *self.reg_index.get(name).ok_or_else(|| {
                    LangError::at(
                        Phase::Elaborate,
                        *span,
                        format!("release of undeclared register '{name}'"),
                    )
                })?;
                let reg = &mut self.registers[idx];
                if reg.released_at.is_some() {
                    return Err(LangError::at(
                        Phase::Elaborate,
                        *span,
                        format!("register '{name}' was already released"),
                    ));
                }
                reg.released_at = Some(self.gates.len());
                Ok(())
            }
            Stmt::Gate { kind, args, span } => {
                let qubits: Vec<usize> = args
                    .iter()
                    .map(|r| self.resolve_qubit(r))
                    .collect::<Result<_, _>>()?;
                let gate = match kind {
                    GateKind::X => Gate::X(qubits[0]),
                    GateKind::H => Gate::H(qubits[0]),
                    GateKind::Z => Gate::Z(qubits[0]),
                    GateKind::Cnot => Gate::Cnot {
                        c: qubits[0],
                        t: qubits[1],
                    },
                    GateKind::Swap => Gate::Swap(qubits[0], qubits[1]),
                    GateKind::Ccnot => Gate::Toffoli {
                        c1: qubits[0],
                        c2: qubits[1],
                        t: qubits[2],
                    },
                    GateKind::Mcx => Gate::Mcx {
                        controls: qubits[..qubits.len() - 1].to_vec(),
                        target: qubits[qubits.len() - 1],
                    },
                };
                self.gates.push((gate, *span));
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
                span: _,
            } => {
                let s = self.eval(start)?;
                let e = self.eval(end)?;
                let values: Vec<i64> = if s <= e {
                    (s..=e).collect()
                } else {
                    (e..=s).rev().collect()
                };
                for v in values {
                    self.scopes.push(HashMap::from([(var.clone(), v)]));
                    let result = self.block(body);
                    self.scopes.pop();
                    result?;
                }
                Ok(())
            }
        }
    }

    fn declare(&mut self, reg: &RegRef, kind: QubitKind, span: Span) -> Result<(), LangError> {
        if self.reg_index.contains_key(&reg.name) {
            return Err(LangError::at(
                Phase::Elaborate,
                span,
                format!("register '{}' is already declared", reg.name),
            ));
        }
        if self.lookup(&reg.name).is_some() {
            return Err(LangError::at(
                Phase::Elaborate,
                span,
                format!("'{}' is already a constant", reg.name),
            ));
        }
        let size = match &reg.index {
            None => None,
            Some(expr) => {
                let v = self.eval(expr)?;
                if v < 1 {
                    return Err(LangError::at(
                        Phase::Elaborate,
                        span,
                        format!("register '{}' must have positive size, got {v}", reg.name),
                    ));
                }
                Some(v as usize)
            }
        };
        let base = self.qubit_names.len();
        let width = size.unwrap_or(1);
        for i in 0..width {
            let name = match size {
                None => reg.name.clone(),
                Some(_) => format!("{}[{}]", reg.name, i + 1),
            };
            self.qubit_names.push(name);
            self.qubit_kinds.push(kind);
        }
        self.reg_index
            .insert(reg.name.clone(), self.registers.len());
        self.registers.push(RegisterInfo {
            name: reg.name.clone(),
            kind,
            base,
            size,
            live_from: self.gates.len(),
            released_at: None,
        });
        Ok(())
    }

    fn resolve_qubit(&mut self, r: &RegRef) -> Result<usize, LangError> {
        let idx = *self.reg_index.get(&r.name).ok_or_else(|| {
            LangError::at(
                Phase::Elaborate,
                r.span,
                format!("undeclared register '{}'", r.name),
            )
        })?;
        // Evaluate the index before borrowing register info mutably.
        let index_value = match &r.index {
            None => None,
            Some(e) => Some(self.eval(e)?),
        };
        let gate_pos = self.gates.len();
        let reg = &self.registers[idx];
        if let Some(at) = reg.released_at {
            if gate_pos >= at {
                return Err(LangError::at(
                    Phase::Elaborate,
                    r.span,
                    format!("register '{}' is used after release", r.name),
                ));
            }
        }
        match (reg.size, index_value) {
            (None, None) => Ok(reg.base),
            (None, Some(_)) => Err(LangError::at(
                Phase::Elaborate,
                r.span,
                format!("register '{}' is scalar and cannot be indexed", r.name),
            )),
            (Some(_), None) => Err(LangError::at(
                Phase::Elaborate,
                r.span,
                format!("register '{}' is an array; an index is required", r.name),
            )),
            (Some(size), Some(i)) => {
                if i < 1 || i as usize > size {
                    Err(LangError::at(
                        Phase::Elaborate,
                        r.span,
                        format!(
                            "index {i} out of bounds for register '{}' of size {size} \
                             (indices are 1-based)",
                            r.name
                        ),
                    ))
                } else {
                    Ok(reg.base + i as usize - 1)
                }
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<i64> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn eval(&self, expr: &Expr) -> Result<i64, LangError> {
        match expr {
            Expr::Number(n) => Ok(*n),
            Expr::Var(name, span) => self.lookup(name).ok_or_else(|| {
                LangError::at(
                    Phase::Elaborate,
                    *span,
                    format!("undefined constant '{name}'"),
                )
            }),
            Expr::Neg(e) => self
                .eval(e)?
                .checked_neg()
                .ok_or_else(|| LangError::new(Phase::Elaborate, "arithmetic overflow")),
            Expr::Add(a, b) => self
                .eval(a)?
                .checked_add(self.eval(b)?)
                .ok_or_else(|| LangError::new(Phase::Elaborate, "arithmetic overflow")),
            Expr::Sub(a, b) => self
                .eval(a)?
                .checked_sub(self.eval(b)?)
                .ok_or_else(|| LangError::new(Phase::Elaborate, "arithmetic overflow")),
            Expr::Mul(a, b) => self
                .eval(a)?
                .checked_mul(self.eval(b)?)
                .ok_or_else(|| LangError::new(Phase::Elaborate, "arithmetic overflow")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Result<ElaboratedProgram, LangError> {
        elaborate(&parse(src).unwrap())
    }

    #[test]
    fn allocates_registers_in_order() {
        let e = run("borrow@ q[2]; borrow a; alloc c[2]; X[q[1]]; X[a]; X[c[2]];").unwrap();
        assert_eq!(e.num_qubits(), 5);
        assert_eq!(e.qubit_names, vec!["q[1]", "q[2]", "a", "c[1]", "c[2]"]);
        assert_eq!(e.qubits_to_verify(), vec![2]);
        assert_eq!(e.clean_qubits(), vec![3, 4]);
        assert_eq!(e.circuit.gates(), &[Gate::X(0), Gate::X(2), Gate::X(4)]);
    }

    #[test]
    fn descending_for_loop_unrolls_downwards() {
        let e = run("let n = 4; borrow@ q[n]; for i = (n - 1) to 2 { X[q[i]]; }").unwrap();
        assert_eq!(e.circuit.gates(), &[Gate::X(2), Gate::X(1)]);
    }

    #[test]
    fn ascending_for_loop() {
        let e = run("borrow@ q[4]; for i = 2 to 3 { X[q[i]]; }").unwrap();
        assert_eq!(e.circuit.gates(), &[Gate::X(1), Gate::X(2)]);
    }

    #[test]
    fn loop_variable_is_scoped() {
        assert!(run("borrow@ q[3]; for i = 1 to 2 { X[q[i]]; } X[q[i]];").is_err());
    }

    #[test]
    fn nested_loops_shadow() {
        let e = run("borrow@ q[4]; for i = 1 to 2 { for i = 3 to 4 { X[q[i]]; } }").unwrap();
        assert_eq!(e.circuit.size(), 4);
        assert_eq!(e.circuit.gates()[0], Gate::X(2));
    }

    #[test]
    fn one_based_indexing_is_enforced() {
        assert!(run("borrow a[3]; X[a[0]];").is_err());
        assert!(run("borrow a[3]; X[a[4]];").is_err());
        assert!(run("borrow a[3]; X[a[3]];").is_ok());
    }

    #[test]
    fn scalar_vs_array_usage() {
        assert!(run("borrow t; X[t[1]];").is_err());
        assert!(run("borrow t[2]; X[t];").is_err());
    }

    #[test]
    fn use_after_release_is_rejected() {
        let err = run("borrow anc; X[anc]; release anc; X[anc];").unwrap_err();
        assert!(err.message.contains("after release"));
    }

    #[test]
    fn double_release_is_rejected() {
        assert!(run("borrow anc; release anc; release anc;").is_err());
    }

    #[test]
    fn duplicate_declaration_rejected() {
        assert!(run("borrow a; borrow a;").is_err());
        assert!(run("let a = 1; borrow a;").is_err());
    }

    #[test]
    fn undefined_names_are_reported() {
        assert!(run("X[a];").is_err());
        assert!(run("let x = y + 1;").is_err());
        assert!(run("release ghost;").is_err());
    }

    #[test]
    fn repeated_operands_rejected() {
        let err = run("borrow a[2]; CNOT[a[1], a[1]];").unwrap_err();
        assert!(err.message.contains("repeated"));
    }

    #[test]
    fn lifetimes_are_recorded() {
        let e = run("borrow a; X[a]; X[a]; release a; borrow b; X[b];").unwrap();
        let a = &e.registers[0];
        assert_eq!(a.live_from, 0);
        assert_eq!(a.released_at, Some(2));
        let b = &e.registers[1];
        assert_eq!(b.live_from, 2);
        assert_eq!(b.released_at, None);
    }

    #[test]
    fn mcx_lowering() {
        let e = run("borrow@ q[4]; MCX[q[1], q[2], q[3], q[4]];").unwrap();
        assert_eq!(
            e.circuit.gates()[0],
            Gate::Mcx {
                controls: vec![0, 1, 2],
                target: 3
            }
        );
    }

    #[test]
    fn negative_register_size_rejected() {
        assert!(run("let n = 0; borrow a[n];").is_err());
        assert!(run("borrow a[0 - 2];").is_err());
    }
}
