//! Recursive-descent parser for the QBorrow grammar (paper §10.3).
//!
//! The grammar is LL(1) except for the `reg` production, which needs one
//! token of lookahead after an identifier to distinguish `ID` from
//! `ID '[' expr ']'`.

use crate::ast::{Expr, GateKind, Program, RegRef, Stmt};
use crate::error::{LangError, Phase};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses QBorrow source text into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its position.
///
/// # Examples
///
/// ```
/// use qb_lang::parse;
/// let program = parse("let n = 2;\nborrow a[n];\nX[a[1]];\nrelease a;").unwrap();
/// assert_eq!(program.statements.len(), 4);
/// ```
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, context: &str) -> LangError {
        let t = self.peek();
        LangError::at(
            Phase::Parse,
            t.span,
            format!("{context}, found {}", t.kind.describe()),
        )
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            statements.push(self.statement()?);
        }
        if statements.is_empty() {
            return Err(LangError::at(
                Phase::Parse,
                self.peek().span,
                "a program must contain at least one statement",
            ));
        }
        Ok(Program { statements })
    }

    fn statement(&mut self) -> Result<Stmt, LangError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(&TokenKind::Equals)?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Let { name, value, span })
            }
            TokenKind::Borrow => {
                self.bump();
                let reg = self.reg()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Borrow { reg, span })
            }
            TokenKind::BorrowAt => {
                self.bump();
                let reg = self.reg()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::BorrowTrusted { reg, span })
            }
            TokenKind::Alloc => {
                self.bump();
                let reg = self.reg()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Alloc { reg, span })
            }
            TokenKind::Release => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Release { name, span })
            }
            TokenKind::GateX => self.gate(GateKind::X, span),
            TokenKind::GateCnot => self.gate(GateKind::Cnot, span),
            TokenKind::GateCcnot => self.gate(GateKind::Ccnot, span),
            TokenKind::GateMcx => self.gate(GateKind::Mcx, span),
            TokenKind::GateH => self.gate(GateKind::H, span),
            TokenKind::GateZ => self.gate(GateKind::Z, span),
            TokenKind::GateSwap => self.gate(GateKind::Swap, span),
            TokenKind::For => {
                self.bump();
                let (var, _) = self.ident()?;
                self.expect(&TokenKind::Equals)?;
                let start = self.expr()?;
                self.expect(&TokenKind::To)?;
                let end = self.expr()?;
                self.expect(&TokenKind::LBrace)?;
                let mut body = Vec::new();
                while self.peek().kind != TokenKind::RBrace {
                    if self.peek().kind == TokenKind::Eof {
                        return Err(self.unexpected("expected '}' to close the for body"));
                    }
                    body.push(self.statement()?);
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                    span,
                })
            }
            _ => Err(self.unexpected("expected a statement")),
        }
    }

    fn gate(&mut self, kind: GateKind, span: Span) -> Result<Stmt, LangError> {
        self.bump(); // the gate keyword
        self.expect(&TokenKind::LBracket)?;
        let mut args = vec![self.reg()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            args.push(self.reg()?);
        }
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Semi)?;
        if let Some(expected) = kind.arity() {
            if args.len() != expected {
                return Err(LangError::at(
                    Phase::Parse,
                    span,
                    format!(
                        "{} takes {} operand(s), found {}",
                        kind.keyword(),
                        expected,
                        args.len()
                    ),
                ));
            }
        } else if args.len() < 2 {
            return Err(LangError::at(
                Phase::Parse,
                span,
                "MCX needs at least one control and a target",
            ));
        }
        Ok(Stmt::Gate { kind, args, span })
    }

    fn reg(&mut self) -> Result<RegRef, LangError> {
        let (name, span) = self.ident()?;
        let index = if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let e = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Some(e)
        } else {
            None
        };
        Ok(RegRef { name, index, span })
    }

    /// expr: term (('+'|'-') term)* with unary sign before the first term.
    fn expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = match self.peek().kind {
            TokenKind::Minus => {
                self.bump();
                Expr::Neg(Box::new(self.term()?))
            }
            TokenKind::Plus => {
                self.bump();
                self.term()?
            }
            _ => self.term()?,
        };
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                TokenKind::Minus => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// term: factor ('*' factor)*
    fn term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.factor()?;
        while self.peek().kind == TokenKind::Star {
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor: NUMBER | ID | '(' expr ')'
    fn factor(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok(Expr::Var(name, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            _ => Err(self.unexpected("expected a number, identifier or '('")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_adder_preamble() {
        let src = "\
            let n = 50;\n\
            borrow@ q[n];\n\
            borrow a[n - 1];\n\
            CNOT[a[n - 1], q[n]];\n\
            for i = (n - 1) to 2 {\n\
                CNOT[q[i], a[i]];\n\
                X[q[i]];\n\
                CCNOT[a[i - 1], q[i], a[i]];\n\
            }\n";
        let p = parse(src).unwrap();
        assert_eq!(p.statements.len(), 5);
        match &p.statements[4] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 3);
            }
            s => panic!("expected for, got {s:?}"),
        }
    }

    #[test]
    fn gate_arity_is_checked() {
        assert!(parse("borrow a; X[a, a];").is_err());
        assert!(parse("borrow a; CNOT[a];").is_err());
        assert!(parse("borrow a; CCNOT[a, a];").is_err());
        assert!(parse("borrow a; MCX[a];").is_err());
    }

    #[test]
    fn mcx_is_variadic() {
        let p = parse("borrow@ q[9]; MCX[q[1], q[2], q[3], q[4]];").unwrap();
        match &p.statements[1] {
            Stmt::Gate { kind, args, .. } => {
                assert_eq!(*kind, GateKind::Mcx);
                assert_eq!(args.len(), 4);
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse("let x = 1 + 2 * 3 - 4;").unwrap();
        match &p.statements[0] {
            Stmt::Let { value, .. } => {
                assert_eq!(value.to_string(), "((1 + (2 * 3)) - 4)");
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let p = parse("let x = -3 + 1;").unwrap();
        match &p.statements[0] {
            Stmt::Let { value, .. } => assert_eq!(value.to_string(), "(-(3) + 1)"),
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("let n = ;").unwrap_err();
        assert_eq!(err.span.unwrap().col, 9);
        let err = parse("for i = 1 to 2 { X[a];").unwrap_err();
        assert!(err.message.contains("'}'"));
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse("").is_err());
        assert!(parse("// only a comment").is_err());
    }

    #[test]
    fn nested_for_loops() {
        let p = parse("for i = 1 to 3 { for j = i to 1 { X[a]; } }").unwrap();
        match &p.statements[0] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::For { body, .. } => assert_eq!(body.len(), 1),
                s => panic!("unexpected inner {s:?}"),
            },
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn release_parses() {
        let p = parse("borrow anc; release anc;").unwrap();
        assert!(matches!(&p.statements[1], Stmt::Release { name, .. } if name == "anc"));
    }
}
