//! Idle-qubit analysis — the `idle(S)` function of the paper's Fig. 4.2.
//!
//! `idle(S)` is the set of machine qubits that no statement of `S`
//! touches; it determines which qubits a `borrow` statement may
//! nondeterministically pick. The definition is structural:
//!
//! ```text
//! idle(skip)                          = qubits
//! idle([q] := |0⟩)                    = qubits \ {q}
//! idle(U[q̄])                          = qubits \ q̄
//! idle(S₁; S₂)                        = idle(S₁) ∩ idle(S₂)
//! idle(if M[q̄] then S₁ else S₂)       = (idle(S₁) ∩ idle(S₂)) \ q̄
//! idle(while M[q̄] do S end)           = idle(S) \ q̄
//! idle(borrow a; S; release a)        = idle(S)
//! ```
//!
//! Formal placeholders do not remove any concrete qubit: they are resolved
//! only when the enclosing `borrow` is instantiated, which is why nested
//! borrows may end up sharing the same physical qubit (the paper's
//! Fig. 4.4 example).

use crate::core_ast::{CoreStmt, QubitRef};
use std::collections::BTreeSet;

/// Computes `idle(S)` over the machine `qubits = {0, …, n−1}`.
///
/// # Examples
///
/// ```
/// use qb_lang::{idle, CoreGate, CoreStmt, QubitRef};
/// let s = CoreStmt::Gate(CoreGate::Cnot(
///     QubitRef::Concrete(0),
///     QubitRef::Concrete(2),
/// ));
/// assert_eq!(idle(&s, 4), [1, 3].into_iter().collect());
/// ```
pub fn idle(stmt: &CoreStmt, n: usize) -> BTreeSet<usize> {
    let mut used = BTreeSet::new();
    collect_used(stmt, &mut used);
    (0..n).filter(|q| !used.contains(q)).collect()
}

fn touch(r: &QubitRef, used: &mut BTreeSet<usize>) {
    if let QubitRef::Concrete(q) = r {
        used.insert(*q);
    }
}

fn collect_used(stmt: &CoreStmt, used: &mut BTreeSet<usize>) {
    match stmt {
        CoreStmt::Skip => {}
        CoreStmt::Init(r) => touch(r, used),
        CoreStmt::Gate(g) => {
            for r in g.operands() {
                touch(r, used);
            }
        }
        CoreStmt::Seq(parts) => {
            for p in parts {
                collect_used(p, used);
            }
        }
        CoreStmt::If {
            qubit,
            then_branch,
            else_branch,
        } => {
            touch(qubit, used);
            collect_used(then_branch, used);
            collect_used(else_branch, used);
        }
        CoreStmt::While { qubit, body } => {
            touch(qubit, used);
            collect_used(body, used);
        }
        CoreStmt::Borrow { body, .. } => collect_used(body, used),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_ast::CoreGate;

    fn cq(q: usize) -> QubitRef {
        QubitRef::Concrete(q)
    }

    fn ph(name: &str) -> QubitRef {
        QubitRef::Placeholder(name.into())
    }

    fn set(xs: &[usize]) -> BTreeSet<usize> {
        xs.iter().copied().collect()
    }

    #[test]
    fn skip_leaves_everything_idle() {
        assert_eq!(idle(&CoreStmt::Skip, 3), set(&[0, 1, 2]));
    }

    #[test]
    fn init_and_gates_remove_operands() {
        assert_eq!(idle(&CoreStmt::Init(cq(1)), 3), set(&[0, 2]));
        let g = CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), cq(2)));
        assert_eq!(idle(&g, 4), set(&[3]));
    }

    #[test]
    fn seq_intersects() {
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::X(cq(0))),
            CoreStmt::Gate(CoreGate::X(cq(2))),
        ]);
        assert_eq!(idle(&s, 4), set(&[1, 3]));
    }

    #[test]
    fn if_removes_guard() {
        let s = CoreStmt::If {
            qubit: cq(3),
            then_branch: Box::new(CoreStmt::Gate(CoreGate::X(cq(0)))),
            else_branch: Box::new(CoreStmt::Skip),
        };
        assert_eq!(idle(&s, 4), set(&[1, 2]));
    }

    #[test]
    fn while_removes_guard_and_body() {
        let s = CoreStmt::While {
            qubit: cq(0),
            body: Box::new(CoreStmt::Gate(CoreGate::X(cq(1)))),
        };
        assert_eq!(idle(&s, 3), set(&[2]));
    }

    #[test]
    fn placeholders_do_not_consume_qubits() {
        // The Fig. 4.4 situation: S1 touches q1, q2, q4, q5 and the
        // placeholder a1; with five machine qubits only q3 is idle.
        let s1 = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a1"))),
            CoreStmt::Gate(CoreGate::Toffoli(ph("a1"), cq(3), cq(4))),
            CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a1"))),
            CoreStmt::Gate(CoreGate::Toffoli(ph("a1"), cq(3), cq(4))),
        ]);
        assert_eq!(idle(&s1, 5), set(&[2]));
    }

    #[test]
    fn borrow_is_transparent() {
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::Cnot(cq(0), ph("a")))),
        };
        assert_eq!(idle(&s, 3), set(&[1, 2]));
    }
}
