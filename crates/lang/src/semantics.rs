//! Denotational semantics of QBorrow — the paper's Fig. 4.3.
//!
//! A program denotes a *set* of quantum operations over the machine's
//! `n`-qubit state space:
//!
//! * primitive statements denote singletons;
//! * sequencing composes every pair of choices;
//! * `if` combines measurement branches by summation (probabilistic), but
//!   unions over the branch schedulers (nondeterministic);
//! * `while` sums the series `Σₖ E_F ∘ (E ∘ E_T)ᵏ`;
//! * `borrow a; S; release a` unions over every idle qubit instantiation
//!   `S[q/a]` — the single source of nondeterminism.
//!
//! Operations are represented as dense superoperators (`qb_sim::SuperOp`)
//! so that set membership and deduplication are decidable.
//!
//! ## Scheduler restriction (documented deviation)
//!
//! For `while` loops the paper ranges over arbitrary infinite scheduler
//! sequences `Ē ∈ ⟦S⟧^ℕ`; this implementation enumerates *per-iteration
//! constant* schedulers (the same choice every iteration). The restriction
//! is exact whenever the loop body is deterministic (`|⟦body⟧| = 1`) —
//! which by Theorem 5.5 covers every *safe* program — and a conservative
//! under-approximation otherwise. [`Denotation::scheduler_restricted`]
//! reports when the restriction was exercised.

use crate::core_ast::{CoreStmt, QubitRef};
use crate::error::{LangError, Phase};
use crate::idle::idle;
use qb_sim::{Channel, Measurement, SuperOp};

/// Tunables for semantics evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticsOptions {
    /// Maximum size of a denotation set before evaluation aborts.
    pub max_channels: usize,
    /// Iteration cap for `while` fixpoints.
    pub while_max_iters: usize,
    /// Convergence threshold: iteration stops when a term's norm drops
    /// below this value.
    pub while_tolerance: f64,
    /// Tolerance used when deduplicating equal operations.
    pub dedup_tolerance: f64,
}

impl Default for SemanticsOptions {
    fn default() -> Self {
        SemanticsOptions {
            max_channels: 256,
            while_max_iters: 512,
            while_tolerance: 1e-10,
            dedup_tolerance: 1e-8,
        }
    }
}

/// The meaning of a program: a set of quantum operations.
#[derive(Debug, Clone)]
pub struct Denotation {
    /// The distinct operations in `⟦S⟧` (empty = the program is *stuck*:
    /// some `borrow` found no idle qubit).
    pub operations: Vec<SuperOp>,
    /// `true` when a nondeterministic loop body forced the documented
    /// constant-scheduler restriction.
    pub scheduler_restricted: bool,
}

impl Denotation {
    /// `|⟦S⟧| = 0`: no execution exists (stuck on `borrow`).
    pub fn is_stuck(&self) -> bool {
        self.operations.is_empty()
    }

    /// `|⟦S⟧| ≤ 1`: the program is equivalent to a deterministic program
    /// (Theorem 5.5's criterion).
    pub fn is_deterministic(&self) -> bool {
        self.operations.len() <= 1
    }

    fn singleton(op: SuperOp) -> Denotation {
        Denotation {
            operations: vec![op],
            scheduler_restricted: false,
        }
    }
}

/// Evaluates `⟦stmt⟧` over an `n`-qubit machine.
///
/// # Errors
///
/// Returns a [`LangError`] when the statement is ill-formed (unbound
/// placeholders), when `n` exceeds the dense-superoperator limit, or when
/// the denotation set exceeds [`SemanticsOptions::max_channels`].
///
/// # Examples
///
/// ```
/// use qb_lang::{denote, CoreGate, CoreStmt, QubitRef, SemanticsOptions};
///
/// // borrow a; X[q0]; X[a]; release a — on a 2-qubit machine the only
/// // idle qubit is q1, so the denotation is a singleton.
/// let s = CoreStmt::Borrow {
///     placeholder: "a".into(),
///     body: Box::new(CoreStmt::Seq(vec![
///         CoreStmt::Gate(CoreGate::X(QubitRef::Concrete(0))),
///         CoreStmt::Gate(CoreGate::X(QubitRef::Placeholder("a".into()))),
///     ])),
/// };
/// let d = denote(&s, 2, &SemanticsOptions::default()).unwrap();
/// assert_eq!(d.operations.len(), 1);
/// ```
pub fn denote(stmt: &CoreStmt, n: usize, opts: &SemanticsOptions) -> Result<Denotation, LangError> {
    stmt.check_wellformed()
        .map_err(|m| LangError::new(Phase::Semantics, m))?;
    if n > 6 {
        return Err(LangError::new(
            Phase::Semantics,
            format!("denotational semantics limited to 6 qubits, got {n}"),
        ));
    }
    eval(stmt, n, opts)
}

fn concrete(r: &QubitRef) -> Result<usize, LangError> {
    r.concrete().ok_or_else(|| {
        LangError::new(
            Phase::Semantics,
            format!("placeholder '{r}' survived to evaluation"),
        )
    })
}

fn dedup(mut ops: Vec<SuperOp>, tol: f64) -> Vec<SuperOp> {
    let mut kept: Vec<SuperOp> = Vec::new();
    for op in ops.drain(..) {
        if !kept.iter().any(|k| k.approx_eq(&op, tol)) {
            kept.push(op);
        }
    }
    kept
}

fn eval(stmt: &CoreStmt, n: usize, opts: &SemanticsOptions) -> Result<Denotation, LangError> {
    match stmt {
        CoreStmt::Skip => Ok(Denotation::singleton(SuperOp::identity(n))),
        CoreStmt::Init(r) => {
            let q = concrete(r)?;
            Ok(Denotation::singleton(SuperOp::from_channel(
                &Channel::init_qubit(n, q),
            )))
        }
        CoreStmt::Gate(g) => {
            let gate = g
                .to_gate()
                .map_err(|m| LangError::new(Phase::Semantics, m))?;
            gate.validate(n)
                .map_err(|m| LangError::new(Phase::Semantics, m))?;
            Ok(Denotation::singleton(SuperOp::from_channel(
                &Channel::from_gate(n, &gate),
            )))
        }
        CoreStmt::Seq(parts) => {
            let mut acc = Denotation::singleton(SuperOp::identity(n));
            for part in parts {
                let next = eval(part, n, opts)?;
                acc.scheduler_restricted |= next.scheduler_restricted;
                let mut combined = Vec::with_capacity(acc.operations.len() * next.operations.len());
                for a in &acc.operations {
                    for b in &next.operations {
                        combined.push(a.then(b));
                    }
                }
                acc.operations = dedup(combined, opts.dedup_tolerance);
                if acc.operations.len() > opts.max_channels {
                    return Err(LangError::new(
                        Phase::Semantics,
                        format!(
                            "denotation exceeded {} operations; raise max_channels",
                            opts.max_channels
                        ),
                    ));
                }
            }
            Ok(acc)
        }
        CoreStmt::If {
            qubit,
            then_branch,
            else_branch,
        } => {
            let q = concrete(qubit)?;
            let m = Measurement::basis(n, q);
            let e_t = SuperOp::from_channel(&Channel::measurement_branch(n, &m, true));
            let e_f = SuperOp::from_channel(&Channel::measurement_branch(n, &m, false));
            let d1 = eval(then_branch, n, opts)?;
            let d2 = eval(else_branch, n, opts)?;
            let mut ops = Vec::with_capacity(d1.operations.len() * d2.operations.len());
            for e1 in &d1.operations {
                for e2 in &d2.operations {
                    ops.push(e_t.then(e1).plus(&e_f.then(e2)));
                }
            }
            Ok(Denotation {
                operations: dedup(ops, opts.dedup_tolerance),
                scheduler_restricted: d1.scheduler_restricted || d2.scheduler_restricted,
            })
        }
        CoreStmt::While { qubit, body } => {
            let q = concrete(qubit)?;
            let m = Measurement::basis(n, q);
            let e_t = SuperOp::from_channel(&Channel::measurement_branch(n, &m, true));
            let e_f = SuperOp::from_channel(&Channel::measurement_branch(n, &m, false));
            let d_body = eval(body, n, opts)?;
            if d_body.is_stuck() {
                // A stuck body means no scheduler can complete an iteration;
                // the only execution never enters the loop... entering the
                // loop requires running the body, so the denotation is the
                // immediate-exit branch alone only if the loop never fires —
                // which cannot be guaranteed for all states, so ⟦S⟧ = ∅.
                return Ok(Denotation {
                    operations: Vec::new(),
                    scheduler_restricted: d_body.scheduler_restricted,
                });
            }
            let restricted = d_body.operations.len() > 1;
            let mut ops = Vec::with_capacity(d_body.operations.len());
            for e_body in &d_body.operations {
                // Σ_{k≥0} E_F ∘ (E_body ∘ E_T)^k, with a constant scheduler.
                let step = e_t.then(e_body); // applied rightmost-first
                let mut term = e_f.clone(); // k = 0
                let mut total = term.clone();
                let mut converged = false;
                for _ in 0..opts.while_max_iters {
                    term = step.then(&term);
                    if term.norm() < opts.while_tolerance {
                        converged = true;
                        break;
                    }
                    total = total.plus(&term);
                }
                if !converged {
                    // The tail was truncated; the result is the limit of the
                    // non-decreasing prefix sums up to the iteration cap.
                    // This is reported rather than silently accepted.
                    return Err(LangError::new(
                        Phase::Semantics,
                        format!(
                            "while loop did not converge within {} iterations",
                            opts.while_max_iters
                        ),
                    ));
                }
                ops.push(total);
            }
            Ok(Denotation {
                operations: dedup(ops, opts.dedup_tolerance),
                scheduler_restricted: d_body.scheduler_restricted || restricted,
            })
        }
        CoreStmt::Borrow { placeholder, body } => {
            let candidates = idle(body, n);
            let mut ops = Vec::new();
            let mut restricted = false;
            for q in candidates {
                let inst = body.substitute(placeholder, q);
                let d = eval(&inst, n, opts)?;
                restricted |= d.scheduler_restricted;
                ops.extend(d.operations);
                if ops.len() > opts.max_channels {
                    return Err(LangError::new(
                        Phase::Semantics,
                        format!(
                            "denotation exceeded {} operations; raise max_channels",
                            opts.max_channels
                        ),
                    ));
                }
            }
            Ok(Denotation {
                operations: dedup(ops, opts.dedup_tolerance),
                scheduler_restricted: restricted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_ast::CoreGate;
    use qb_circuit::Circuit;
    use qb_sim::{Channel, DensityMatrix, StateVector};

    fn cq(q: usize) -> QubitRef {
        QubitRef::Concrete(q)
    }

    fn ph(name: &str) -> QubitRef {
        QubitRef::Placeholder(name.into())
    }

    fn opts() -> SemanticsOptions {
        SemanticsOptions::default()
    }

    #[test]
    fn skip_is_identity() {
        let d = denote(&CoreStmt::Skip, 2, &opts()).unwrap();
        assert_eq!(d.operations.len(), 1);
        assert!(d.operations[0].approx_eq(&SuperOp::identity(2), 1e-12));
    }

    #[test]
    fn sequencing_composes() {
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::X(cq(0))),
            CoreStmt::Gate(CoreGate::X(cq(0))),
        ]);
        let d = denote(&s, 1, &opts()).unwrap();
        assert_eq!(d.operations.len(), 1);
        assert!(d.operations[0].approx_eq(&SuperOp::identity(1), 1e-10));
    }

    #[test]
    fn if_measures_and_branches() {
        // if M[q0] then X[q1] else skip — on |1⟩|0⟩ flips q1.
        let s = CoreStmt::If {
            qubit: cq(0),
            then_branch: Box::new(CoreStmt::Gate(CoreGate::X(cq(1)))),
            else_branch: Box::new(CoreStmt::Skip),
        };
        let d = denote(&s, 2, &opts()).unwrap();
        assert_eq!(d.operations.len(), 1);
        let op = &d.operations[0];
        let rho = DensityMatrix::from_pure(&StateVector::from_bits(&[true, false]));
        let out = op.apply(&rho);
        assert!((out.probability_of_one(1) - 1.0).abs() < 1e-10);
        // On |0⟩|0⟩ nothing happens.
        let rho0 = DensityMatrix::from_pure(&StateVector::zero(2));
        let out0 = op.apply(&rho0);
        assert!(out0.probability_of_one(1).abs() < 1e-10);
        // Trace preserved in both cases.
        assert!((out.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn while_terminates_on_classical_state() {
        // while M[q0] do X[q0] end: from |1⟩, one iteration flips to |0⟩.
        let s = CoreStmt::While {
            qubit: cq(0),
            body: Box::new(CoreStmt::Gate(CoreGate::X(cq(0)))),
        };
        let d = denote(&s, 1, &opts()).unwrap();
        assert_eq!(d.operations.len(), 1);
        let op = &d.operations[0];
        let rho = DensityMatrix::from_pure(&StateVector::basis(1, 1));
        let out = op.apply(&rho);
        assert!((out.trace() - 1.0).abs() < 1e-9);
        assert!(out.probability_of_one(0).abs() < 1e-9);
    }

    #[test]
    fn while_on_superposition_converges() {
        // while M[q0] do H[q0] end: measuring |+⟩ loops with probability
        // 1/2 each round; terminates almost surely.
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::H(cq(0))),
            CoreStmt::While {
                qubit: cq(0),
                body: Box::new(CoreStmt::Gate(CoreGate::H(cq(0)))),
            },
        ]);
        let d = denote(&s, 1, &opts()).unwrap();
        let op = &d.operations[0];
        let rho = DensityMatrix::from_pure(&StateVector::zero(1));
        let out = op.apply(&rho);
        assert!((out.trace() - 1.0).abs() < 1e-6);
        assert!(out.probability_of_one(0).abs() < 1e-6);
    }

    #[test]
    fn borrow_unions_over_idle_qubits() {
        // borrow a; X[a] — with 2 qubits and empty remaining program, both
        // qubits are idle, giving two distinct operations.
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::X(ph("a")))),
        };
        let d = denote(&s, 2, &opts()).unwrap();
        assert_eq!(d.operations.len(), 2);
        assert!(!d.is_deterministic());
    }

    #[test]
    fn borrow_of_safe_body_is_deterministic() {
        // borrow a; X[a]; X[a] — identity on a, so all instantiations
        // coincide (Theorem 5.5 direction ⇒).
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Seq(vec![
                CoreStmt::Gate(CoreGate::X(ph("a"))),
                CoreStmt::Gate(CoreGate::X(ph("a"))),
            ])),
        };
        let d = denote(&s, 3, &opts()).unwrap();
        assert!(d.is_deterministic());
        assert!(d.operations[0].approx_eq(&SuperOp::identity(3), 1e-9));
    }

    #[test]
    fn borrow_with_no_idle_qubit_is_stuck() {
        // borrow a; CNOT[q0, a] on a 1-qubit machine: idle = ∅.
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::Cnot(cq(0), ph("a")))),
        };
        let d = denote(&s, 1, &opts()).unwrap();
        assert!(d.is_stuck());
    }

    #[test]
    fn fig_4_4_nested_borrows_are_deterministic() {
        // The paper's Fig. 4.4 program on five qubits: q3 (index 2) is the
        // only idle qubit for both borrows, and the program is safe, so
        // ⟦S⟧ is a singleton equal to the circuit of Fig. 3.1c.
        let a1 = || ph("a1");
        let a2 = || ph("a2");
        let s1_tail = CoreStmt::Borrow {
            placeholder: "a2".into(),
            body: Box::new(CoreStmt::Seq(vec![
                CoreStmt::Gate(CoreGate::Toffoli(cq(3), cq(4), cq(1))),
                CoreStmt::Gate(CoreGate::Toffoli(a2(), cq(1), cq(0))),
                CoreStmt::Gate(CoreGate::Toffoli(cq(3), cq(4), cq(1))),
                CoreStmt::Gate(CoreGate::Toffoli(a2(), cq(1), cq(0))),
            ])),
        };
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::Cnot(cq(1), cq(2))),
            CoreStmt::Borrow {
                placeholder: "a1".into(),
                body: Box::new(CoreStmt::Seq(vec![
                    CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), a1())),
                    CoreStmt::Gate(CoreGate::Toffoli(a1(), cq(3), cq(4))),
                    CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), a1())),
                    CoreStmt::Gate(CoreGate::Toffoli(a1(), cq(3), cq(4))),
                    s1_tail,
                ])),
            },
        ]);
        let d = denote(&s, 5, &opts()).unwrap();
        assert!(d.is_deterministic());
        assert!(!d.is_stuck());

        // Expected: the concrete circuit with q3 (index 2) borrowed twice.
        let mut expect = Circuit::new(5);
        expect
            .cnot(1, 2)
            .toffoli(0, 1, 2)
            .toffoli(2, 3, 4)
            .toffoli(0, 1, 2)
            .toffoli(2, 3, 4)
            .toffoli(3, 4, 1)
            .toffoli(2, 1, 0)
            .toffoli(3, 4, 1)
            .toffoli(2, 1, 0);
        let expected_op = SuperOp::from_channel(&Channel::from_circuit(&expect));
        assert!(d.operations[0].approx_eq(&expected_op, 1e-8));
    }

    #[test]
    fn example_5_2_unsafe_borrow() {
        // S ≡ X[q]; borrow a; X[q]; X[a]; release a (paper Example 5.2).
        // The borrow is unsafe, so with ≥ 2 idle candidates the denotation
        // has several elements.
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::X(cq(0))),
            CoreStmt::Borrow {
                placeholder: "a".into(),
                body: Box::new(CoreStmt::Seq(vec![
                    CoreStmt::Gate(CoreGate::X(cq(0))),
                    CoreStmt::Gate(CoreGate::X(ph("a"))),
                ])),
            },
        ]);
        let d = denote(&s, 3, &opts()).unwrap();
        assert_eq!(d.operations.len(), 2);
    }

    #[test]
    fn unbound_placeholder_is_rejected() {
        let s = CoreStmt::Gate(CoreGate::X(ph("ghost")));
        assert!(denote(&s, 1, &opts()).is_err());
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(denote(&CoreStmt::Skip, 7, &opts()).is_err());
    }
}
