//! Abstract syntax of the QBorrow surface language (paper §10.3 grammar).

use crate::token::Span;
use std::fmt;

/// A parsed program: a non-empty statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements in source order.
    pub statements: Vec<Stmt>,
}

/// Register reference: a bare name or `name[expr]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegRef {
    /// Register name.
    pub name: String,
    /// Optional index/size expression.
    pub index: Option<Expr>,
    /// Source position of the reference.
    pub span: Span,
}

/// One surface statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let ID = expr;`
    Let {
        /// Bound name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `borrow reg;` — borrow dirty qubits whose safe uncomputation must
    /// be verified.
    Borrow {
        /// Declared register (index expression = register size).
        reg: RegRef,
        /// Source position.
        span: Span,
    },
    /// `borrow@ reg;` — borrow dirty qubits with verification skipped
    /// ("no assumptions made about the initial states", §6.2).
    BorrowTrusted {
        /// Declared register.
        reg: RegRef,
        /// Source position.
        span: Span,
    },
    /// `alloc reg;` — clean qubits initialised to `|0⟩`.
    Alloc {
        /// Declared register.
        reg: RegRef,
        /// Source position.
        span: Span,
    },
    /// `release ID;`
    Release {
        /// Register name to release.
        name: String,
        /// Source position.
        span: Span,
    },
    /// A gate application (`X`, `CNOT`, `CCNOT`, or an extension gate).
    Gate {
        /// Which gate.
        kind: GateKind,
        /// Operand register references.
        args: Vec<RegRef>,
        /// Source position.
        span: Span,
    },
    /// `for ID = expr to expr { ... }` — inclusive bounds, iterating
    /// downwards when the start exceeds the end (as in the paper's
    /// `adder.qbr`, e.g. `for i = (n-1) to 2`).
    For {
        /// Loop variable.
        var: String,
        /// Start expression (inclusive).
        start: Expr,
        /// End expression (inclusive).
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// The source position of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Borrow { span, .. }
            | Stmt::BorrowTrusted { span, .. }
            | Stmt::Alloc { span, .. }
            | Stmt::Release { span, .. }
            | Stmt::Gate { span, .. }
            | Stmt::For { span, .. } => *span,
        }
    }
}

/// The surface gate vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Pauli X (1 operand).
    X,
    /// CNOT (2 operands).
    Cnot,
    /// Toffoli (3 operands).
    Ccnot,
    /// Multi-controlled NOT — extension (≥ 2 operands, last is target).
    Mcx,
    /// Hadamard — extension (1 operand).
    H,
    /// Pauli Z — extension (1 operand).
    Z,
    /// SWAP — extension (2 operands).
    Swap,
}

impl GateKind {
    /// Expected operand count, or `None` for variadic (MCX).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::X | GateKind::H | GateKind::Z => Some(1),
            GateKind::Cnot | GateKind::Swap => Some(2),
            GateKind::Ccnot => Some(3),
            GateKind::Mcx => None,
        }
    }

    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            GateKind::X => "X",
            GateKind::Cnot => "CNOT",
            GateKind::Ccnot => "CCNOT",
            GateKind::Mcx => "MCX",
            GateKind::H => "H",
            GateKind::Z => "Z",
            GateKind::Swap => "SWAP",
        }
    }
}

/// Arithmetic expressions over integers and let/loop variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Number(i64),
    /// Variable reference.
    Var(String, Span),
    /// Negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Var(name, _) => write!(f, "{name}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}
