//! The core QBorrow calculus of the paper's §4 (Fig. 4.1).
//!
//! This is the QWhile language extended with `borrow a; S; release a`:
//!
//! ```text
//! S ::= skip | [q] := |0⟩ | U[q̄] | S₁; S₂
//!     | if M[q̄] then S₁ else S₂ | while M[q̄] do S end
//!     | borrow a; S; release a
//! ```
//!
//! Qubit operands are [`QubitRef`]s: either concrete machine qubits or
//! formal placeholders introduced by `borrow` and instantiated
//! nondeterministically by the semantics (Fig. 4.3). Measurements guarding
//! `if`/`while` are single-qubit computational-basis measurements with
//! outcome `T` on `|1⟩` — the binary-measurement shape of §2, specialised
//! as in the paper's examples.

use qb_circuit::{Circuit, Gate};
use std::collections::BTreeSet;
use std::fmt;

/// A qubit operand: concrete index or formal placeholder.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QubitRef {
    /// A machine qubit.
    Concrete(usize),
    /// A `borrow`-bound placeholder, instantiated at runtime.
    Placeholder(String),
}

impl QubitRef {
    /// The concrete index, if resolved.
    pub fn concrete(&self) -> Option<usize> {
        match self {
            QubitRef::Concrete(q) => Some(*q),
            QubitRef::Placeholder(_) => None,
        }
    }

    fn substitute(&self, name: &str, q: usize) -> QubitRef {
        match self {
            QubitRef::Placeholder(p) if p == name => QubitRef::Concrete(q),
            other => other.clone(),
        }
    }
}

impl fmt::Display for QubitRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QubitRef::Concrete(q) => write!(f, "q{q}"),
            QubitRef::Placeholder(a) => write!(f, "{a}"),
        }
    }
}

/// A unitary application over [`QubitRef`] operands.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreGate {
    /// Pauli X.
    X(QubitRef),
    /// Hadamard.
    H(QubitRef),
    /// Pauli Z.
    Z(QubitRef),
    /// CNOT (control, target).
    Cnot(QubitRef, QubitRef),
    /// Toffoli (control, control, target).
    Toffoli(QubitRef, QubitRef, QubitRef),
    /// Multi-controlled NOT (controls, target).
    Mcx(Vec<QubitRef>, QubitRef),
    /// SWAP.
    Swap(QubitRef, QubitRef),
}

impl CoreGate {
    /// Operands in order.
    pub fn operands(&self) -> Vec<&QubitRef> {
        match self {
            CoreGate::X(q) | CoreGate::H(q) | CoreGate::Z(q) => vec![q],
            CoreGate::Cnot(a, b) | CoreGate::Swap(a, b) => vec![a, b],
            CoreGate::Toffoli(a, b, c) => vec![a, b, c],
            CoreGate::Mcx(cs, t) => {
                let mut v: Vec<&QubitRef> = cs.iter().collect();
                v.push(t);
                v
            }
        }
    }

    fn substitute(&self, name: &str, q: usize) -> CoreGate {
        let s = |r: &QubitRef| r.substitute(name, q);
        match self {
            CoreGate::X(a) => CoreGate::X(s(a)),
            CoreGate::H(a) => CoreGate::H(s(a)),
            CoreGate::Z(a) => CoreGate::Z(s(a)),
            CoreGate::Cnot(a, b) => CoreGate::Cnot(s(a), s(b)),
            CoreGate::Toffoli(a, b, c) => CoreGate::Toffoli(s(a), s(b), s(c)),
            CoreGate::Mcx(cs, t) => CoreGate::Mcx(cs.iter().map(s).collect(), s(t)),
            CoreGate::Swap(a, b) => CoreGate::Swap(s(a), s(b)),
        }
    }

    /// Converts to a concrete circuit gate.
    ///
    /// # Errors
    ///
    /// Returns the name of an unresolved placeholder, if any remains.
    pub fn to_gate(&self) -> Result<Gate, String> {
        let c = |r: &QubitRef| -> Result<usize, String> {
            r.concrete()
                .ok_or_else(|| format!("unresolved placeholder '{r}'"))
        };
        Ok(match self {
            CoreGate::X(a) => Gate::X(c(a)?),
            CoreGate::H(a) => Gate::H(c(a)?),
            CoreGate::Z(a) => Gate::Z(c(a)?),
            CoreGate::Cnot(a, b) => Gate::Cnot { c: c(a)?, t: c(b)? },
            CoreGate::Toffoli(a, b, t) => Gate::Toffoli {
                c1: c(a)?,
                c2: c(b)?,
                t: c(t)?,
            },
            CoreGate::Mcx(cs, t) => Gate::Mcx {
                controls: cs.iter().map(&c).collect::<Result<_, _>>()?,
                target: c(t)?,
            },
            CoreGate::Swap(a, b) => Gate::Swap(c(a)?, c(b)?),
        })
    }
}

/// A statement of the core calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreStmt {
    /// `skip`
    Skip,
    /// `[q] := |0⟩` — initialisation.
    Init(QubitRef),
    /// `U[q̄]` — unitary application.
    Gate(CoreGate),
    /// `S₁; S₂; …` — sequencing (n-ary for convenience).
    Seq(Vec<CoreStmt>),
    /// `if M[q] then S₁ else S₂` — guarded by a computational-basis
    /// measurement of `qubit` (outcome `T` = `|1⟩`).
    If {
        /// Measured qubit.
        qubit: QubitRef,
        /// Branch on outcome `T`.
        then_branch: Box<CoreStmt>,
        /// Branch on outcome `F`.
        else_branch: Box<CoreStmt>,
    },
    /// `while M[q] do S end`.
    While {
        /// Measured qubit (loop continues on outcome `T` = `|1⟩`).
        qubit: QubitRef,
        /// Loop body.
        body: Box<CoreStmt>,
    },
    /// `borrow a; S; release a`.
    Borrow {
        /// The placeholder name bound in `body`.
        placeholder: String,
        /// The borrowed scope.
        body: Box<CoreStmt>,
    },
}

impl CoreStmt {
    /// Sequences two statements.
    pub fn then(self, next: CoreStmt) -> CoreStmt {
        match self {
            CoreStmt::Seq(mut v) => {
                v.push(next);
                CoreStmt::Seq(v)
            }
            first => CoreStmt::Seq(vec![first, next]),
        }
    }

    /// Substitutes concrete qubit `q` for placeholder `name` (capture
    /// avoiding: stops at an inner `borrow` that rebinds the same name).
    #[must_use]
    pub fn substitute(&self, name: &str, q: usize) -> CoreStmt {
        match self {
            CoreStmt::Skip => CoreStmt::Skip,
            CoreStmt::Init(r) => CoreStmt::Init(r.substitute(name, q)),
            CoreStmt::Gate(g) => CoreStmt::Gate(g.substitute(name, q)),
            CoreStmt::Seq(parts) => {
                CoreStmt::Seq(parts.iter().map(|p| p.substitute(name, q)).collect())
            }
            CoreStmt::If {
                qubit,
                then_branch,
                else_branch,
            } => CoreStmt::If {
                qubit: qubit.substitute(name, q),
                then_branch: Box::new(then_branch.substitute(name, q)),
                else_branch: Box::new(else_branch.substitute(name, q)),
            },
            CoreStmt::While { qubit, body } => CoreStmt::While {
                qubit: qubit.substitute(name, q),
                body: Box::new(body.substitute(name, q)),
            },
            CoreStmt::Borrow { placeholder, body } => {
                if placeholder == name {
                    // Shadowed: do not substitute inside.
                    self.clone()
                } else {
                    CoreStmt::Borrow {
                        placeholder: placeholder.clone(),
                        body: Box::new(body.substitute(name, q)),
                    }
                }
            }
        }
    }

    /// The set of free placeholder names.
    pub fn free_placeholders(&self) -> BTreeSet<String> {
        fn refs(r: &QubitRef, out: &mut BTreeSet<String>) {
            if let QubitRef::Placeholder(p) = r {
                out.insert(p.clone());
            }
        }
        let mut out = BTreeSet::new();
        match self {
            CoreStmt::Skip => {}
            CoreStmt::Init(r) => refs(r, &mut out),
            CoreStmt::Gate(g) => {
                for r in g.operands() {
                    refs(r, &mut out);
                }
            }
            CoreStmt::Seq(parts) => {
                for p in parts {
                    out.extend(p.free_placeholders());
                }
            }
            CoreStmt::If {
                qubit,
                then_branch,
                else_branch,
            } => {
                refs(qubit, &mut out);
                out.extend(then_branch.free_placeholders());
                out.extend(else_branch.free_placeholders());
            }
            CoreStmt::While { qubit, body } => {
                refs(qubit, &mut out);
                out.extend(body.free_placeholders());
            }
            CoreStmt::Borrow { placeholder, body } => {
                let mut inner = body.free_placeholders();
                inner.remove(placeholder);
                out.extend(inner);
            }
        }
        out
    }

    /// Well-formedness per the paper's conventions: every placeholder
    /// reference appears under a matching `borrow`, and nested borrows use
    /// distinct names.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_wellformed(&self) -> Result<(), String> {
        fn walk(stmt: &CoreStmt, bound: &mut Vec<String>) -> Result<(), String> {
            match stmt {
                CoreStmt::Skip => Ok(()),
                CoreStmt::Init(r)
                | CoreStmt::If { qubit: r, .. }
                | CoreStmt::While { qubit: r, .. }
                    if matches!(r, QubitRef::Placeholder(p) if !bound.contains(p)) =>
                {
                    Err(format!("placeholder '{r}' used outside its borrow scope"))
                }
                CoreStmt::Init(_) => Ok(()),
                CoreStmt::Gate(g) => {
                    for r in g.operands() {
                        if let QubitRef::Placeholder(p) = r {
                            if !bound.contains(p) {
                                return Err(format!(
                                    "placeholder '{p}' used outside its borrow scope"
                                ));
                            }
                        }
                    }
                    Ok(())
                }
                CoreStmt::Seq(parts) => {
                    for p in parts {
                        walk(p, bound)?;
                    }
                    Ok(())
                }
                CoreStmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, bound)?;
                    walk(else_branch, bound)
                }
                CoreStmt::While { body, .. } => walk(body, bound),
                CoreStmt::Borrow { placeholder, body } => {
                    if bound.contains(placeholder) {
                        return Err(format!(
                            "nested borrow reuses placeholder name '{placeholder}'"
                        ));
                    }
                    bound.push(placeholder.clone());
                    let r = walk(body, bound);
                    bound.pop();
                    r
                }
            }
        }
        walk(self, &mut Vec::new())
    }

    /// Lowers a straight-line, borrow-free, measurement-free statement to a
    /// circuit on `n` qubits.
    ///
    /// # Errors
    ///
    /// Returns a description when the statement contains control flow,
    /// borrows, initialisation or unresolved placeholders.
    pub fn to_circuit(&self, n: usize) -> Result<Circuit, String> {
        let mut circuit = Circuit::new(n);
        self.lower_into(&mut circuit)?;
        Ok(circuit)
    }

    fn lower_into(&self, circuit: &mut Circuit) -> Result<(), String> {
        match self {
            CoreStmt::Skip => Ok(()),
            CoreStmt::Gate(g) => {
                circuit.try_push(g.to_gate()?)?;
                Ok(())
            }
            CoreStmt::Seq(parts) => {
                for p in parts {
                    p.lower_into(circuit)?;
                }
                Ok(())
            }
            CoreStmt::Init(_) => Err("initialisation has no circuit form".into()),
            CoreStmt::If { .. } | CoreStmt::While { .. } => {
                Err("control flow has no circuit form".into())
            }
            CoreStmt::Borrow { .. } => Err("unresolved borrow has no circuit form".into()),
        }
    }

    /// Builds a straight-line statement from a classical circuit.
    pub fn from_circuit(circuit: &Circuit) -> CoreStmt {
        let conv = |q: usize| QubitRef::Concrete(q);
        let parts = circuit
            .gates()
            .iter()
            .map(|g| {
                CoreStmt::Gate(match g {
                    Gate::X(q) => CoreGate::X(conv(*q)),
                    Gate::H(q) => CoreGate::H(conv(*q)),
                    Gate::Z(q) => CoreGate::Z(conv(*q)),
                    Gate::Cnot { c, t } => CoreGate::Cnot(conv(*c), conv(*t)),
                    Gate::Toffoli { c1, c2, t } => {
                        CoreGate::Toffoli(conv(*c1), conv(*c2), conv(*t))
                    }
                    Gate::Mcx { controls, target } => {
                        CoreGate::Mcx(controls.iter().map(|&c| conv(c)).collect(), conv(*target))
                    }
                    Gate::Swap(a, b) => CoreGate::Swap(conv(*a), conv(*b)),
                    other => panic!("gate {other:?} not supported in the core calculus"),
                })
            })
            .collect();
        CoreStmt::Seq(parts)
    }
}

impl fmt::Display for CoreStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreStmt::Skip => write!(f, "skip"),
            CoreStmt::Init(q) => write!(f, "[{q}] := |0>"),
            CoreStmt::Gate(g) => {
                let ops: Vec<String> = g.operands().iter().map(|r| r.to_string()).collect();
                let name = match g {
                    CoreGate::X(_) => "X",
                    CoreGate::H(_) => "H",
                    CoreGate::Z(_) => "Z",
                    CoreGate::Cnot(..) => "CNOT",
                    CoreGate::Toffoli(..) => "Toffoli",
                    CoreGate::Mcx(..) => "MCX",
                    CoreGate::Swap(..) => "SWAP",
                };
                write!(f, "{name}[{}]", ops.join(","))
            }
            CoreStmt::Seq(parts) => {
                let strs: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "{}", strs.join("; "))
            }
            CoreStmt::If {
                qubit,
                then_branch,
                else_branch,
            } => write!(f, "if M[{qubit}] then {then_branch} else {else_branch}"),
            CoreStmt::While { qubit, body } => {
                write!(f, "while M[{qubit}] do {body} end")
            }
            CoreStmt::Borrow { placeholder, body } => {
                write!(f, "borrow {placeholder}; {body}; release {placeholder}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ph(name: &str) -> QubitRef {
        QubitRef::Placeholder(name.into())
    }

    fn cq(q: usize) -> QubitRef {
        QubitRef::Concrete(q)
    }

    #[test]
    fn substitution_resolves_placeholders() {
        let s = CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), ph("a")));
        let t = s.substitute("a", 5);
        assert_eq!(t, CoreStmt::Gate(CoreGate::Toffoli(cq(0), cq(1), cq(5))));
    }

    #[test]
    fn substitution_respects_shadowing() {
        let inner = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::X(ph("a")))),
        };
        let substituted = inner.substitute("a", 3);
        // Inner binder shadows: nothing changes.
        assert_eq!(substituted, inner);
    }

    #[test]
    fn free_placeholders_excludes_bound() {
        let s = CoreStmt::Seq(vec![
            CoreStmt::Gate(CoreGate::X(ph("outer"))),
            CoreStmt::Borrow {
                placeholder: "inner".into(),
                body: Box::new(CoreStmt::Gate(CoreGate::Cnot(ph("inner"), ph("outer")))),
            },
        ]);
        let free = s.free_placeholders();
        assert!(free.contains("outer"));
        assert!(!free.contains("inner"));
    }

    #[test]
    fn wellformedness_checks() {
        // Unbound placeholder.
        let bad = CoreStmt::Gate(CoreGate::X(ph("a")));
        assert!(bad.check_wellformed().is_err());
        // Nested borrows with the same name.
        let nested = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Borrow {
                placeholder: "a".into(),
                body: Box::new(CoreStmt::Skip),
            }),
        };
        assert!(nested.check_wellformed().is_err());
        // Proper program.
        let good = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::X(ph("a")))),
        };
        assert!(good.check_wellformed().is_ok());
    }

    #[test]
    fn circuit_round_trip() {
        let mut c = Circuit::new(3);
        c.x(0).cnot(0, 1).toffoli(0, 1, 2);
        let stmt = CoreStmt::from_circuit(&c);
        let back = stmt.to_circuit(3).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn control_flow_has_no_circuit() {
        let s = CoreStmt::While {
            qubit: cq(0),
            body: Box::new(CoreStmt::Skip),
        };
        assert!(s.to_circuit(1).is_err());
    }

    #[test]
    fn display_forms() {
        let s = CoreStmt::Borrow {
            placeholder: "a".into(),
            body: Box::new(CoreStmt::Gate(CoreGate::X(ph("a")))),
        };
        assert_eq!(s.to_string(), "borrow a; X[a]; release a");
    }
}
