//! Structural identity and edit diffing for elaborated programs.
//!
//! The verify-on-change daemon keys warm verification sessions by a
//! *stable structural hash* of the elaborated circuit: two sources that
//! elaborate to the same gate sequence over the same qubit layout (same
//! widths, same borrow disciplines) share one session regardless of
//! register names, comment text, loop structure, or constant spellings.
//!
//! [`gate_diff`] compares two elaborated gate sequences and reports the
//! longest common prefix: when a program edit only touches a suffix of
//! the circuit, the incremental session keeps the prefix encoding (and
//! the solver's learnt clauses about it) warm and re-encodes only the
//! changed tail.

use crate::elaborate::{ElaboratedProgram, QubitKind};
use qb_circuit::Gate;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An FNV-1a accumulator (deterministic across runs and platforms, unlike
/// `std::hash`'s randomly seeded maps).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
}

fn hash_gate(h: &mut Fnv, gate: &Gate) {
    match gate {
        Gate::X(q) => {
            h.byte(0);
            h.word(*q as u64);
        }
        Gate::H(q) => {
            h.byte(1);
            h.word(*q as u64);
        }
        Gate::Z(q) => {
            h.byte(2);
            h.word(*q as u64);
        }
        Gate::S(q) => {
            h.byte(3);
            h.word(*q as u64);
        }
        Gate::Sdg(q) => {
            h.byte(4);
            h.word(*q as u64);
        }
        Gate::T(q) => {
            h.byte(5);
            h.word(*q as u64);
        }
        Gate::Tdg(q) => {
            h.byte(6);
            h.word(*q as u64);
        }
        Gate::Phase { theta, q } => {
            h.byte(7);
            h.word(theta.to_bits());
            h.word(*q as u64);
        }
        Gate::Cnot { c, t } => {
            h.byte(8);
            h.word(*c as u64);
            h.word(*t as u64);
        }
        Gate::Cz { c, t } => {
            h.byte(9);
            h.word(*c as u64);
            h.word(*t as u64);
        }
        Gate::CPhase { theta, c, t } => {
            h.byte(10);
            h.word(theta.to_bits());
            h.word(*c as u64);
            h.word(*t as u64);
        }
        Gate::Swap(a, b) => {
            h.byte(11);
            h.word(*a as u64);
            h.word(*b as u64);
        }
        Gate::Toffoli { c1, c2, t } => {
            h.byte(12);
            h.word(*c1 as u64);
            h.word(*c2 as u64);
            h.word(*t as u64);
        }
        Gate::Mcx { controls, target } => {
            h.byte(13);
            h.word(controls.len() as u64);
            for c in controls {
                h.word(*c as u64);
            }
            h.word(*target as u64);
        }
    }
}

/// A stable structural hash of an elaborated program: qubit count, the
/// borrow discipline of every qubit, and the full elaborated gate
/// sequence. Register names, spans, comments and surface-level loop/let
/// structure do not contribute — two sources elaborating to the same
/// circuit hash identically, across runs and platforms.
///
/// # Examples
///
/// ```
/// use qb_lang::{elaborate, parse, structural_hash};
/// let a = elaborate(&parse("borrow a[2]; X[a[1]]; X[a[2]];").unwrap()).unwrap();
/// let b = elaborate(&parse("borrow q[2]; for i = 1 to 2 { X[q[i]]; }").unwrap()).unwrap();
/// assert_eq!(structural_hash(&a), structural_hash(&b));
/// ```
pub fn structural_hash(program: &ElaboratedProgram) -> u64 {
    let mut h = Fnv::new();
    h.word(program.num_qubits() as u64);
    for kind in &program.qubit_kinds {
        h.byte(match kind {
            QubitKind::BorrowedDirty => 0,
            QubitKind::TrustedDirty => 1,
            QubitKind::Clean => 2,
        });
    }
    h.word(program.circuit.size() as u64);
    for gate in program.circuit.gates() {
        hash_gate(&mut h, gate);
    }
    h.0
}

/// How one elaborated gate sequence differs from another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDiff {
    /// Length of the longest common prefix.
    pub common_prefix: usize,
    /// Gates of the old sequence past the common prefix.
    pub removed: usize,
    /// Gates of the new sequence past the common prefix.
    pub added: usize,
}

impl GateDiff {
    /// `true` when the sequences are identical.
    pub fn is_identity(&self) -> bool {
        self.removed == 0 && self.added == 0
    }
}

/// Length of the longest common gate-sequence prefix.
pub fn gate_common_prefix(old: &[Gate], new: &[Gate]) -> usize {
    old.iter().zip(new).take_while(|(a, b)| a == b).count()
}

/// Diffs two elaborated gate sequences (longest common prefix plus
/// suffix lengths).
///
/// # Examples
///
/// ```
/// use qb_circuit::Gate;
/// use qb_lang::gate_diff;
/// let old = [Gate::X(0), Gate::X(1), Gate::X(2)];
/// let new = [Gate::X(0), Gate::X(1), Gate::X(3), Gate::X(4)];
/// let d = gate_diff(&old, &new);
/// assert_eq!(d.common_prefix, 2);
/// assert_eq!((d.removed, d.added), (1, 2));
/// ```
pub fn gate_diff(old: &[Gate], new: &[Gate]) -> GateDiff {
    let common_prefix = gate_common_prefix(old, new);
    GateDiff {
        common_prefix,
        removed: old.len() - common_prefix,
        added: new.len() - common_prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elaborate, parse};

    fn program(src: &str) -> ElaboratedProgram {
        elaborate(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn hash_ignores_names_and_surface_structure() {
        let a = program("let n = 2; borrow a[n]; CNOT[a[1], a[2]]; X[a[1]];");
        let b = program("borrow qq[2]; CNOT[qq[1], qq[2]]; X[qq[1]]; // comment");
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn hash_distinguishes_gates_kinds_and_widths() {
        let base = program("borrow a[2]; X[a[1]];");
        let other_gate = program("borrow a[2]; X[a[2]];");
        let other_kind = program("borrow@ a[2]; X[a[1]];");
        let wider = program("borrow a[3]; X[a[1]];");
        let more = program("borrow a[2]; X[a[1]]; X[a[1]];");
        let h = structural_hash(&base);
        assert_ne!(h, structural_hash(&other_gate));
        assert_ne!(h, structural_hash(&other_kind));
        assert_ne!(h, structural_hash(&wider));
        assert_ne!(h, structural_hash(&more));
    }

    #[test]
    fn hash_is_stable_across_elaborations() {
        let src = crate::adder_source(8);
        assert_eq!(
            structural_hash(&program(&src)),
            structural_hash(&program(&src))
        );
    }

    #[test]
    fn diff_finds_suffix_edits() {
        let old = program("borrow a[3]; X[a[1]]; X[a[2]]; X[a[3]];");
        let new = program("borrow a[3]; X[a[1]]; X[a[2]]; X[a[1]]; X[a[3]];");
        let d = gate_diff(old.circuit.gates(), new.circuit.gates());
        assert_eq!(d.common_prefix, 2);
        assert_eq!(d.removed, 1);
        assert_eq!(d.added, 2);
        assert!(!d.is_identity());

        let same = gate_diff(old.circuit.gates(), old.circuit.gates());
        assert_eq!(same.common_prefix, 3);
        assert!(same.is_identity());
    }

    #[test]
    fn diff_of_disjoint_sequences_has_empty_prefix() {
        let old = program("borrow a[2]; X[a[2]];");
        let new = program("borrow a[2]; X[a[1]];");
        let d = gate_diff(old.circuit.gates(), new.circuit.gates());
        assert_eq!(d.common_prefix, 0);
    }
}
