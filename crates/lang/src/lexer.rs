//! Tokeniser for the QBorrow surface language.
//!
//! Implements the lexical rules of the paper's ANTLR grammar (§10.3):
//! identifiers `[a-zA-Z_][a-zA-Z0-9_]*`, decimal numbers, punctuation,
//! whitespace skipping, `//` line comments and `/* */` block comments.
//! Gate keywords (`X`, `CNOT`, `CCNOT`, plus the documented extensions
//! `MCX`, `H`, `Z`, `SWAP`) are recognised as keywords rather than
//! identifiers, matching the grammar's literal tokens.

use crate::error::{LangError, Phase};
use crate::token::{Span, Token, TokenKind};

/// Tokenises `source` into a vector ending with an `Eof` token.
///
/// # Errors
///
/// Returns a [`LangError`] for unknown characters, malformed numbers or
/// unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let kind = match c {
                '=' => {
                    self.bump();
                    TokenKind::Equals
                }
                ';' => {
                    self.bump();
                    TokenKind::Semi
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                '[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                ']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                '{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                '}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                '+' => {
                    self.bump();
                    TokenKind::Plus
                }
                '-' => {
                    self.bump();
                    TokenKind::Minus
                }
                '*' => {
                    self.bump();
                    TokenKind::Star
                }
                '0'..='9' => self.number(span)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.word(),
                other => {
                    return Err(LangError::at(
                        Phase::Lex,
                        span,
                        format!("unexpected character {other:?}"),
                    ))
                }
            };
            tokens.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LangError::at(
                                    Phase::Lex,
                                    start,
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, span: Span) -> Result<TokenKind, LangError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Reject adjacency like `12abc`.
        if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == '_') {
            return Err(LangError::at(
                Phase::Lex,
                span,
                format!("malformed number '{text}...': letters may not follow digits"),
            ));
        }
        text.parse::<i64>()
            .map(TokenKind::Number)
            .map_err(|_| LangError::at(Phase::Lex, span, format!("number '{text}' overflows")))
    }

    fn word(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match text.as_str() {
            "let" => TokenKind::Let,
            "borrow" => {
                if self.peek() == Some('@') {
                    self.bump();
                    TokenKind::BorrowAt
                } else {
                    TokenKind::Borrow
                }
            }
            "alloc" => TokenKind::Alloc,
            "release" => TokenKind::Release,
            "for" => TokenKind::For,
            "to" => TokenKind::To,
            "X" => TokenKind::GateX,
            "CNOT" => TokenKind::GateCnot,
            "CCNOT" => TokenKind::GateCcnot,
            "MCX" => TokenKind::GateMcx,
            "H" => TokenKind::GateH,
            "Z" => TokenKind::GateZ,
            "SWAP" => TokenKind::GateSwap,
            _ => TokenKind::Ident(text),
        }
    }

    #[allow(dead_code)]
    fn source(&self) -> &'a str {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declarations() {
        assert_eq!(
            kinds("let n = 50;"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("n".into()),
                TokenKind::Equals,
                TokenKind::Number(50),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn borrow_at_is_one_token() {
        assert_eq!(
            kinds("borrow@ q[n];")[0..2],
            [TokenKind::BorrowAt, TokenKind::Ident("q".into())]
        );
        assert_eq!(kinds("borrow a;")[0], TokenKind::Borrow);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line comment\nlet /* inline */ n = 1; /* multi\nline */ X[q];";
        let k = kinds(src);
        assert_eq!(k[0], TokenKind::Let);
        assert!(k.contains(&TokenKind::GateX));
    }

    #[test]
    fn gate_keywords() {
        assert_eq!(
            kinds("X CNOT CCNOT MCX H Z SWAP"),
            vec![
                TokenKind::GateX,
                TokenKind::GateCnot,
                TokenKind::GateCcnot,
                TokenKind::GateMcx,
                TokenKind::GateH,
                TokenKind::GateZ,
                TokenKind::GateSwap,
                TokenKind::Eof,
            ]
        );
        // Lowercase x is an identifier, not a gate.
        assert_eq!(kinds("x")[0], TokenKind::Ident("x".into()));
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("let n = 1;\nX[q];").unwrap();
        let x = toks.iter().find(|t| t.kind == TokenKind::GateX).unwrap();
        assert_eq!(x.span.line, 2);
        assert_eq!(x.span.col, 1);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("let n = $;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.span.unwrap().col, 9);
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(lex("12abc").is_err());
    }

    #[test]
    fn arithmetic_operators() {
        assert_eq!(
            kinds("(n - 1) * 2 + i"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("n".into()),
                TokenKind::Minus,
                TokenKind::Number(1),
                TokenKind::RParen,
                TokenKind::Star,
                TokenKind::Number(2),
                TokenKind::Plus,
                TokenKind::Ident("i".into()),
                TokenKind::Eof,
            ]
        );
    }
}
