//! Language-level errors with source positions.

use crate::token::Span;
use std::fmt;

/// The processing phase an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Elaboration (name resolution, loop unrolling, qubit allocation).
    Elaborate,
    /// Denotational semantics evaluation.
    Semantics,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Elaborate => "elaborate",
            Phase::Semantics => "semantics",
        };
        write!(f, "{s}")
    }
}

/// An error produced while processing a QBorrow program.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Which phase failed.
    pub phase: Phase,
    /// Human-readable description.
    pub message: String,
    /// Source position, when known.
    pub span: Option<Span>,
}

impl LangError {
    /// Creates an error with a position.
    pub fn at(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a position-less error.
    pub fn new(phase: Phase, message: impl Into<String>) -> Self {
        LangError {
            phase,
            message: message.into(),
            span: None,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} error at {}: {}", self.phase, span, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = LangError::at(Phase::Parse, Span { line: 3, col: 7 }, "unexpected ';'");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected ';'");
        let e = LangError::new(Phase::Semantics, "no idle qubits");
        assert_eq!(e.to_string(), "semantics error: no idle qubits");
    }
}
