//! Symbolic Boolean execution of classical circuits (paper §6.1, Fig. 6.1).
//!
//! Each qubit `q` is tracked by a Boolean formula `b_q` over the initial
//! values, updated by a single linear scan of the circuit:
//!
//! * `X[q]`            — `b_q := ¬b_q`;
//! * `CᵐNOT[c̄, q]`     — `b_q := b_q ⊕ (b_{c₁} ∧ ⋯ ∧ b_{cₘ})`;
//! * `SWAP[a, b]`      — exchange `b_a` and `b_b`.
//!
//! Clean (`alloc`) qubits start at the constant `0` rather than a fresh
//! variable, which the verifier exploits: conditions become easier when
//! part of the input is known.

use qb_circuit::{Circuit, Gate};
use qb_formula::{Arena, NodeId, Simplify, Var};
use std::fmt;

/// The initial symbolic value of a qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialValue {
    /// An unconstrained input (dirty qubit or working qubit): a fresh
    /// Boolean variable (the paper's default for every qubit).
    Free,
    /// A clean qubit known to start in `|0⟩`.
    Zero,
}

/// Error: the circuit leaves the classical fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotClassicalCircuit {
    /// Mnemonic of the offending gate.
    pub gate: &'static str,
    /// Gate position in the circuit.
    pub position: usize,
}

impl fmt::Display for NotClassicalCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "symbolic execution requires a classical circuit; gate '{}' at \
             position {} is not X/CNOT/Toffoli/MCX/SWAP",
            self.gate, self.position
        )
    }
}

impl std::error::Error for NotClassicalCircuit {}

/// The result of symbolically executing a circuit: one formula per qubit.
#[derive(Debug, Clone)]
pub struct SymbolicState {
    /// The formula store (shared sub-circuits interned once).
    pub arena: Arena,
    /// `formulas[q]` is `b_q`, the final value of qubit `q` as a function
    /// of the initial values.
    pub formulas: Vec<NodeId>,
    /// The Boolean variable backing each qubit's initial value (also
    /// assigned to [`InitialValue::Zero`] qubits, where it is unused).
    pub vars: Vec<Var>,
}

impl SymbolicState {
    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.formulas.len()
    }

    /// Shared node count of all final formulas (a size diagnostic).
    pub fn formula_size(&self) -> usize {
        self.arena.reachable_size(&self.formulas)
    }
}

/// Symbolically executes `circuit` from the given initial values.
///
/// # Errors
///
/// Returns [`NotClassicalCircuit`] if a gate outside the classical
/// fragment occurs.
///
/// # Panics
///
/// Panics when `initial.len() != circuit.num_qubits()`.
///
/// # Examples
///
/// Reproduce the Fig. 6.1 table for the CCCNOT-with-dirty-qubit circuit:
///
/// ```
/// use qb_circuit::Circuit;
/// use qb_core::{symbolic_execute, InitialValue};
/// use qb_formula::Simplify;
///
/// // Wires: q1 q2 a q3 q4 (a at index 2).
/// let mut c = Circuit::new(5);
/// c.toffoli(0, 1, 2).toffoli(2, 3, 4).toffoli(0, 1, 2).toffoli(2, 3, 4);
/// let s = symbolic_execute(&c, &[InitialValue::Free; 5], Simplify::Full).unwrap();
/// // b_a collapses back to `a` (third row of Fig. 6.1).
/// assert_eq!(s.formulas[2], s.arena.find_var(2).unwrap());
/// ```
pub fn symbolic_execute(
    circuit: &Circuit,
    initial: &[InitialValue],
    mode: Simplify,
) -> Result<SymbolicState, NotClassicalCircuit> {
    assert_eq!(
        initial.len(),
        circuit.num_qubits(),
        "one initial value per qubit required"
    );
    let mut arena = Arena::new(mode);
    let n = circuit.num_qubits();
    let vars: Vec<Var> = (0..n as Var).collect();
    let mut formulas = initial_formulas(&mut arena, initial);
    symbolic_apply(&mut arena, &mut formulas, circuit.gates(), 0)?;
    Ok(SymbolicState {
        arena,
        formulas,
        vars,
    })
}

/// The per-qubit formulas before any gate: a fresh variable for `Free`
/// qubits, the `false` constant for clean ones. Interns against whatever
/// `arena` already holds, so replays into a persistent session arena
/// reproduce identical node ids.
pub(crate) fn initial_formulas(arena: &mut Arena, initial: &[InitialValue]) -> Vec<NodeId> {
    initial
        .iter()
        .enumerate()
        .map(|(q, init)| match init {
            InitialValue::Free => arena.var(q as Var),
            InitialValue::Zero => arena.constant(false),
        })
        .collect()
}

/// Applies `gates` to `formulas` in place — the Fig. 6.1 linear-scan step
/// factored out so edit-incremental sessions can replay a gate-sequence
/// prefix into a persistent arena (hash-consing makes the replay
/// allocation-free for structure the arena already holds) and then
/// continue with an edited suffix. `position_offset` only offsets gate
/// positions in error reports.
pub(crate) fn symbolic_apply(
    arena: &mut Arena,
    formulas: &mut [NodeId],
    gates: &[Gate],
    position_offset: usize,
) -> Result<(), NotClassicalCircuit> {
    for (position, gate) in gates.iter().enumerate() {
        match gate {
            Gate::X(q) => {
                formulas[*q] = arena.not(formulas[*q]);
            }
            Gate::Cnot { c, t } => {
                formulas[*t] = arena.xor2(formulas[*t], formulas[*c]);
            }
            Gate::Toffoli { c1, c2, t } => {
                let prod = arena.and2(formulas[*c1], formulas[*c2]);
                formulas[*t] = arena.xor2(formulas[*t], prod);
            }
            Gate::Mcx { controls, target } => {
                let operands: Vec<NodeId> = controls.iter().map(|&c| formulas[c]).collect();
                let prod = arena.and(&operands);
                formulas[*target] = arena.xor2(formulas[*target], prod);
            }
            Gate::Swap(a, b) => {
                formulas.swap(*a, *b);
            }
            other => {
                return Err(NotClassicalCircuit {
                    gate: other.name(),
                    position: position + position_offset,
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_circuit::{simulate_classical, BitState};

    fn free(n: usize) -> Vec<InitialValue> {
        vec![InitialValue::Free; n]
    }

    /// Oracle: evaluating the formulas equals running the bit simulator.
    fn assert_matches_simulation(circuit: &Circuit, initial: &[InitialValue], mode: Simplify) {
        let n = circuit.num_qubits();
        let state = symbolic_execute(circuit, initial, mode).unwrap();
        for bits in 0..(1u64 << n) {
            let env: Vec<bool> = (0..n)
                .map(|q| match initial[q] {
                    InitialValue::Zero => false,
                    InitialValue::Free => bits >> q & 1 == 1,
                })
                .collect();
            let input = BitState::from_bits(&env);
            let output = simulate_classical(circuit, &input).unwrap();
            let values = state.arena.eval_all(&env);
            for q in 0..n {
                assert_eq!(
                    values[state.formulas[q].index()],
                    output.get(q),
                    "qubit {q}, input {bits:b}, mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn fig_6_1_formula_table() {
        // The right-hand circuit of Fig. 1.3 treated with `a` concrete:
        // wires q1 q2 a q3 q4 at indices 0 1 2 3 4.
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 2) // 1st gate
            .toffoli(2, 3, 4) // 2nd gate
            .toffoli(0, 1, 2) // 3rd gate
            .toffoli(2, 3, 4); // 4th gate
        let s = symbolic_execute(&c, &free(5), Simplify::Full).unwrap();
        let names = |v: Var| ["q1", "q2", "a", "q3", "q4"][v as usize].to_string();

        // Final row of Fig. 6.1: b_{q1}=q1, b_{q2}=q2, b_a=a, b_{q3}=q3,
        // b_{q4}= q4 ⊕ q3(a ⊕ q1q2) ⊕ q3a — which simplifies to
        // q4 ⊕ q1q2q3 under distribution… but the paper's table keeps the
        // unexpanded form; our canonical XAG agrees on the function.
        assert_eq!(s.arena.render(s.formulas[0], &names), "q1");
        assert_eq!(s.arena.render(s.formulas[1], &names), "q2");
        assert_eq!(s.arena.render(s.formulas[2], &names), "a");
        assert_eq!(s.arena.render(s.formulas[3], &names), "q3");
        // b_{q4} is q4 ⊕ q3·(a ⊕ q1q2) ⊕ q3·a as a function.
        let q4 = s.formulas[4];
        for bits in 0..32u32 {
            let env: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let (q1, q2, a, q3, q4v) = (env[0], env[1], env[2], env[3], env[4]);
            let expect = q4v ^ (q3 & (a ^ (q1 & q2))) ^ (q3 & a);
            assert_eq!(s.arena.eval(q4, &env), expect);
        }
    }

    #[test]
    fn intermediate_simplification_matches_fig_6_1_third_row() {
        // After the 3rd gate the paper simplifies b_a = a ⊕ q1q2 ⊕ q1q2 to
        // a using x ⊕ x = 0.
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).toffoli(0, 1, 2);
        let s = symbolic_execute(&c, &free(3), Simplify::Full).unwrap();
        let a_var = s.arena.clone();
        let _ = a_var;
        let names = |v: Var| ["q1", "q2", "a"][v as usize].to_string();
        assert_eq!(s.arena.render(s.formulas[2], &names), "a");
    }

    #[test]
    fn raw_mode_preserves_function_not_structure() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).toffoli(0, 1, 2);
        assert_matches_simulation(&c, &free(3), Simplify::Raw);
        let s = symbolic_execute(&c, &free(3), Simplify::Raw).unwrap();
        // Raw mode keeps both XOR layers.
        assert!(s.formula_size() > 4);
    }

    #[test]
    fn clean_qubits_start_at_zero() {
        let mut c = Circuit::new(2);
        c.cnot(1, 0); // q0 ⊕= q1 (clean) — no-op when q1 = 0
        let s = symbolic_execute(
            &c,
            &[InitialValue::Free, InitialValue::Zero],
            Simplify::Full,
        )
        .unwrap();
        // b_{q0} stays the variable q0.
        assert_eq!(s.formulas[0], s.arena.find_var(0).unwrap());
        assert_eq!(s.formulas[1], s.arena.constant(false));
    }

    #[test]
    fn swap_exchanges_formulas() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        assert_matches_simulation(&c, &free(2), Simplify::Full);
        let s = symbolic_execute(&c, &free(2), Simplify::Full).unwrap();
        // b_{q1} = ¬q0 after the swap.
        let names = |v: Var| format!("q{v}");
        assert_eq!(s.arena.render(s.formulas[1], &names), "~q0");
        assert_eq!(s.arena.render(s.formulas[0], &names), "q1");
    }

    #[test]
    fn mcx_takes_product_of_all_controls() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3);
        assert_matches_simulation(&c, &free(4), Simplify::Full);
        assert_matches_simulation(&c, &free(4), Simplify::Raw);
    }

    #[test]
    fn non_classical_gate_is_rejected() {
        let mut c = Circuit::new(1);
        c.h(0);
        let err = symbolic_execute(&c, &free(1), Simplify::Full).unwrap_err();
        assert_eq!(err.gate, "h");
        assert_eq!(err.position, 0);
    }

    #[test]
    fn adder_gadget_formulas_match_simulation() {
        use qb_lang::{adder_source, elaborate, parse};
        let e = elaborate(&parse(&adder_source(5)).unwrap()).unwrap();
        for mode in [Simplify::Raw, Simplify::Full] {
            assert_matches_simulation(&e.circuit, &free(e.num_qubits()), mode);
        }
    }
}
