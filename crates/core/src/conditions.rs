//! The Boolean verification conditions of §6.1 (formulas (6.1), (6.2)).
//!
//! For a dirty qubit `q` in a classical circuit with final formulas
//! `b_{q'}`:
//!
//! * **Zero condition** (6.1): `¬(b_q → q)` must be unsatisfiable — the
//!   circuit restores `|0⟩` on `q` (given the permutation property this
//!   also forces `|1⟩` restoration);
//! * **Plus condition** (6.2): `⋁_{q'≠q} b_{q'}[0/q] ⊕ b_{q'}[1/q]` must
//!   be unsatisfiable — every other qubit's final value is independent of
//!   `q`, which is exactly restoration of `|+⟩` (Thm. 6.2/6.4).
//!
//! The naive *clean-uncomputation* condition (`b_q ⊕ q` unsatisfiable,
//! i.e. basis states are restored) is also provided: it is what the
//! introduction's Fig. 1.4 counterexample satisfies while still being
//! unsafe as a dirty qubit.

use crate::symbolic::SymbolicState;
use qb_formula::{NodeId, NodeRemap, Var};
use std::collections::HashMap;

/// The two §6.1 conditions, as roots in the state's arena.
#[derive(Debug, Clone)]
pub struct Conditions {
    /// Root of formula (6.1); safe iff unsatisfiable.
    pub zero: NodeId,
    /// The per-qubit disjuncts of formula (6.2) (one XOR-difference per
    /// other qubit); safe iff *all* are unsatisfiable.
    pub plus_parts: Vec<NodeId>,
}

/// Builds both conditions for dirty qubit `q` (appends nodes to the
/// state's arena).
///
/// # Panics
///
/// Panics when `q` is out of range.
pub fn build_conditions(state: &mut SymbolicState, q: usize) -> Conditions {
    assert!(q < state.num_qubits(), "qubit out of range");
    let var: Var = state.vars[q];

    // (6.1): b_q ∧ ¬q.
    let b_q = state.formulas[q];
    let q_node = state.arena.var(var);
    let not_q = state.arena.not(q_node);
    let zero = state.arena.and2(b_q, not_q);

    // (6.2): for each other qubit, b_{q'}[0/q] ⊕ b_{q'}[1/q]. The
    // cofactor is restricted to nodes reachable from the final formulas,
    // so session arenas that have accumulated earlier targets' cofactor
    // nodes don't pay (or grow) for dead structure.
    let formulas = state.formulas.clone();
    let cof0 = state.arena.cofactor_reachable(&formulas, var, false);
    let cof1 = state.arena.cofactor_reachable(&formulas, var, true);
    let mut plus_parts = Vec::with_capacity(state.num_qubits().saturating_sub(1));
    for q_prime in 0..state.num_qubits() {
        if q_prime == q {
            continue;
        }
        let f = state.formulas[q_prime];
        // Hash-consing makes cofactor identity visible: identical node
        // ids mean `b_{q'}` is independent of `q`, so the XOR difference
        // is identically false and the disjunct can be dropped without
        // consulting a backend.
        if cof0[f.index()] == cof1[f.index()] {
            continue;
        }
        let diff = state.arena.xor2(cof0[f.index()], cof1[f.index()]);
        plus_parts.push(diff);
    }
    Conditions { zero, plus_parts }
}

/// A session-level memo of per-root cofactors, keyed by
/// `(root, var, value)`.
///
/// Rebuilding the (6.2) disjuncts is the backend-independent floor of a
/// warm sweep: two [`qb_formula::Arena::cofactor_reachable`] passes over
/// the whole live formula graph per target, even when hash-consing
/// re-derives every node id unchanged. The arena is append-only, so a
/// root's id permanently denotes one function and its cofactor under
/// `(var, value)` is fixed — which makes the result memoisable across
/// sweeps *and edits*: after a suffix edit, only formulas whose node id
/// actually changed recompute their cofactor cones; every other root is
/// a map lookup.
#[derive(Debug, Default)]
pub(crate) struct CofactorMemo {
    map: HashMap<(NodeId, Var, bool), NodeId>,
    hits: u64,
    misses: u64,
    /// Entries the most recent primed sweep needs resident all at once
    /// (2 · vars · roots). The flush bound never drops below a multiple
    /// of this, so a paper-scale sweep (adder-512 primes ≈ 1M entries)
    /// is not wiped by the pathological-edit-stream cap mid-sweep.
    sweep_floor: usize,
}

/// Flush bound: the memo holds (formula × target-var × 2) entries per
/// circuit shape, but a pathological edit stream could grow it without
/// bound, so it is cleared wholesale past this size (a rare, cheap,
/// correctness-free event). The effective bound is raised to a multiple
/// of the last primed sweep's working set (see
/// [`CofactorMemo::sweep_floor`]), which a whole-circuit sweep needs
/// resident simultaneously.
const COFACTOR_MEMO_CAP: usize = 1 << 14;

/// Headroom multiplier over the primed working set before a flush.
const COFACTOR_MEMO_SLACK: usize = 4;

impl CofactorMemo {
    /// Memoised sweep: ensures `(f, var, val)` is cached for every root
    /// in `formulas`, running one restricted cofactor pass over the
    /// missing roots only.
    fn ensure(&mut self, state: &mut SymbolicState, formulas: &[NodeId], var: Var, val: bool) {
        let missing: Vec<NodeId> = formulas
            .iter()
            .copied()
            .filter(|&f| !self.map.contains_key(&(f, var, val)))
            .collect();
        self.hits += (formulas.len() - missing.len()) as u64;
        if missing.is_empty() {
            return;
        }
        self.misses += missing.len() as u64;
        let map = state.arena.cofactor_reachable(&missing, var, val);
        for f in missing {
            self.map.insert((f, var, val), map[f.index()]);
        }
    }

    /// Batched warm-up for a whole sweep: ensures the cofactor pairs of
    /// every root in `formulas` under every variable in `vars` are
    /// memoised, computing all missing cones in **one** shared arena
    /// traversal ([`qb_formula::Arena::cofactor_batch`]). Cold
    /// multi-target construction drops from O(k·DAG) to
    /// O(DAG + Σ cones); warm sweeps skip the traversal entirely.
    pub(crate) fn prime(&mut self, state: &mut SymbolicState, vars: &[Var]) {
        let formulas = state.formulas.clone();
        self.sweep_floor = 2 * vars.len() * formulas.len();
        let missing: Vec<Var> = vars
            .iter()
            .copied()
            .filter(|&v| {
                formulas.iter().any(|&f| {
                    !self.map.contains_key(&(f, v, false)) || !self.map.contains_key(&(f, v, true))
                })
            })
            .collect();
        if missing.is_empty() {
            return;
        }
        let pairs = state.arena.cofactor_batch(&formulas, &missing);
        for (vi, &var) in missing.iter().enumerate() {
            for (ri, &f) in formulas.iter().enumerate() {
                let (c0, c1) = pairs[vi][ri];
                if self.map.insert((f, var, false), c0).is_none() {
                    self.misses += 1;
                }
                if self.map.insert((f, var, true), c1).is_none() {
                    self.misses += 1;
                }
            }
        }
    }

    /// Appends the cofactor nodes of every entry whose root is a
    /// *current* formula to `roots` — the live set an arena collection
    /// must preserve. A batch-primed sweep's cones are reachable only
    /// through the memo until their targets are verified; without this,
    /// a mid-sweep collection would reclaim them and silently revert
    /// construction to the per-target path. Entries for stale roots
    /// (pre-edit formulas) are deliberately *not* kept alive: they are
    /// only useful again if an edit restores the old node ids, in which
    /// case hash-consing re-derives them.
    pub(crate) fn extend_live_roots(
        &self,
        roots: &mut Vec<NodeId>,
        current: &std::collections::HashSet<NodeId>,
    ) {
        for ((root, _, _), &cof) in &self.map {
            if current.contains(root) {
                roots.push(cof);
            }
        }
    }

    /// Entries currently memoised.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Lookups answered without a cofactor pass.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Follows an arena collection: keys and values are rewritten
    /// through `remap`; entries touching a collected node are dropped
    /// (sound — a collected id is never issued for its old structure
    /// again).
    pub(crate) fn remap_nodes(&mut self, remap: &NodeRemap) {
        let map = std::mem::take(&mut self.map);
        for ((root, var, val), cof) in map {
            if let (Some(root), Some(cof)) = (remap.remap(root), remap.remap(cof)) {
                self.map.insert((root, var, val), cof);
            }
        }
    }
}

/// [`build_conditions`] with a session cofactor memo: identical output
/// (hash-consing makes the memoised and recomputed node ids equal), but
/// warm sweeps skip the per-target graph walks entirely.
pub(crate) fn build_conditions_memo(
    state: &mut SymbolicState,
    q: usize,
    memo: &mut CofactorMemo,
) -> Conditions {
    assert!(q < state.num_qubits(), "qubit out of range");
    // Flush up front (never between the sweeps and the lookups below,
    // which rely on the entries both sweeps just ensured). The bound
    // respects the working set of a primed whole-circuit sweep.
    let cap = COFACTOR_MEMO_CAP.max(COFACTOR_MEMO_SLACK * memo.sweep_floor);
    if memo.map.len() > cap {
        memo.map.clear();
    }
    let var: Var = state.vars[q];

    // (6.1): b_q ∧ ¬q.
    let b_q = state.formulas[q];
    let q_node = state.arena.var(var);
    let not_q = state.arena.not(q_node);
    let zero = state.arena.and2(b_q, not_q);

    // (6.2): per-qubit cofactor diffs, served from the memo.
    let formulas = state.formulas.clone();
    memo.ensure(state, &formulas, var, false);
    memo.ensure(state, &formulas, var, true);
    let mut plus_parts = Vec::with_capacity(state.num_qubits().saturating_sub(1));
    for q_prime in 0..state.num_qubits() {
        if q_prime == q {
            continue;
        }
        let f = state.formulas[q_prime];
        let cof0 = memo.map[&(f, var, false)];
        let cof1 = memo.map[&(f, var, true)];
        if cof0 == cof1 {
            continue;
        }
        let diff = state.arena.xor2(cof0, cof1);
        plus_parts.push(diff);
    }
    Conditions { zero, plus_parts }
}

/// Builds the naive clean-uncomputation condition for `q`: `b_q ⊕ q`,
/// unsatisfiable exactly when every computational-basis value of `q` is
/// restored. Sufficient for *clean* ancilla reuse, insufficient for dirty
/// qubits (paper §1, Fig. 1.4).
pub fn build_clean_condition(state: &mut SymbolicState, q: usize) -> NodeId {
    assert!(q < state.num_qubits(), "qubit out of range");
    let var = state.vars[q];
    let b_q = state.formulas[q];
    let q_node = state.arena.var(var);
    state.arena.xor2(b_q, q_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{symbolic_execute, InitialValue};
    use qb_circuit::Circuit;
    use qb_formula::{Anf, Simplify};

    fn exec(c: &Circuit, mode: Simplify) -> SymbolicState {
        symbolic_execute(c, &vec![InitialValue::Free; c.num_qubits()], mode).unwrap()
    }

    fn all_unsat(state: &SymbolicState, roots: &[NodeId]) -> bool {
        Anf::from_arena(&state.arena, roots, 1 << 20)
            .unwrap()
            .iter()
            .all(Anf::is_zero)
    }

    #[test]
    fn cccnot_dirty_qubit_passes_both_conditions() {
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 2)
            .toffoli(2, 3, 4)
            .toffoli(0, 1, 2)
            .toffoli(2, 3, 4);
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let conds = build_conditions(&mut s, 2);
            assert!(all_unsat(&s, &[conds.zero]), "zero condition, {mode:?}");
            assert!(all_unsat(&s, &conds.plus_parts), "plus condition, {mode:?}");
        }
    }

    #[test]
    fn fig_1_4_clean_safe_but_dirty_unsafe() {
        // CNOT with the dirty qubit as control: basis values of `a` are
        // restored (clean-safe) but the target leaks a's value.
        let mut c = Circuit::new(2);
        c.cnot(0, 1); // a = qubit 0
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let clean = build_clean_condition(&mut s, 0);
            assert!(all_unsat(&s, &[clean]), "clean condition should pass");
            let conds = build_conditions(&mut s, 0);
            assert!(all_unsat(&s, &[conds.zero]), "zero condition passes");
            assert!(
                !all_unsat(&s, &conds.plus_parts),
                "plus condition must fail: |+> is not restored"
            );
        }
    }

    #[test]
    fn x_on_dirty_qubit_fails_zero_condition() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut s = exec(&c, Simplify::Full);
        let conds = build_conditions(&mut s, 0);
        assert!(!all_unsat(&s, &[conds.zero]));
    }

    #[test]
    fn plus_parts_skip_structurally_independent_qubits() {
        // The double Toffoli is the identity: every b_{q'} is its own
        // input variable, so no other qubit depends on q2 and every
        // disjunct is dropped structurally.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2).toffoli(0, 1, 2);
        let mut s = exec(&c, Simplify::Full);
        let conds = build_conditions(&mut s, 2);
        assert!(conds.plus_parts.is_empty());

        // A leaking Toffoli keeps exactly the dependent target's part.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let conds = build_conditions(&mut s, 0);
            assert_eq!(conds.plus_parts.len(), 1, "{mode:?}: only q2 depends on q0");
        }
    }

    #[test]
    fn clean_start_makes_more_circuits_safe() {
        // q1 ⊕= q0 where q0 is clean: b_{q1} is unchanged, so q0 is
        // trivially safe — the clean initial value removes the leak.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let mut s = symbolic_execute(
            &c,
            &[InitialValue::Zero, InitialValue::Free],
            Simplify::Full,
        )
        .unwrap();
        let conds = build_conditions(&mut s, 0);
        assert!(all_unsat(&s, &[conds.zero]));
        assert!(all_unsat(&s, &conds.plus_parts));
    }
}
