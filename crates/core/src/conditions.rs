//! The Boolean verification conditions of §6.1 (formulas (6.1), (6.2)).
//!
//! For a dirty qubit `q` in a classical circuit with final formulas
//! `b_{q'}`:
//!
//! * **Zero condition** (6.1): `¬(b_q → q)` must be unsatisfiable — the
//!   circuit restores `|0⟩` on `q` (given the permutation property this
//!   also forces `|1⟩` restoration);
//! * **Plus condition** (6.2): `⋁_{q'≠q} b_{q'}[0/q] ⊕ b_{q'}[1/q]` must
//!   be unsatisfiable — every other qubit's final value is independent of
//!   `q`, which is exactly restoration of `|+⟩` (Thm. 6.2/6.4).
//!
//! The naive *clean-uncomputation* condition (`b_q ⊕ q` unsatisfiable,
//! i.e. basis states are restored) is also provided: it is what the
//! introduction's Fig. 1.4 counterexample satisfies while still being
//! unsafe as a dirty qubit.

use crate::symbolic::SymbolicState;
use qb_formula::{NodeId, Var};

/// The two §6.1 conditions, as roots in the state's arena.
#[derive(Debug, Clone)]
pub struct Conditions {
    /// Root of formula (6.1); safe iff unsatisfiable.
    pub zero: NodeId,
    /// The per-qubit disjuncts of formula (6.2) (one XOR-difference per
    /// other qubit); safe iff *all* are unsatisfiable.
    pub plus_parts: Vec<NodeId>,
}

/// Builds both conditions for dirty qubit `q` (appends nodes to the
/// state's arena).
///
/// # Panics
///
/// Panics when `q` is out of range.
pub fn build_conditions(state: &mut SymbolicState, q: usize) -> Conditions {
    assert!(q < state.num_qubits(), "qubit out of range");
    let var: Var = state.vars[q];

    // (6.1): b_q ∧ ¬q.
    let b_q = state.formulas[q];
    let q_node = state.arena.var(var);
    let not_q = state.arena.not(q_node);
    let zero = state.arena.and2(b_q, not_q);

    // (6.2): for each other qubit, b_{q'}[0/q] ⊕ b_{q'}[1/q]. The
    // cofactor is restricted to nodes reachable from the final formulas,
    // so session arenas that have accumulated earlier targets' cofactor
    // nodes don't pay (or grow) for dead structure.
    let formulas = state.formulas.clone();
    let cof0 = state.arena.cofactor_reachable(&formulas, var, false);
    let cof1 = state.arena.cofactor_reachable(&formulas, var, true);
    let mut plus_parts = Vec::with_capacity(state.num_qubits().saturating_sub(1));
    for q_prime in 0..state.num_qubits() {
        if q_prime == q {
            continue;
        }
        let f = state.formulas[q_prime];
        // Hash-consing makes cofactor identity visible: identical node
        // ids mean `b_{q'}` is independent of `q`, so the XOR difference
        // is identically false and the disjunct can be dropped without
        // consulting a backend.
        if cof0[f.index()] == cof1[f.index()] {
            continue;
        }
        let diff = state.arena.xor2(cof0[f.index()], cof1[f.index()]);
        plus_parts.push(diff);
    }
    Conditions { zero, plus_parts }
}

/// Builds the naive clean-uncomputation condition for `q`: `b_q ⊕ q`,
/// unsatisfiable exactly when every computational-basis value of `q` is
/// restored. Sufficient for *clean* ancilla reuse, insufficient for dirty
/// qubits (paper §1, Fig. 1.4).
pub fn build_clean_condition(state: &mut SymbolicState, q: usize) -> NodeId {
    assert!(q < state.num_qubits(), "qubit out of range");
    let var = state.vars[q];
    let b_q = state.formulas[q];
    let q_node = state.arena.var(var);
    state.arena.xor2(b_q, q_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{symbolic_execute, InitialValue};
    use qb_circuit::Circuit;
    use qb_formula::{Anf, Simplify};

    fn exec(c: &Circuit, mode: Simplify) -> SymbolicState {
        symbolic_execute(c, &vec![InitialValue::Free; c.num_qubits()], mode).unwrap()
    }

    fn all_unsat(state: &SymbolicState, roots: &[NodeId]) -> bool {
        Anf::from_arena(&state.arena, roots, 1 << 20)
            .unwrap()
            .iter()
            .all(Anf::is_zero)
    }

    #[test]
    fn cccnot_dirty_qubit_passes_both_conditions() {
        let mut c = Circuit::new(5);
        c.toffoli(0, 1, 2)
            .toffoli(2, 3, 4)
            .toffoli(0, 1, 2)
            .toffoli(2, 3, 4);
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let conds = build_conditions(&mut s, 2);
            assert!(all_unsat(&s, &[conds.zero]), "zero condition, {mode:?}");
            assert!(all_unsat(&s, &conds.plus_parts), "plus condition, {mode:?}");
        }
    }

    #[test]
    fn fig_1_4_clean_safe_but_dirty_unsafe() {
        // CNOT with the dirty qubit as control: basis values of `a` are
        // restored (clean-safe) but the target leaks a's value.
        let mut c = Circuit::new(2);
        c.cnot(0, 1); // a = qubit 0
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let clean = build_clean_condition(&mut s, 0);
            assert!(all_unsat(&s, &[clean]), "clean condition should pass");
            let conds = build_conditions(&mut s, 0);
            assert!(all_unsat(&s, &[conds.zero]), "zero condition passes");
            assert!(
                !all_unsat(&s, &conds.plus_parts),
                "plus condition must fail: |+> is not restored"
            );
        }
    }

    #[test]
    fn x_on_dirty_qubit_fails_zero_condition() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut s = exec(&c, Simplify::Full);
        let conds = build_conditions(&mut s, 0);
        assert!(!all_unsat(&s, &[conds.zero]));
    }

    #[test]
    fn plus_parts_skip_structurally_independent_qubits() {
        // The double Toffoli is the identity: every b_{q'} is its own
        // input variable, so no other qubit depends on q2 and every
        // disjunct is dropped structurally.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2).toffoli(0, 1, 2);
        let mut s = exec(&c, Simplify::Full);
        let conds = build_conditions(&mut s, 2);
        assert!(conds.plus_parts.is_empty());

        // A leaking Toffoli keeps exactly the dependent target's part.
        let mut c = Circuit::new(4);
        c.toffoli(0, 1, 2);
        for mode in [Simplify::Raw, Simplify::Full] {
            let mut s = exec(&c, mode);
            let conds = build_conditions(&mut s, 0);
            assert_eq!(conds.plus_parts.len(), 1, "{mode:?}: only q2 depends on q0");
        }
    }

    #[test]
    fn clean_start_makes_more_circuits_safe() {
        // q1 ⊕= q0 where q0 is clean: b_{q1} is unchanged, so q0 is
        // trivially safe — the clean initial value removes the leak.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let mut s = symbolic_execute(
            &c,
            &[InitialValue::Zero, InitialValue::Free],
            Simplify::Full,
        )
        .unwrap();
        let conds = build_conditions(&mut s, 0);
        assert!(all_unsat(&s, &[conds.zero]));
        assert!(all_unsat(&s, &conds.plus_parts));
    }
}
