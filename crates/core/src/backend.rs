//! Decision backends for the verification conditions.
//!
//! The paper discharges its Boolean queries with CVC5 and Bitwuzla; this
//! reproduction offers three independent, complete in-repo procedures:
//!
//! * [`BackendKind::Sat`] — Tseitin encoding + the `qb-sat` CDCL solver
//!   (the workhorse; produces concrete counterexample models);
//! * [`BackendKind::Anf`] — canonical algebraic-normal-form
//!   normalisation: a formula is unsatisfiable iff its ANF is `0`. Exact
//!   but may blow up (reported as [`BackendError::AnfOverflow`]);
//! * [`BackendKind::Bdd`] — reduced ordered BDDs in circuit variable
//!   order: unsatisfiable iff the diagram is the `0` terminal.
//!
//! Mirroring the paper's CVC5-vs-Bitwuzla comparison, the backends have
//! different scaling behaviour on the two benchmark families (see
//! EXPERIMENTS.md).

use qb_bdd::Bdd;
use qb_formula::{encode, Anf, Arena, NodeId, Var};
use qb_sat::{Lit, SatResult, Solver};
use std::collections::HashMap;
use std::fmt;

/// Which decision procedure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// CDCL SAT on the Tseitin encoding.
    #[default]
    Sat,
    /// Canonical ANF normalisation.
    Anf,
    /// Reduced ordered BDDs.
    Bdd,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::Sat => "sat",
            BackendKind::Anf => "anf",
            BackendKind::Bdd => "bdd",
        };
        write!(f, "{s}")
    }
}

/// Backend failure (distinct from a condition being violated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The ANF backend exceeded its term cap.
    AnfOverflow {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::AnfOverflow { cap } => {
                write!(f, "ANF backend exceeded {cap} terms; use SAT or BDD")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Outcome of deciding one condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// `true` when the disjunction of the roots is unsatisfiable (the
    /// condition holds).
    pub unsat: bool,
    /// A satisfying assignment of the *circuit input variables* when the
    /// condition is violated and the backend can produce one (SAT and BDD
    /// backends; ANF reports `None`).
    pub model: Option<HashMap<Var, bool>>,
    /// Backend-specific size statistic: CNF clauses, total ANF terms, or
    /// peak BDD nodes.
    pub size: usize,
}

/// Per-backend knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendOptions {
    /// Term cap for the ANF backend.
    pub anf_cap: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions { anf_cap: 1 << 22 }
    }
}

/// Decides whether `⋁ roots` is unsatisfiable over `arena`.
///
/// The SAT backend materialises the disjunction exactly as the paper's
/// formula (6.2) does (one query); the ANF and BDD backends decide each
/// disjunct separately (the disjunction is unsatisfiable iff every
/// disjunct is), which avoids needless structure.
///
/// # Errors
///
/// Returns [`BackendError`] when the chosen backend cannot complete.
pub fn decide_unsat(
    arena: &mut Arena,
    roots: &[NodeId],
    kind: BackendKind,
    opts: &BackendOptions,
) -> Result<Decision, BackendError> {
    match kind {
        BackendKind::Sat => Ok(decide_sat(arena, roots)),
        BackendKind::Anf => decide_anf(arena, roots, opts.anf_cap),
        BackendKind::Bdd => Ok(decide_bdd(arena, roots)),
    }
}

fn decide_sat(arena: &mut Arena, roots: &[NodeId]) -> Decision {
    let enc = encode(arena, roots);
    let mut solver = Solver::from_cnf(&enc.cnf);
    // Assert the disjunction: at least one root literal true. A fresh
    // selector clause keeps the encoding satisfiability-equivalent.
    let clause: Vec<Lit> = enc.root_lits.iter().map(|&l| Lit::from_dimacs(l)).collect();
    let size = enc.cnf.clauses().len() + 1;
    if clause.is_empty() {
        return Decision {
            unsat: true,
            model: None,
            size,
        };
    }
    let ok = solver_add_clause(&mut solver, &clause);
    if !ok {
        return Decision {
            unsat: true,
            model: None,
            size,
        };
    }
    match solver.solve() {
        SatResult::Unsat => Decision {
            unsat: true,
            model: None,
            size,
        },
        SatResult::Sat => {
            let model = solver.model();
            let mut assignment = HashMap::new();
            for (&var, &lit) in &enc.var_lits {
                let idx = (lit.unsigned_abs() - 1) as usize;
                let value = model.get(idx).copied().unwrap_or(false);
                assignment.insert(var, if lit > 0 { value } else { !value });
            }
            Decision {
                unsat: false,
                model: Some(assignment),
                size,
            }
        }
    }
}

fn solver_add_clause(solver: &mut Solver, clause: &[Lit]) -> bool {
    solver.add_clause(clause)
}

fn decide_anf(arena: &Arena, roots: &[NodeId], cap: usize) -> Result<Decision, BackendError> {
    let polys =
        Anf::from_arena(arena, roots, cap).map_err(|e| BackendError::AnfOverflow { cap: e.cap })?;
    let size = polys.iter().map(Anf::len).sum();
    let unsat = polys.iter().all(Anf::is_zero);
    Ok(Decision {
        unsat,
        model: None,
        size,
    })
}

fn decide_bdd(arena: &Arena, roots: &[NodeId]) -> Decision {
    let mut manager = Bdd::new();
    let bdds = manager.from_arena(arena, roots);
    let size = manager.len();
    for b in &bdds {
        if let Some(path) = manager.any_sat(*b) {
            let model = path.into_iter().collect();
            return Decision {
                unsat: false,
                model: Some(model),
                size,
            };
        }
    }
    Decision {
        unsat: true,
        model: None,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_formula::Simplify;

    /// All three backends agree on a small suite of formulas.
    #[test]
    fn backends_agree() {
        type CaseBuilder = Box<dyn Fn(&mut Arena) -> Vec<NodeId>>;
        let cases: Vec<(CaseBuilder, bool)> = vec![
            // x ∧ ¬x — unsat.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let nx = f.not(x);
                    vec![f.and2(x, nx)]
                }),
                true,
            ),
            // x ∧ y — sat.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let y = f.var(1);
                    vec![f.and2(x, y)]
                }),
                false,
            ),
            // Disjunction where only the second disjunct is satisfiable.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let nx = f.not(x);
                    let contra = f.and2(x, nx);
                    let y = f.var(1);
                    vec![contra, y]
                }),
                false,
            ),
            // (x⊕y) ⊕ (x⊕y) — unsat after cancellation.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let y = f.var(1);
                    let a = f.xor2(x, y);
                    let b = f.xor2(x, y);
                    vec![f.xor2(a, b)]
                }),
                true,
            ),
        ];
        for mode in [Simplify::Raw, Simplify::Full] {
            for (i, (build, expect_unsat)) in cases.iter().enumerate() {
                for kind in [BackendKind::Sat, BackendKind::Anf, BackendKind::Bdd] {
                    let mut arena = Arena::new(mode);
                    let roots = build(&mut arena);
                    let d =
                        decide_unsat(&mut arena, &roots, kind, &BackendOptions::default()).unwrap();
                    assert_eq!(
                        d.unsat, *expect_unsat,
                        "case {i}, backend {kind}, mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sat_backend_produces_model() {
        let mut arena = Arena::new(Simplify::Raw);
        let x = arena.var(3);
        let y = arena.var(7);
        let ny = arena.not(y);
        let root = arena.and2(x, ny);
        let d = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Sat,
            &BackendOptions::default(),
        )
        .unwrap();
        assert!(!d.unsat);
        let model = d.model.unwrap();
        assert!(model[&3]);
        assert!(!model[&7]);
    }

    #[test]
    fn bdd_backend_produces_model() {
        let mut arena = Arena::new(Simplify::Full);
        let x = arena.var(0);
        let y = arena.var(1);
        let root = arena.and2(x, y);
        let d = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Bdd,
            &BackendOptions::default(),
        )
        .unwrap();
        assert!(!d.unsat);
        let model = d.model.unwrap();
        assert!(model[&0]);
        assert!(model[&1]);
    }

    #[test]
    fn anf_overflow_is_reported() {
        let mut arena = Arena::new(Simplify::Raw);
        // Product of disjoint (xᵢ ⊕ yᵢ): 2^10 terms.
        let factors: Vec<NodeId> = (0..10)
            .map(|i| {
                let a = arena.var(2 * i);
                let b = arena.var(2 * i + 1);
                arena.xor2(a, b)
            })
            .collect();
        let root = arena.and(&factors);
        let err = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Anf,
            &BackendOptions { anf_cap: 64 },
        )
        .unwrap_err();
        assert_eq!(err, BackendError::AnfOverflow { cap: 64 });
    }

    #[test]
    fn empty_roots_are_unsat() {
        let mut arena = Arena::new(Simplify::Full);
        for kind in [BackendKind::Sat, BackendKind::Anf, BackendKind::Bdd] {
            let d = decide_unsat(&mut arena, &[], kind, &BackendOptions::default()).unwrap();
            assert!(d.unsat, "{kind}");
        }
    }
}
