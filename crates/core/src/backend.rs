//! Decision backends for the verification conditions.
//!
//! The paper discharges its Boolean queries with CVC5 and Bitwuzla; this
//! reproduction offers three independent, complete in-repo procedures
//! plus a portfolio mode:
//!
//! * [`BackendKind::Sat`] — Tseitin encoding + the `qb-sat` CDCL solver
//!   (the workhorse; produces concrete counterexample models);
//! * [`BackendKind::Anf`] — canonical algebraic-normal-form
//!   normalisation: a formula is unsatisfiable iff its ANF is `0`. Exact
//!   but may blow up (reported as [`BackendError::AnfOverflow`]);
//! * [`BackendKind::Bdd`] — reduced ordered BDDs (complement edges) in
//!   circuit variable order: unsatisfiable iff the diagram is the false
//!   edge. Bounded by [`BackendOptions::bdd_node_budget`] (reported as
//!   [`BackendError::BddOverflow`]);
//! * [`BackendKind::Auto`] — per-query portfolio: BDD first under its
//!   node budget, falling back to SAT on blow-up, so canonical structure
//!   answers the cheap queries and search handles the rest.
//!
//! Mirroring the paper's CVC5-vs-Bitwuzla comparison, the backends have
//! different scaling behaviour on the two benchmark families (see
//! EXPERIMENTS.md and README.md, "Choosing a backend").

use qb_bdd::{BddOverflow, BddSession};
use qb_formula::{encode, Anf, Arena, NodeId, Var};
use qb_sat::{Lit, SatResult, Solver};
use std::collections::HashMap;
use std::fmt;

/// Which decision procedure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// CDCL SAT on the Tseitin encoding.
    #[default]
    Sat,
    /// Canonical ANF normalisation.
    Anf,
    /// Reduced ordered BDDs.
    Bdd,
    /// Portfolio: BDD under a node budget, SAT on blow-up.
    Auto,
}

impl BackendKind {
    /// Every backend, in the order the CLI documents them.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Sat,
        BackendKind::Anf,
        BackendKind::Bdd,
        BackendKind::Auto,
    ];

    /// The CLI/wire name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sat => "sat",
            BackendKind::Anf => "anf",
            BackendKind::Bdd => "bdd",
            BackendKind::Auto => "auto",
        }
    }

    /// Parses a CLI/wire backend name.
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Comma-separated list of valid backend names (for error messages).
    pub fn valid_names() -> String {
        BackendKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Backend failure (distinct from a condition being violated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The ANF backend exceeded its term cap.
    AnfOverflow {
        /// The cap that was exceeded.
        cap: usize,
    },
    /// The BDD backend exceeded its node budget.
    BddOverflow {
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::AnfOverflow { cap } => {
                write!(f, "ANF backend exceeded {cap} terms; use SAT, BDD or auto")
            }
            BackendError::BddOverflow { budget } => {
                write!(
                    f,
                    "BDD backend exceeded {budget} nodes; use SAT or the auto portfolio"
                )
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Outcome of deciding one condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// `true` when the disjunction of the roots is unsatisfiable (the
    /// condition holds).
    pub unsat: bool,
    /// A satisfying assignment of the *circuit input variables* when the
    /// condition is violated and the backend can produce one (SAT and BDD
    /// backends; ANF reports `None`).
    pub model: Option<HashMap<Var, bool>>,
    /// Backend-specific size statistic: CNF clauses, total ANF terms, or
    /// peak BDD nodes.
    pub size: usize,
}

/// Per-backend knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendOptions {
    /// Term cap for the ANF backend.
    pub anf_cap: usize,
    /// Resident-node budget for the BDD backend; the auto portfolio
    /// falls back to SAT once a query's diagrams would exceed it.
    pub bdd_node_budget: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            anf_cap: 1 << 22,
            bdd_node_budget: 1 << 20,
        }
    }
}

/// Decides whether `⋁ roots` is unsatisfiable over `arena`.
///
/// The SAT backend materialises the disjunction exactly as the paper's
/// formula (6.2) does (one query); the ANF and BDD backends decide each
/// disjunct separately (the disjunction is unsatisfiable iff every
/// disjunct is), which avoids needless structure. The auto portfolio
/// tries the BDD backend under its node budget and falls back to SAT on
/// blow-up.
///
/// # Errors
///
/// Returns [`BackendError`] when the chosen backend cannot complete
/// (never for `Sat` and `Auto`).
pub fn decide_unsat(
    arena: &mut Arena,
    roots: &[NodeId],
    kind: BackendKind,
    opts: &BackendOptions,
) -> Result<Decision, BackendError> {
    match kind {
        BackendKind::Sat => Ok(decide_sat(arena, roots)),
        BackendKind::Anf => decide_anf(arena, roots, opts.anf_cap),
        BackendKind::Bdd => decide_bdd(arena, roots, opts.bdd_node_budget)
            .map_err(|e| BackendError::BddOverflow { budget: e.budget }),
        BackendKind::Auto => match decide_bdd(arena, roots, opts.bdd_node_budget) {
            Ok(d) => Ok(d),
            Err(_) => Ok(decide_sat(arena, roots)),
        },
    }
}

fn decide_sat(arena: &mut Arena, roots: &[NodeId]) -> Decision {
    let enc = encode(arena, roots);
    let mut solver = Solver::from_cnf(&enc.cnf);
    // Assert the disjunction: at least one root literal true. A fresh
    // selector clause keeps the encoding satisfiability-equivalent.
    let clause: Vec<Lit> = enc.root_lits.iter().map(|&l| Lit::from_dimacs(l)).collect();
    let size = enc.cnf.clauses().len() + 1;
    if clause.is_empty() {
        return Decision {
            unsat: true,
            model: None,
            size,
        };
    }
    let ok = solver_add_clause(&mut solver, &clause);
    if !ok {
        return Decision {
            unsat: true,
            model: None,
            size,
        };
    }
    match solver.solve() {
        // One-shot deciders build their own solver and never install a
        // cancellation token, so a solve here always completes.
        SatResult::Interrupted => unreachable!("no cancel token installed on one-shot solver"),
        SatResult::Unsat => Decision {
            unsat: true,
            model: None,
            size,
        },
        SatResult::Sat => {
            let model = solver.model();
            let mut assignment = HashMap::new();
            for (&var, &lit) in &enc.var_lits {
                let idx = (lit.unsigned_abs() - 1) as usize;
                let value = model.get(idx).copied().unwrap_or(false);
                assignment.insert(var, if lit > 0 { value } else { !value });
            }
            Decision {
                unsat: false,
                model: Some(assignment),
                size,
            }
        }
    }
}

fn solver_add_clause(solver: &mut Solver, clause: &[Lit]) -> bool {
    solver.add_clause(clause)
}

fn decide_anf(arena: &Arena, roots: &[NodeId], cap: usize) -> Result<Decision, BackendError> {
    let polys =
        Anf::from_arena(arena, roots, cap).map_err(|e| BackendError::AnfOverflow { cap: e.cap })?;
    let size = polys.iter().map(Anf::len).sum();
    let unsat = polys.iter().all(Anf::is_zero);
    Ok(Decision {
        unsat,
        model: None,
        size,
    })
}

/// One-shot BDD decision (a throwaway [`BddSession`]; long-lived
/// verification sessions keep a persistent one instead — see
/// `qb_core::VerifySession`).
fn decide_bdd(arena: &Arena, roots: &[NodeId], budget: usize) -> Result<Decision, BddOverflow> {
    let mut session = BddSession::new(budget);
    let bdds = session.build(arena, roots).map_err(|e| match e {
        qb_bdd::BddBuildError::Overflow(o) => o,
        // One-shot sessions never install a cancellation token.
        qb_bdd::BddBuildError::Interrupted => {
            unreachable!("no cancel token installed on one-shot BDD session")
        }
    })?;
    let size = session.resident_nodes();
    for b in &bdds {
        if let Some(path) = session.manager().any_sat(*b) {
            let model = path.into_iter().collect();
            return Ok(Decision {
                unsat: false,
                model: Some(model),
                size,
            });
        }
    }
    Ok(Decision {
        unsat: true,
        model: None,
        size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_formula::Simplify;

    /// All backends (portfolio included) agree on a small suite.
    #[test]
    fn backends_agree() {
        type CaseBuilder = Box<dyn Fn(&mut Arena) -> Vec<NodeId>>;
        let cases: Vec<(CaseBuilder, bool)> = vec![
            // x ∧ ¬x — unsat.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let nx = f.not(x);
                    vec![f.and2(x, nx)]
                }),
                true,
            ),
            // x ∧ y — sat.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let y = f.var(1);
                    vec![f.and2(x, y)]
                }),
                false,
            ),
            // Disjunction where only the second disjunct is satisfiable.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let nx = f.not(x);
                    let contra = f.and2(x, nx);
                    let y = f.var(1);
                    vec![contra, y]
                }),
                false,
            ),
            // (x⊕y) ⊕ (x⊕y) — unsat after cancellation.
            (
                Box::new(|f: &mut Arena| {
                    let x = f.var(0);
                    let y = f.var(1);
                    let a = f.xor2(x, y);
                    let b = f.xor2(x, y);
                    vec![f.xor2(a, b)]
                }),
                true,
            ),
        ];
        for mode in [Simplify::Raw, Simplify::Full] {
            for (i, (build, expect_unsat)) in cases.iter().enumerate() {
                for kind in BackendKind::ALL {
                    let mut arena = Arena::new(mode);
                    let roots = build(&mut arena);
                    let d =
                        decide_unsat(&mut arena, &roots, kind, &BackendOptions::default()).unwrap();
                    assert_eq!(
                        d.unsat, *expect_unsat,
                        "case {i}, backend {kind}, mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sat_backend_produces_model() {
        let mut arena = Arena::new(Simplify::Raw);
        let x = arena.var(3);
        let y = arena.var(7);
        let ny = arena.not(y);
        let root = arena.and2(x, ny);
        let d = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Sat,
            &BackendOptions::default(),
        )
        .unwrap();
        assert!(!d.unsat);
        let model = d.model.unwrap();
        assert!(model[&3]);
        assert!(!model[&7]);
    }

    #[test]
    fn bdd_backend_produces_model() {
        let mut arena = Arena::new(Simplify::Full);
        let x = arena.var(0);
        let y = arena.var(1);
        let root = arena.and2(x, y);
        let d = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Bdd,
            &BackendOptions::default(),
        )
        .unwrap();
        assert!(!d.unsat);
        let model = d.model.unwrap();
        assert!(model[&0]);
        assert!(model[&1]);
    }

    #[test]
    fn anf_overflow_is_reported() {
        let mut arena = Arena::new(Simplify::Raw);
        // Product of disjoint (xᵢ ⊕ yᵢ): 2^10 terms.
        let factors: Vec<NodeId> = (0..10)
            .map(|i| {
                let a = arena.var(2 * i);
                let b = arena.var(2 * i + 1);
                arena.xor2(a, b)
            })
            .collect();
        let root = arena.and(&factors);
        let err = decide_unsat(
            &mut arena,
            &[root],
            BackendKind::Anf,
            &BackendOptions {
                anf_cap: 64,
                ..BackendOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BackendError::AnfOverflow { cap: 64 });
    }

    #[test]
    fn bdd_overflow_is_reported_and_auto_falls_back() {
        let build = |arena: &mut Arena| -> Vec<NodeId> {
            let factors: Vec<NodeId> = (0..6)
                .map(|i| {
                    let a = arena.var(2 * i);
                    let b = arena.var(2 * i + 1);
                    arena.xor2(a, b)
                })
                .collect();
            vec![arena.and(&factors)]
        };
        let opts = BackendOptions {
            bdd_node_budget: 4,
            ..BackendOptions::default()
        };
        let mut arena = Arena::new(Simplify::Raw);
        let roots = build(&mut arena);
        let err = decide_unsat(&mut arena, &roots, BackendKind::Bdd, &opts).unwrap_err();
        assert_eq!(err, BackendError::BddOverflow { budget: 4 });

        // The portfolio decides the same query via SAT instead.
        let mut arena = Arena::new(Simplify::Raw);
        let roots = build(&mut arena);
        let d = decide_unsat(&mut arena, &roots, BackendKind::Auto, &opts).unwrap();
        assert!(!d.unsat, "product of xors is satisfiable");
        assert!(d.model.is_some(), "SAT fallback produces a witness");
    }

    #[test]
    fn backend_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("cvc5"), None);
        assert_eq!(BackendKind::valid_names(), "sat, anf, bdd, auto");
    }

    #[test]
    fn empty_roots_are_unsat() {
        let mut arena = Arena::new(Simplify::Full);
        for kind in BackendKind::ALL {
            let d = decide_unsat(&mut arena, &[], kind, &BackendOptions::default()).unwrap();
            assert!(d.unsat, "{kind}");
        }
    }
}
